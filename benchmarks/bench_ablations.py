"""Ablations of the design choices DESIGN.md calls out.

Each benchmark isolates one mechanism and measures the system with and
without it:

* A1 — oracle search strategy: pruned DFS over the goal's premise
  component vs. brute-force enumeration of all sign vectors;
* A2 — connected-component premise filtering: query cost against a wide
  catalog of unrelated constraints;
* A3 — the date rewrite's two ingredients separated: join elimination
  alone (secondary index) vs. join elimination + date-clustered fact
  (the "relevant partitions only" effect);
* A4 — ReduceOrder++ rule-based sweep vs. the exact semantic reduction
  (same power on these specs; the sweep must be cheaper per call).
"""
from __future__ import annotations

import itertools

import pytest

from repro.core.attrs import AttrList
from repro.core.dependency import fd, od
from repro.core.inference import ODTheory
from repro.core.signs import enumerate_sign_vectors, statement_holds


# ----------------------------------------------------------------------
# A1 — DFS vs brute force
# ----------------------------------------------------------------------
def brute_force_implies(premises, goal) -> bool:
    """Reference oracle: full 3^n enumeration, no pruning."""
    attributes = sorted(
        set().union(*(p.attributes for p in premises)) | set(goal.attributes)
    )
    for sigma in enumerate_sign_vectors(attributes):
        if all(statement_holds(sigma, p) for p in premises) and not statement_holds(
            sigma, goal
        ):
            return False
    return True


CHAIN8 = [od(f"c{i}", f"c{i+1}") for i in range(7)]
GOAL8 = od("c0", "c7")


def test_a1_pruned_dfs(benchmark):
    theory = ODTheory(CHAIN8)
    assert benchmark(theory.implies, GOAL8) is True


def test_a1_brute_force(benchmark):
    result = benchmark(brute_force_implies, CHAIN8, GOAL8)
    assert result is True


# ----------------------------------------------------------------------
# A2 — component filtering
# ----------------------------------------------------------------------
def _island_statements(islands: int):
    out = []
    for island in range(islands):
        out.append(od(f"i{island}_a", f"i{island}_b"))
        out.append(od(f"i{island}_b", f"i{island}_c"))
    return out


@pytest.mark.parametrize("islands", [5, 20, 60])
def test_a2_wide_catalog_query(benchmark, islands):
    """Query cost must stay flat as unrelated constraints accumulate."""
    theory = ODTheory(_island_statements(islands), max_attributes=200)
    goal = od("i0_a", "i0_c")
    assert benchmark(theory.implies, goal) is True


def test_a2_brute_force_is_hopeless_at_width_5(benchmark):
    """The unfiltered reference at just 5 islands (15 attributes)."""
    statements = _island_statements(5)
    goal = od("i0_a", "i0_c")
    result = benchmark.pedantic(
        brute_force_implies, args=(statements, goal), rounds=1, iterations=1
    )
    assert result is True


# ----------------------------------------------------------------------
# A3 — join elimination vs clustering
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def clustered_and_shuffled():
    """Two copies of the star schema: fact clustered by date sk, and fact
    in random order with only a secondary sk index."""
    import random

    from repro.workloads.tpcds_lite import build_tpcds_lite

    clustered = build_tpcds_lite(days=365, sales_rows=40_000, seed=11)

    shuffled = build_tpcds_lite(days=365, sales_rows=40_000, seed=11)
    table = shuffled.database.table("store_sales")
    rng = random.Random(0)
    rng.shuffle(table.rows)
    for index in shuffled.database.indexes.values():
        index.build()
    for index in clustered.database.indexes.values():
        index.build()
    return clustered, shuffled


def _date_sql(workload):
    lo, hi = workload.date_range(120, 30)
    return (
        "SELECT SUM(ss_sales_price) AS r FROM store_sales ss "
        "JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk "
        f"WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'"
    )


def test_a3_baseline_join(benchmark, clustered_and_shuffled):
    clustered, _ = clustered_and_shuffled
    result = benchmark(clustered.database.execute, _date_sql(clustered), False)
    assert result.rows


def test_a3_rewrite_on_shuffled_fact(benchmark, clustered_and_shuffled):
    """Join elimination still wins without physical clustering (the index
    range scan does the pruning logically)."""
    _, shuffled = clustered_and_shuffled
    result = benchmark(shuffled.database.execute, _date_sql(shuffled), True)
    assert result.plan.plan_info.date_rewrites


def test_a3_rewrite_on_clustered_fact(benchmark, clustered_and_shuffled):
    clustered, _ = clustered_and_shuffled
    result = benchmark(clustered.database.execute, _date_sql(clustered), True)
    assert result.plan.plan_info.date_rewrites


def test_a3_results_agree(benchmark, clustered_and_shuffled):
    clustered, shuffled = clustered_and_shuffled

    def run():
        a = clustered.database.execute(_date_sql(clustered), True).rows
        b = shuffled.database.execute(_date_sql(shuffled), True).rows
        c = clustered.database.execute(_date_sql(clustered), False).rows
        return a, b, c

    a, b, c = benchmark.pedantic(run, rounds=1, iterations=1)
    # float SUM depends on accumulation order; compare with tolerance
    assert a[0][0] == pytest.approx(b[0][0]) == pytest.approx(c[0][0])


# ----------------------------------------------------------------------
# A4 — rule sweep vs exact reduction
# ----------------------------------------------------------------------
from repro.optimizer.reduce_order import reduce_order_exact, reduce_order_od

ABLATION_THEORY = ODTheory(
    [od("moy", "qoy"), od("dt", "year,moy,dom"), fd("dt", "year,qoy,moy,dom")]
)
ABLATION_SPECS = [
    ["year", "qoy", "moy", "dom"],
    ["dt", "year", "qoy"],
    ["year", "moy", "qoy", "dom"],
]


def test_a4_rule_sweep(benchmark):
    def run():
        return [reduce_order_od(ABLATION_THEORY, s) for s in ABLATION_SPECS]

    outputs = benchmark(run)
    assert outputs


def test_a4_exact(benchmark):
    def run():
        return [reduce_order_exact(ABLATION_THEORY, s) for s in ABLATION_SPECS]

    outputs = benchmark(run)
    assert outputs


def test_a4_same_power_here(benchmark):
    def run():
        return all(
            reduce_order_od(ABLATION_THEORY, s)
            == reduce_order_exact(ABLATION_THEORY, s)
            for s in ABLATION_SPECS
        )

    assert benchmark.pedantic(run, rounds=1, iterations=1)

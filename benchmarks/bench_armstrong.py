"""E4/E5/E6/E12 — the Section 4 completeness construction.

Builds ``split(M) append swap(M)`` for random OD sets and measures both
construction time and the empirical completeness check (the table must
separate implied from non-implied ODs exactly).
"""
from __future__ import annotations

import itertools

import pytest

from repro.core.armstrong import (
    append_tables,
    canonical_armstrong,
    paper_armstrong,
    split_table,
    swap_table,
)
from repro.core.attrs import AttrList
from repro.core.dependency import od
from repro.core.inference import ODTheory
from repro.core.relation import Relation
from repro.core.satisfaction import satisfies
from repro.workloads.random_instances import random_od_set

NAMES4 = ("A", "B", "C", "D")


def theory_for_seed(seed: int, count: int = 3) -> ODTheory:
    return ODTheory(random_od_set(NAMES4, count=count, rng=seed))


@pytest.mark.parametrize("seed", [0, 1])
def test_paper_construction(benchmark, seed):
    theory = theory_for_seed(seed)
    table = benchmark(paper_armstrong, theory, AttrList(NAMES4))
    for statement in theory.statements:
        assert satisfies(table, statement)


@pytest.mark.parametrize("seed", [0, 1])
def test_canonical_construction(benchmark, seed):
    theory = theory_for_seed(seed)
    table = benchmark(canonical_armstrong, theory, AttrList(NAMES4))
    for statement in theory.statements:
        assert satisfies(table, statement)


def test_split_table(benchmark):
    theory = theory_for_seed(2)
    table = benchmark(split_table, theory, AttrList(NAMES4))
    assert len(table.rows) > 0


def test_swap_table(benchmark):
    theory = theory_for_seed(2)
    table = benchmark(swap_table, theory, AttrList(NAMES4))
    assert table is not None


def test_append(benchmark):
    rows = [(i, i, i, i) for i in range(500)]
    first = Relation(AttrList(NAMES4), rows)
    second = Relation(AttrList(NAMES4), rows)
    result = benchmark(append_tables, first, second)
    assert len(result.rows) == 1000


def test_completeness_separation(benchmark):
    """E12: the constructed table classifies every short OD exactly as the
    oracle does — Theorem 17 as a measurement."""
    theory = theory_for_seed(3)
    table = paper_armstrong(theory, AttrList(NAMES4))
    lists = [
        AttrList(p)
        for k in range(0, 3)
        for p in itertools.permutations(("A", "B", "C"), k)
    ]
    candidates = [od(l, r) for l in lists for r in lists]

    def run():
        mismatches = 0
        for candidate in candidates:
            if satisfies(table, candidate) != theory.implies(candidate):
                mismatches += 1
        return mismatches

    assert benchmark(run) == 0

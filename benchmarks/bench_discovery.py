"""E14 — OD discovery (future-work item 3): scaling and recovery.

Discovery must recover the planted date-hierarchy ODs from data alone and
scale acceptably with rows and lattice width.
"""
from __future__ import annotations

import pytest

from repro.core.dependency import od
from repro.discovery import discover_fds, discover_ods
from repro.workloads.datedim import generate_date_dim
from repro.workloads.random_instances import random_relation


@pytest.mark.parametrize("days", [400, 800])
def test_discover_on_calendar(benchmark, days):
    relation = generate_date_dim(days=days).as_relation()
    result = benchmark(discover_ods, relation, 1, 1)
    found = set(result.ods)
    assert od("d_date", "d_year") in found
    assert od("d_date_sk", "d_date") in found
    assert od("d_moy", "d_qoy") in found


@pytest.mark.parametrize("rows", [500, 5_000])
def test_fd_discovery_scaling(benchmark, rows):
    relation = random_relation(("A", "B", "C", "D", "E"), rows=rows, domain=6, rng=4)
    found = benchmark(discover_fds, relation, 2)
    from repro.core.satisfaction import satisfies

    for dependency in found:
        assert satisfies(relation, dependency)


def test_od_lattice_width(benchmark):
    """max_lhs=2 over six attributes: the permutation lattice at work."""
    relation = generate_date_dim(days=250).as_relation()
    narrow = relation.subrelation(relation.rows)
    # keep six columns to bound the factorial lattice
    from repro.core.attrs import AttrList
    from repro.core.relation import Relation

    keep = ["d_date_sk", "d_date", "d_year", "d_qoy", "d_moy", "d_dom"]
    positions = [relation.column_position(c) for c in keep]
    projected = Relation(
        AttrList(keep), [tuple(row[i] for i in positions) for row in relation.rows]
    )
    result = benchmark(discover_ods, projected, 2, 1)
    assert od("d_year,d_doy" if False else "d_year,d_moy", "d_qoy") not in result.ods  # pruned: [d_moy] |-> [d_qoy] is minimal
    assert od("d_moy", "d_qoy") in result.ods

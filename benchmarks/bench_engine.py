"""Engine operator micro-benchmarks.

Calibrates the building blocks the paper's rewrites trade between: sort vs
stream vs hash aggregation, hash vs merge join, full Sort vs TopN — the raw
material behind every plan-level comparison in the other benchmark files.
"""
from __future__ import annotations

import random

import pytest

from repro.engine.expr import Col
from repro.engine.index import SortedIndex
from repro.engine.operators import (
    AggSpec,
    HashAggregate,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    SeqScan,
    Sort,
    StreamAggregate,
    TopN,
)
from repro.engine.schema import Schema
from repro.engine.table import Table
from repro.engine.types import DataType

ROWS = 50_000
GROUPS = 200


@pytest.fixture(scope="module")
def fact():
    rng = random.Random(7)
    table = Table(
        "fact", Schema.of(("g", DataType.INT), ("v", DataType.FLOAT))
    )
    rows = [(rng.randint(1, GROUPS), rng.random() * 100) for _ in range(ROWS)]
    rows.sort()  # clustered by g
    table.load(rows, check=False)
    SortedIndex("fact_g", table, ["g"]).build()
    return table


@pytest.fixture(scope="module")
def fact_index(fact):
    return SortedIndex("fact_g2", fact, ["g"]).build()


@pytest.fixture(scope="module")
def dim():
    table = Table("dim", Schema.of(("k", DataType.INT), ("name", DataType.STR)))
    table.load([(i, f"g{i}") for i in range(1, GROUPS + 1)], check=False)
    return table


SPECS = lambda: [AggSpec("SUM", Col("v"), "s"), AggSpec("COUNT", None, "n")]


def test_hash_aggregate(benchmark, fact):
    def run():
        return len(HashAggregate(SeqScan(fact), ["g"], SPECS()).run()[0])

    assert benchmark(run) == GROUPS


def test_stream_aggregate(benchmark, fact, fact_index):
    def run():
        return len(StreamAggregate(IndexScan(fact_index), ["g"], SPECS()).run()[0])

    assert benchmark(run) == GROUPS


def test_sort_then_stream_aggregate(benchmark, fact):
    def run():
        return len(
            StreamAggregate(Sort(SeqScan(fact), ["g"]), ["g"], SPECS()).run()[0]
        )

    assert benchmark(run) == GROUPS


def test_hash_join(benchmark, fact, dim):
    def run():
        return sum(1 for _ in HashJoin(
            SeqScan(fact), SeqScan(dim), ["g"], ["k"]
        ).run()[0])

    assert benchmark(run) == ROWS


def test_merge_join_presorted(benchmark, fact, fact_index, dim):
    dim_index = SortedIndex("dim_k", dim, ["k"]).build()

    def run():
        return sum(1 for _ in MergeJoin(
            IndexScan(fact_index), IndexScan(dim_index), ["g"], ["k"]
        ).run()[0])

    assert benchmark(run) == ROWS


def test_full_sort_limit(benchmark, fact):
    def run():
        return Limit(Sort(SeqScan(fact), ["v"]), 10).run()[0]

    rows = benchmark(run)
    assert len(rows) == 10


def test_topn(benchmark, fact):
    def run():
        return TopN(SeqScan(fact), ["v"], 10).run()[0]

    rows = benchmark(run)
    assert len(rows) == 10


def test_topn_equals_sort_limit(benchmark, fact):
    def run():
        fused = TopN(SeqScan(fact), ["v"], 25).run()[0]
        reference = Limit(Sort(SeqScan(fact), ["v"]), 25).run()[0]
        return fused == reference

    assert benchmark.pedantic(run, rounds=1, iterations=1)


# ----------------------------------------------------------------------
# Planning-time benchmarks: the memoized OD oracle on repeated templates
# ----------------------------------------------------------------------
PLAN_REPEATS = 10


def test_repeated_template_planning_cold(benchmark, tpcds, template_sql):
    """Every round starts with cold caches — the seed planner's regime
    (fresh theories, no memoized implications)."""
    from repro.optimizer.context import clear_theory_cache

    sql = template_sql(tpcds, "Q9")

    def run():
        for _ in range(PLAN_REPEATS):
            clear_theory_cache()  # per plan: every planning starts cold
            plan = tpcds.database.plan(sql, use_cache=False)
        return plan.plan_info

    info = benchmark(run)
    assert info.oracle["implies_calls"] > 0


def test_repeated_template_planning_warm(benchmark, tpcds, template_sql):
    """The same template planned PLAN_REPEATS times against interned
    theories: the oracle result cache must absorb > 50% of lookups.

    ``use_cache=False`` keeps this a *planning* benchmark — the whole-plan
    cache (measured separately in bench_plan_cache.py) would otherwise
    absorb every round after the first.
    """
    from repro.optimizer.context import clear_theory_cache

    sql = template_sql(tpcds, "Q9")
    clear_theory_cache()

    def run():
        infos = [
            tpcds.database.plan(sql, use_cache=False).plan_info
            for _ in range(PLAN_REPEATS)
        ]
        return infos

    infos = benchmark(run)
    hits = sum(info.oracle["cache_hits"] for info in infos)
    misses = sum(info.oracle["cache_misses"] for info in infos)
    assert hits / (hits + misses) > 0.5
    assert infos[-1].oracle["enumerations"] == 0  # fully warmed: no DFS at all

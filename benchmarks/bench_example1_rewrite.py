"""E7 — Example 1: the introduction's query, three reasoning levels.

Paper claim: with the OD ``month ↦ quarter`` the optimizer can drop
DEQUARTER from *both* the group-by and the order-by, so the
``(year, month, day)`` index answers the query with **no sort operator**.
FDs alone fix the group-by but not the order-by.

Reproduced shape (asserted):

* naive  — hash aggregate + sort;
* fd     — stream aggregate off the index, sort still present ([17]);
* od     — stream aggregate, **no sort** (the paper's plan).
"""
from __future__ import annotations

import pytest

from repro.engine.logical import bind
from repro.engine.sql.parser import parse
from repro.optimizer.planner import Planner

SQL = """
SELECT d_year, d_qoy, d_moy, COUNT(*) AS days
FROM date_dim d
GROUP BY d_year, d_qoy, d_moy
ORDER BY d_year, d_qoy, d_moy
"""


def run_mode(db, mode):
    plan = Planner(db, mode=mode).plan(bind(parse(SQL)))
    return plan.run()


@pytest.mark.parametrize("mode", ["naive", "fd", "od"])
def test_example1(benchmark, date_db, mode):
    rows, metrics = benchmark(run_mode, date_db, mode)
    assert len(rows) > 0
    if mode == "od":
        assert metrics.get("sorts") == 0, "OD plan must not sort"
    if mode == "naive":
        assert metrics.get("sorts") == 1


def test_example1_shape_summary(benchmark, date_db):
    """One run of all three modes; asserts the full paper shape."""

    def run():
        out = {}
        for mode in ("naive", "fd", "od"):
            rows, metrics = run_mode(date_db, mode)
            out[mode] = (rows, metrics.work, metrics.get("sorts"))
        return out

    out = benchmark(run)
    naive_rows, naive_work, naive_sorts = out["naive"]
    fd_rows, fd_work, fd_sorts = out["fd"]
    od_rows, od_work, od_sorts = out["od"]
    assert naive_rows == fd_rows == od_rows
    assert od_sorts == 0 and fd_sorts >= 1 and naive_sorts >= 1
    assert od_work < fd_work < naive_work

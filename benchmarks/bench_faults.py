"""Recovery and cancellation overhead, measured against fault-free truth.

Three recovery cases on the **scan → filter → aggregate** microbench
(process backend, workers=2): fault-free, kill-one-worker-and-retry
(``kill_worker`` attempts=1 — the worker dies, the partition re-enqueues,
the respawned worker re-runs it), and degrade-to-thread (``kill_worker``
attempts=99 — retries exhaust and the failed partition re-runs on the
thread rung).  Each asserts the recovered rows and counters are
bit-identical to serial before timing anything, so the committed
``BENCH_bench_faults.json`` documents the *cost* of recovery whose
*correctness* is already gated (chaos leg of the differential harness).

The fourth case is the acceptance claim: the per-batch cooperative
cancellation check (``metrics.check_cancel()`` with a live deadline
token) must cost **<2%** on the same pipeline.  The committed baseline
records the measured ratio; ``tests/harness/test_bench_regression.py``
re-checks it (committed <1.02, live with CI-noise slack).
"""
from __future__ import annotations

import time

from repro.engine import faults
from repro.engine.errors import CancelToken
from repro.engine.parallel import host_capability, insert_exchanges
from repro.workloads.microbench import (
    BENCH_ROWS as ROWS,
    scan_filter_aggregate,
)

BATCH_SIZE = 1024
WORKERS = 2


def _record(benchmark, backend: str | None = None, **extra) -> None:
    mean = getattr(getattr(benchmark, "stats", None), "stats", None)
    mean_s = getattr(mean, "mean", None)
    if mean_s:
        benchmark.extra_info["rows_per_sec"] = round(ROWS / mean_s)
    if backend is not None:
        benchmark.extra_info["backend"] = backend
    benchmark.extra_info.update(extra)
    benchmark.extra_info.update(host_capability())


def _process_run(fact):
    return insert_exchanges(
        scan_filter_aggregate(fact), WORKERS, backend="process"
    ).run_batches(BATCH_SIZE)


def _faulted(fact, spec: str):
    faults.install(faults.parse_plans(spec))
    try:
        return _process_run(fact)
    finally:
        faults.clear()


# ----------------------------------------------------------------------
# Recovery overhead: fault-free vs kill-and-retry vs degrade-to-thread
# ----------------------------------------------------------------------
def test_fault_free_process(benchmark, fact):
    serial_rows, _ = scan_filter_aggregate(fact).run_batches(BATCH_SIZE)
    rows, _ = benchmark(lambda: _process_run(fact))
    assert rows == serial_rows
    _record(benchmark, "process", scenario="fault_free")


def test_kill_one_worker_and_retry(benchmark, fact):
    serial_rows, serial_metrics = scan_filter_aggregate(fact).run_batches(
        BATCH_SIZE
    )

    def run():
        rows, metrics = _faulted(fact, "kill_worker:partition=0,attempts=1")
        assert rows == serial_rows
        assert metrics.counters == serial_metrics.counters
        return rows

    benchmark.pedantic(run, rounds=3, iterations=1)
    _record(benchmark, "process", scenario="kill_retry")


def test_degrade_to_thread(benchmark, fact):
    serial_rows, serial_metrics = scan_filter_aggregate(fact).run_batches(
        BATCH_SIZE
    )

    def run():
        rows, metrics = _faulted(fact, "kill_worker:partition=0,attempts=99")
        assert rows == serial_rows
        assert metrics.counters == serial_metrics.counters
        return rows

    benchmark.pedantic(run, rounds=3, iterations=1)
    _record(benchmark, "process", scenario="degrade_to_thread")


# ----------------------------------------------------------------------
# The cancellation-overhead acceptance claim
# ----------------------------------------------------------------------
def test_cancellation_check_overhead_claim(benchmark, fact):
    """Per-batch ``check_cancel`` with a live deadline vs no token at all,
    on serial scan→filter→aggregate — best-of interleaved rounds so both
    sides see the same cache/noise regime.  Acceptance bar: <2%."""
    pipeline = scan_filter_aggregate(fact)
    pipeline.run_batches(BATCH_SIZE)  # warm caches off the clock

    def best_pair(rounds: int = 9):
        bare = timed = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            pipeline.run_batches(BATCH_SIZE)
            bare = min(bare, time.perf_counter() - start)
            token = CancelToken(3600.0)  # live deadline: the real hot path
            start = time.perf_counter()
            pipeline.run_batches(BATCH_SIZE, token=token)
            timed = min(timed, time.perf_counter() - start)
        return bare, timed

    bare_s, timed_s = benchmark.pedantic(best_pair, rounds=1, iterations=1)
    overhead = timed_s / bare_s
    benchmark.extra_info["cancel_check_overhead"] = round(overhead, 4)
    _record(benchmark, None, scenario="cancel_overhead")
    assert overhead < 1.02, (
        f"cancellation checks cost {overhead:.4f}x on scan→filter→aggregate "
        "(acceptance bar: <2%)"
    )

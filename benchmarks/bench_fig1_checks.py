"""E1 — Figure 1 / Examples 2-3: OD satisfaction checking.

Paper artifact: the worked instance showing ``[A,B,C] ↦ [F,E,D]`` holds
while ``[A,B,C] ↦ [F,D,E]`` is falsified.  Reproduced exactly in
``tests/core/test_paper_figures.py``; here we benchmark the checker itself
— the O(n log n) split/swap scan — at growing instance sizes.
"""
from __future__ import annotations

import pytest

from repro.core.attrs import AttrList
from repro.core.dependency import od
from repro.core.relation import Relation
from repro.core.satisfaction import satisfies, satisfies_naive
from repro.workloads.random_instances import relation_satisfying


def _instance(rows: int) -> Relation:
    built = relation_satisfying(
        [od("A", "B")], ("A", "B", "C", "D"), rows=min(rows, 200), domain=8, rng=1
    )
    # tile up to the requested size; duplicates never falsify ODs
    data = (built.rows * (rows // len(built.rows) + 1))[:rows]
    return Relation(built.attributes, data)


@pytest.mark.parametrize("rows", [1_000, 10_000, 50_000])
def test_satisfaction_check_scaling(benchmark, rows):
    relation = _instance(rows)
    dependency = od("A", "B")
    result = benchmark(satisfies, relation, dependency)
    assert result is True


def test_satisfaction_check_falsified(benchmark):
    relation = _instance(10_000)
    # C is random: A |-> C is falsified; witness search must stay fast
    dependency = od("A", "C")
    result = benchmark(satisfies, relation, dependency)
    assert result is False


def test_fast_vs_naive_small(benchmark):
    """The naive O(n²) oracle on 300 rows, for the crossover picture."""
    relation = _instance(300)
    dependency = od("A", "B")
    result = benchmark(satisfies_naive, relation, dependency)
    assert result is True


def test_figure1_examples(benchmark):
    figure1 = Relation(
        AttrList.parse("A,B,C,D,E,F"),
        [(3, 2, 0, 4, 7, 9), (3, 2, 1, 3, 8, 9)],
    )

    def run():
        assert satisfies(figure1, od("A,B,C", "F,E,D"))
        assert not satisfies(figure1, od("A,B,C", "F,D,E"))

    benchmark(run)

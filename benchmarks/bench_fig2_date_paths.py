"""E2 — Figure 2 / Example 4: the date-hierarchy OD diagram.

Paper artifact: every path through the date hierarchy is an OD right-hand
side for ``[d_date]``, and Theorem 10 (Path) composes refinements into the
lists.  We benchmark (a) inferring each path OD from the declared base set,
and (b) validating all of them against a generated multi-year calendar.
"""
from __future__ import annotations

import pytest

from repro.core.dependency import od
from repro.core.inference import ODTheory
from repro.core.satisfaction import satisfies
from repro.workloads.datedim import FIGURE2_PATHS, date_dim_ods, generate_date_dim

#: Path-theorem consequences the base theory must yield (Example 4 style:
#: quarter inserted between year and month, etc.)
DERIVED_PATHS = (
    ("d_year", "d_qoy", "d_moy"),
    ("d_year", "d_moy"),
    ("d_year", "d_qoy", "d_moy", "d_dom"),
    ("d_year", "d_doy"),
)


def test_infer_figure2_paths(benchmark):
    theory = ODTheory(date_dim_ods())

    def run():
        for path in DERIVED_PATHS:
            assert theory.implies(od("d_date", list(path)))
        # and via the surrogate key (the Section 2.3 guarantee composes)
        for path in DERIVED_PATHS:
            assert theory.implies(od("d_date_sk", list(path)))

    benchmark(run)


def test_validate_paths_on_calendar(benchmark):
    table = generate_date_dim(days=365 * 6)
    relation = table.as_relation()

    def run():
        for path in FIGURE2_PATHS:
            assert satisfies(relation, od("d_date", list(path)))

    benchmark(run)


def test_example4_path_composition(benchmark):
    """Theorem 10 applications at the oracle level."""
    from repro.core.theorems import path

    p1 = od("d_date", "d_year,d_doy")
    p2 = od("d_year", "d_decade")
    theory = ODTheory([p1, p2])

    def run():
        conclusion = path(p1, p2)
        assert theory.implies(conclusion)
        return conclusion

    result = benchmark(run)
    assert result == od("d_date", "d_year,d_decade,d_doy")

"""E3 + E13 — the implication oracle (the future-work theorem prover).

Scaling of exact OD implication with the number of *relevant* attributes
(the decision problem is coNP-complete, so exponential worst case is
expected — the benchmark shows where the wall sits and how connected-
component filtering moves it), plus the Chain-axiom scenario of Figure 3.
"""
from __future__ import annotations

import pytest

from repro.core.dependency import compat, od
from repro.core.inference import ODTheory


def chain_theory(width: int) -> ODTheory:
    """A transitive chain c0 |-> c1 |-> ... — one connected component."""
    return ODTheory(
        [od(f"c{i}", f"c{i+1}") for i in range(width - 1)], max_attributes=40
    )


@pytest.mark.parametrize("width", [4, 8, 12, 16])
def test_implication_scaling_chain(benchmark, width):
    theory = chain_theory(width)
    goal = od("c0", f"c{width-1}")
    result = benchmark(theory.implies, goal)
    assert result is True


@pytest.mark.parametrize("width", [4, 8, 12, 16])
def test_refutation_scaling_chain(benchmark, width):
    theory = chain_theory(width)
    goal = od(f"c{width-1}", "c0")
    result = benchmark(theory.implies, goal)
    assert result is False


def test_component_filtering_payoff(benchmark):
    """30 disjoint premise islands; the query touches one island of 3."""
    statements = []
    for island in range(30):
        statements.append(od(f"i{island}_a", f"i{island}_b"))
        statements.append(od(f"i{island}_b", f"i{island}_c"))
    theory = ODTheory(statements, max_attributes=40)
    goal = od("i7_a", "i7_c")
    result = benchmark(theory.implies, goal)
    assert result is True


def test_chain_axiom_instance(benchmark):
    """Figure 3 / Lemma 7: the chain premises force A ~ Z."""
    links = 4
    premises = [compat("A", "y0")]
    for i in range(links - 1):
        premises.append(compat(f"y{i}", f"y{i+1}"))
    premises.append(compat(f"y{links-1}", "Z"))
    for i in range(links):
        premises.append(compat(f"y{i},A", f"y{i},Z"))
    theory = ODTheory(premises)
    result = benchmark(theory.implies, compat("A", "Z"))
    assert result is True


@pytest.mark.parametrize("width", [8, 16])
def test_memoized_repeat_queries(benchmark, width):
    """Repeated implication probes over one theory: after the first probe
    every answer comes from the result cache, no sign-vector enumeration."""
    theory = chain_theory(width)
    goals = [od("c0", f"c{i}") for i in range(1, width)]

    def run():
        for goal in goals:
            assert theory.implies(goal)
        return theory.stats()

    stats = benchmark(run)
    # warm rounds hit the cache: far more hits than enumerations overall
    assert stats["cache_hits"] > stats["enumerations"]
    assert stats["hit_rate"] > 0.5


def test_uncached_repeat_queries_baseline(benchmark):
    """The same probe pattern with memoization disabled — the contrast that
    makes the cache's payoff visible in BENCH_bench_inference.json."""
    theory = chain_theory(12)
    theory_uncached = ODTheory(theory.statements, max_attributes=40, result_cache_size=0)
    goals = [od("c0", f"c{i}") for i in range(1, 12)]

    def run():
        for goal in goals:
            assert theory_uncached.implies(goal)
        return theory_uncached.stats()

    stats = benchmark(run)
    assert stats["cache_hits"] == 0


def test_counterexample_generation(benchmark):
    theory = ODTheory([od("A", "B"), od("B", "C")])

    def run():
        witness = theory.counterexample(od("C", "A"))
        assert witness is not None
        return witness

    benchmark(run)


def test_proof_search_example1(benchmark):
    """Certificate-producing mode: find + check an axiom-level proof."""
    from repro.core.proofs import check_proof
    from repro.core.prover import prove
    from repro.core.dependency import equiv

    def run():
        proof = prove([od("moy", "qoy")], equiv("year,qoy,moy", "year,moy"))
        assert proof is not None
        check_proof(proof)
        return proof

    benchmark(run)

"""Cost-based vs syntactic join ordering on the snowflake workload.

Each snowflake template executes twice — under the cost-based search
(the default) and under ``join_order="syntactic"`` (the parse order) —
at benchmark scale, plan-cache warm so the timings measure execution,
not planning.  ``test_joinorder_claim`` is the acceptance record: the
reordered plans must beat the syntactic plans on the planted-win
queries, measured both in wall time and in the deterministic
``Metrics.work`` ratio (the latter is what
``tests/harness/test_bench_regression.py`` re-checks as a cheap,
host-independent proxy on every CI run).  ``test_joinorder_planning_*``
document what the DP search itself costs per planning.
"""
from __future__ import annotations

import time

import pytest

from repro.workloads.snowflake import SNOWFLAKE_QUERIES

TEMPLATES = {qid: template for qid, template, _ in SNOWFLAKE_QUERIES}

#: The templates written with deliberately bad parse orders — where the
#: search has a planted win (see repro.workloads.snowflake).
CLAIM_QUERIES = ("SN2", "SN3", "SN5", "SN6")


def _sql(workload, qid: str) -> str:
    lo, hi = workload.date_range(100, 60)
    return TEMPLATES[qid].format(lo=lo, hi=hi)


# ----------------------------------------------------------------------
# Execution time per template, both orders
# ----------------------------------------------------------------------
@pytest.mark.parametrize("qid", sorted(TEMPLATES))
def test_snowflake_cost_execution(benchmark, snowflake, qid):
    db = snowflake.database
    sql = _sql(snowflake, qid)
    db.plan(sql)  # warm the plan cache: measure execution only
    result = benchmark(lambda: db.execute(sql))
    benchmark.extra_info["measured_work"] = round(result.metrics.work)


@pytest.mark.parametrize("qid", sorted(TEMPLATES))
def test_snowflake_syntactic_execution(benchmark, snowflake, qid):
    db = snowflake.database
    sql = _sql(snowflake, qid)
    db.plan(sql, join_order="syntactic")
    result = benchmark(lambda: db.execute(sql, join_order="syntactic"))
    benchmark.extra_info["measured_work"] = round(result.metrics.work)


# ----------------------------------------------------------------------
# Planning overhead of the search itself
# ----------------------------------------------------------------------
def test_joinorder_planning_cost(benchmark, snowflake):
    """Uncached planning of the widest template (5 relations, DP)."""
    db = snowflake.database
    sql = _sql(snowflake, "SN6")
    db.plan(sql, use_cache=False)  # warm the interned theories
    benchmark(lambda: db.plan(sql, use_cache=False))


def test_joinorder_planning_syntactic(benchmark, snowflake):
    """The same planning without the search — the DP's overhead is the
    difference to test_joinorder_planning_cost."""
    db = snowflake.database
    sql = _sql(snowflake, "SN6")
    db.plan(sql, use_cache=False, join_order="syntactic")
    benchmark(lambda: db.plan(sql, use_cache=False, join_order="syntactic"))


# ----------------------------------------------------------------------
# The acceptance claim, asserted where the baseline is recorded
# ----------------------------------------------------------------------
def test_joinorder_claim(benchmark, snowflake):
    """Cost-based order vs parse order over the planted-win templates.

    Asserted here (and re-checked by the bench-regression proxy against
    the committed JSON): identical result multisets, and the reordered
    plans do at least 1.5× less deterministic ``Metrics.work`` in
    aggregate.  Wall-time speedup is recorded alongside; ``work`` is the
    gated number because it is exact on every host.
    """
    db = snowflake.database

    def best_of(fn, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def measure():
        cost_work = syn_work = 0.0
        cost_time = syn_time = 0.0
        for qid in CLAIM_QUERIES:
            sql = _sql(snowflake, qid)
            cost = db.execute(sql)
            syn = db.execute(sql, join_order="syntactic")
            assert sorted(cost.rows, key=repr) == sorted(syn.rows, key=repr), qid
            cost_work += cost.metrics.work
            syn_work += syn.metrics.work
            cost_time += best_of(lambda: db.execute(sql))
            syn_time += best_of(
                lambda: db.execute(sql, join_order="syntactic")
            )
        return syn_work / cost_work, syn_time / cost_time

    work_ratio, time_speedup = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["work_ratio_syntactic_vs_cost"] = round(work_ratio, 3)
    benchmark.extra_info["speedup_cost_vs_syntactic"] = round(time_speedup, 3)
    assert work_ratio >= 1.5, (
        f"join-ordering lost its edge: syntactic/cost work ratio only "
        f"{work_ratio:.2f}x on the planted-win queries (acceptance bar: 1.5x)"
    )

"""Observability overhead, measured against the untraced truth.

Two acceptance claims on the **scan → filter → aggregate** microbench:

1. **Disabled** tracing (the default) must cost **<2%**.  The traced
   wrappers :func:`~repro.engine.operators.base._traced` install on
   every operator add one attribute read and an ``is None`` test per
   stream creation; this benchmark compares the wrapped classes against
   their raw ``__wrapped__`` originals — the exact code that would run
   if this subsystem did not exist — best-of interleaved rounds so both
   sides see the same cache/noise regime.

2. **Enabled** tracing must cost **<10%** on the same pipeline: span
   begin/end is two ``perf_counter_ns`` calls and a dict append per
   operator *stream*, not per row.

Both ratios are recorded in the committed ``BENCH_bench_observe.json``
(re-checked by ``tests/harness/test_bench_regression.py``), and both
runs assert bit-identical rows first — the parity invariant is gated
before anything is timed.
"""
from __future__ import annotations

import time

from repro.engine.parallel import host_capability, insert_exchanges
from repro.obs.tracer import Tracer
from repro.workloads.microbench import (
    BENCH_ROWS as ROWS,
    scan_filter_aggregate,
)

BATCH_SIZE = 1024


def _record(benchmark, **extra) -> None:
    mean = getattr(getattr(benchmark, "stats", None), "stats", None)
    mean_s = getattr(mean, "mean", None)
    if mean_s:
        benchmark.extra_info["rows_per_sec"] = round(ROWS / mean_s)
    benchmark.extra_info.update(extra)
    benchmark.extra_info.update(host_capability())


def _bind_raw(root) -> None:
    """Shadow every traced wrapper with its raw original, per instance.

    Binding ``__wrapped__`` as an instance attribute makes this tree the
    "subsystem never existed" baseline — the exact pre-wrapper code runs
    on every ``execute``/``execute_batches`` call — without touching the
    classes, so no CPython type-cache invalidation perturbs the paired
    timing runs.
    """
    stack = [root]
    while stack:
        op = stack.pop()
        for name in ("execute", "execute_batches"):
            fn = getattr(type(op), name, None)
            if fn is not None and getattr(fn, "_obs_traced", False):
                setattr(op, name, fn.__wrapped__.__get__(op))
        stack.extend(op.children())


# ----------------------------------------------------------------------
# Claim 1: disabled tracing <2%
# ----------------------------------------------------------------------
def test_tracing_disabled_overhead_claim(benchmark, fact):
    wrapped_pipeline = scan_filter_aggregate(fact)
    raw_pipeline = scan_filter_aggregate(fact)
    _bind_raw(raw_pipeline)
    serial_rows, _ = wrapped_pipeline.run_batches(BATCH_SIZE)  # warm
    raw_rows, _ = raw_pipeline.run_batches(BATCH_SIZE)  # warm
    assert raw_rows == serial_rows

    def _timed(pipeline):
        start = time.perf_counter()
        rows, _ = pipeline.run_batches(BATCH_SIZE)
        elapsed = time.perf_counter() - start
        assert rows == serial_rows
        return elapsed

    def ratio_of_medians(rounds: int = 20):
        import gc
        import statistics

        raw_samples, wrapped_samples = [], []
        gc.collect()
        gc.disable()  # allocator noise swamps a sub-1% signal otherwise
        try:
            for index in range(rounds):
                # Interleaved with alternating order, then one median per
                # side: both sides sample the same noise regime, and a
                # scheduler stall lands in one sample — never in a
                # median, as long as most samples are clean.
                if index % 2:
                    wrapped_samples.append(_timed(wrapped_pipeline))
                    raw_samples.append(_timed(raw_pipeline))
                else:
                    raw_samples.append(_timed(raw_pipeline))
                    wrapped_samples.append(_timed(wrapped_pipeline))
        finally:
            gc.enable()
        return statistics.median(wrapped_samples) / statistics.median(raw_samples)

    overhead = benchmark.pedantic(ratio_of_medians, rounds=1, iterations=1)
    benchmark.extra_info["tracing_disabled_overhead"] = round(overhead, 4)
    _record(benchmark, scenario="tracing_disabled")
    assert overhead < 1.02, (
        f"disabled tracing costs {overhead:.4f}x on scan→filter→aggregate "
        "(acceptance bar: <2%)"
    )


# ----------------------------------------------------------------------
# Claim 2: enabled tracing <10%
# ----------------------------------------------------------------------
def test_tracing_enabled_overhead_claim(benchmark, fact):
    pipeline = scan_filter_aggregate(fact)
    serial = pipeline.run_batches(BATCH_SIZE)  # warm

    def _timed_bare():
        start = time.perf_counter()
        run = pipeline.run_batches(BATCH_SIZE)
        elapsed = time.perf_counter() - start
        assert run[0] == serial[0]
        return elapsed

    def _timed_traced():
        tracer = Tracer()
        start = time.perf_counter()
        run = pipeline.run_batches(BATCH_SIZE, tracer=tracer)
        elapsed = time.perf_counter() - start
        assert run[0] == serial[0]
        assert run[1].counters == serial[1].counters
        assert tracer.spans  # it really traced
        return elapsed

    def median_ratio(rounds: int = 12):
        import statistics

        ratios = []
        for index in range(rounds):
            # Alternating pair order, median of per-round ratios — same
            # drift/order-bias cancellation as the disabled claim above.
            if index % 2:
                traced = _timed_traced()
                bare = _timed_bare()
            else:
                bare = _timed_bare()
                traced = _timed_traced()
            ratios.append(traced / bare)
        return statistics.median(ratios)

    overhead = benchmark.pedantic(median_ratio, rounds=1, iterations=1)
    benchmark.extra_info["tracing_enabled_overhead"] = round(overhead, 4)
    _record(benchmark, scenario="tracing_enabled")
    assert overhead < 1.10, (
        f"enabled tracing costs {overhead:.4f}x on scan→filter→aggregate "
        "(acceptance bar: <10%)"
    )


# ----------------------------------------------------------------------
# Context: the cost of a traced parallel run and of a stats snapshot
# ----------------------------------------------------------------------
def test_traced_thread_exchange(benchmark, fact):
    """Document the absolute cost of tracing across the thread exchange
    (worker span shipping + adoption included)."""
    serial_rows, _ = scan_filter_aggregate(fact).run_batches(BATCH_SIZE)

    def run():
        plan = insert_exchanges(scan_filter_aggregate(fact), 2, backend="thread")
        tracer = Tracer()
        rows, _ = plan.run_batches(BATCH_SIZE, tracer=tracer)
        assert rows == serial_rows
        return len(tracer.spans)

    spans = benchmark.pedantic(run, rounds=3, iterations=1)
    _record(benchmark, scenario="traced_thread_exchange", spans=spans)


def test_stats_snapshot_cost(benchmark):
    """``stats_snapshot()`` is a read path — it must stay microseconds,
    cheap enough to poll from a monitoring loop."""
    from repro.engine.database import Database
    from repro.workloads.microbench import build_fact

    db = Database()
    fact = build_fact(2_000, seed=3)
    table = db.create_table("fact", fact.schema)
    for row in fact.rows:
        table.insert(row)
    db.execute("SELECT COUNT(*) AS n FROM fact")

    snapshot = benchmark(db.stats_snapshot)
    assert snapshot["engine"]["counters"]["queries"] >= 1
    _record(benchmark, scenario="stats_snapshot")

"""Parallel vs serial batch throughput (the tentpole claim of PR 4).

The same two pipeline shapes as :mod:`bench_vectorized` — **scan → filter
→ aggregate** and **join → aggregate** — executed at batch_size=1024
serially and behind exchanges at workers 1/2/4.  Each case records
``rows_per_sec`` plus the host's parallel capability in ``extra_info``
(dumped to ``BENCH_bench_parallel.json``), so the committed baseline
documents what the recording host could *honestly* deliver.

Honesty note, load-bearing: CPython threads only run Python bytecode
concurrently on a **free-threaded build** (PEP 703, ``python3.13t+``)
with **more than one core available**.  On a stock-GIL or single-core
host — including the container this baseline was recorded on — the
worker pool adds bounded overhead instead of speedup, and the only
defensible claims are (a) bit-identical results, (b) counter-identical
metrics, and (c) that overhead stays small.  ``parallel_capable`` in
``extra_info`` records which regime the baseline measured;
``test_parallel_scaling_claim`` asserts the ≥1.5× workers=4 bar only in
the capable regime and the ≥0.5× overhead floor otherwise, and
``tests/harness/test_bench_regression.py`` re-checks the same
capability-aware gate as a cheap proxy on every CI run.
"""
from __future__ import annotations

import time

import pytest

# Shared fixtures (fact/dim) come from conftest.py; the pipeline shapes
# and scaled size from repro.workloads.microbench — one workload
# definition for this module, bench_vectorized, and the regression proxies.
from repro.engine.parallel import host_capability, insert_exchanges
from repro.workloads.microbench import (
    BENCH_ROWS as ROWS,
    join_aggregate,
    scan_filter_aggregate,
)

BATCH_SIZE = 1024
WORKER_COUNTS = (1, 2, 4)


def _record(benchmark, rows: int) -> None:
    mean = getattr(getattr(benchmark, "stats", None), "stats", None)
    mean_s = getattr(mean, "mean", None)
    if mean_s:
        benchmark.extra_info["rows_per_sec"] = round(rows / mean_s)
    benchmark.extra_info.update(host_capability())


# ----------------------------------------------------------------------
# scan → filter → aggregate
# ----------------------------------------------------------------------
def test_scan_filter_aggregate_serial(benchmark, fact):
    result = benchmark(
        lambda: scan_filter_aggregate(fact).run_batches(BATCH_SIZE)
    )
    assert len(result[0]) > 0
    _record(benchmark, ROWS)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_scan_filter_aggregate_parallel(benchmark, fact, workers):
    result = benchmark(
        lambda: insert_exchanges(
            scan_filter_aggregate(fact), workers
        ).run_batches(BATCH_SIZE)
    )
    assert len(result[0]) > 0
    _record(benchmark, ROWS)


# ----------------------------------------------------------------------
# join → aggregate
# ----------------------------------------------------------------------
def test_join_aggregate_serial(benchmark, fact, dim):
    result = benchmark(lambda: join_aggregate(fact, dim).run_batches(BATCH_SIZE))
    assert len(result[0]) > 0
    _record(benchmark, ROWS)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_join_aggregate_parallel(benchmark, fact, dim, workers):
    result = benchmark(
        lambda: insert_exchanges(join_aggregate(fact, dim), workers).run_batches(
            BATCH_SIZE
        )
    )
    assert len(result[0]) > 0
    _record(benchmark, ROWS)


# ----------------------------------------------------------------------
# The acceptance claim, asserted where the baseline is recorded
# ----------------------------------------------------------------------
def test_parallel_scaling_claim(benchmark, fact):
    """workers=4 vs workers=1 on scan→filter→aggregate.

    Always asserted: bit-identical rows, counter-identical metrics, and
    the ≥0.5× overhead floor (the pool must never *halve* throughput).
    On a parallel-capable host (multi-core free-threaded build) the
    acceptance bar is ≥1.5×; with the GIL or one core that speedup is a
    physical impossibility for pure-Python work, so the bar is recorded
    as not applicable rather than faked.
    """
    capability = host_capability()

    def best_of(fn, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def measure():
        serial_rows, serial_metrics = scan_filter_aggregate(fact).run_batches(
            BATCH_SIZE
        )
        for workers in (1, 4):
            rows, metrics = insert_exchanges(
                scan_filter_aggregate(fact), workers
            ).run_batches(BATCH_SIZE)
            assert rows == serial_rows
            assert metrics.counters == serial_metrics.counters
        one = best_of(
            lambda: insert_exchanges(scan_filter_aggregate(fact), 1).run_batches(
                BATCH_SIZE
            )
        )
        four = best_of(
            lambda: insert_exchanges(scan_filter_aggregate(fact), 4).run_batches(
                BATCH_SIZE
            )
        )
        return one / four

    speedup = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["speedup_workers4_vs_1"] = round(speedup, 3)
    benchmark.extra_info.update(capability)
    assert speedup >= 0.5, (
        f"parallel overhead out of bounds: workers=4 is {speedup:.2f}x of "
        "workers=1 (floor 0.5x)"
    )
    if capability["parallel_capable"]:
        assert speedup >= 1.5, (
            f"parallel scan→filter→aggregate only {speedup:.2f}x at workers=4 "
            "on a parallel-capable host (acceptance bar: 1.5x)"
        )

"""Parallel vs serial batch throughput, per exchange backend.

The same two pipeline shapes as :mod:`bench_vectorized` — **scan → filter
→ aggregate** and **join → aggregate** — executed at batch_size=1024
serially and behind exchanges on every backend × worker combination
(``thread``/``process`` × 1/2/4).  Each case records ``rows_per_sec``,
its ``backend``, and the host's capability record in ``extra_info``
(dumped to ``BENCH_bench_parallel.json``), so the committed baseline
documents what the recording host could *honestly* deliver on each
backend.

Honesty note, load-bearing: CPython **threads** only run Python bytecode
concurrently on a free-threaded build (PEP 703, ``python3.13t+``) with
more than one core — ``parallel_capable`` records that regime.  The
**process** backend escapes the GIL entirely (one interpreter per
worker), so it needs only multiple cores — ``process_capable`` records
that — but pays serialization: chains ship out pickled (token-shipped
under fork) and morsels ship back.  On a host where the relevant
capability is absent — including the single-core container this baseline
was recorded on — the pool adds bounded overhead instead of speedup, and
the only defensible claims are (a) bit-identical results, (b)
counter-identical metrics, and (c) that overhead stays small.  Each
``test_parallel_scaling_claim[<backend>]`` asserts the ≥1.5× workers=4
bar only when the backend-appropriate capability holds and the backend's
overhead floor (:data:`OVERHEAD_FLOOR` — wider for ``process``, whose
serialization bill has nothing to offset it on a saturated host)
otherwise, and ``tests/harness/test_bench_regression.py``
re-checks the same capability-aware gates as a cheap proxy on every CI
run.
"""
from __future__ import annotations

import time

import pytest

# Shared fixtures (fact/dim) come from conftest.py; the pipeline shapes
# and scaled size from repro.workloads.microbench — one workload
# definition for this module, bench_vectorized, and the regression proxies.
from repro.engine.parallel import host_capability, insert_exchanges
from repro.workloads.microbench import (
    BENCH_ROWS as ROWS,
    join_aggregate,
    scan_filter_aggregate,
)

BATCH_SIZE = 1024
BACKENDS = ("thread", "process")
WORKER_COUNTS = (1, 2, 4)
PARALLEL_CASES = [
    (backend, workers) for backend in BACKENDS for workers in WORKER_COUNTS
]
PARALLEL_IDS = [f"{backend}-{workers}" for backend, workers in PARALLEL_CASES]

#: Which capability flag says "this backend can actually scale here":
#: threads need a free-threaded multi-core build, processes just cores.
CAPABILITY_KEY = {"thread": "parallel_capable", "process": "process_capable"}

#: Overhead floor asserted even where the capability is absent.  The
#: thread pool adds only scheduling overhead, so it must stay within 2×
#: of workers=1.  The process backend on a host with *no spare core*
#: still pays its full serialization bill (chains shipped out, morsels
#: shipped back) with zero offsetting parallelism, so its honest bound
#: is wider — within 4× — which still trips on accidental whole-stream
#: re-sorts or quadratic shipping.
OVERHEAD_FLOOR = {"thread": 0.5, "process": 0.25}


def _record(benchmark, rows: int, backend: str | None = None) -> None:
    mean = getattr(getattr(benchmark, "stats", None), "stats", None)
    mean_s = getattr(mean, "mean", None)
    if mean_s:
        benchmark.extra_info["rows_per_sec"] = round(rows / mean_s)
    if backend is not None:
        benchmark.extra_info["backend"] = backend
    benchmark.extra_info.update(host_capability())


# ----------------------------------------------------------------------
# scan → filter → aggregate
# ----------------------------------------------------------------------
def test_scan_filter_aggregate_serial(benchmark, fact):
    result = benchmark(
        lambda: scan_filter_aggregate(fact).run_batches(BATCH_SIZE)
    )
    assert len(result[0]) > 0
    _record(benchmark, ROWS)


@pytest.mark.parametrize(("backend", "workers"), PARALLEL_CASES, ids=PARALLEL_IDS)
def test_scan_filter_aggregate_parallel(benchmark, fact, backend, workers):
    result = benchmark(
        lambda: insert_exchanges(
            scan_filter_aggregate(fact), workers, backend=backend
        ).run_batches(BATCH_SIZE)
    )
    assert len(result[0]) > 0
    _record(benchmark, ROWS, backend)


# ----------------------------------------------------------------------
# join → aggregate
# ----------------------------------------------------------------------
def test_join_aggregate_serial(benchmark, fact, dim):
    result = benchmark(lambda: join_aggregate(fact, dim).run_batches(BATCH_SIZE))
    assert len(result[0]) > 0
    _record(benchmark, ROWS)


@pytest.mark.parametrize(("backend", "workers"), PARALLEL_CASES, ids=PARALLEL_IDS)
def test_join_aggregate_parallel(benchmark, fact, dim, backend, workers):
    result = benchmark(
        lambda: insert_exchanges(
            join_aggregate(fact, dim), workers, backend=backend
        ).run_batches(BATCH_SIZE)
    )
    assert len(result[0]) > 0
    _record(benchmark, ROWS, backend)


# ----------------------------------------------------------------------
# The acceptance claim, asserted where the baseline is recorded
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_parallel_scaling_claim(benchmark, fact, backend):
    """workers=4 vs workers=1 on scan→filter→aggregate, per backend.

    Always asserted: bit-identical rows, counter-identical metrics, and
    the backend's overhead floor (see :data:`OVERHEAD_FLOOR` — the pool
    must never cost more than bounded overhead).  When the
    backend-appropriate capability holds — multi-core free-threaded for
    ``thread``, simply multi-core for ``process`` — the acceptance bar
    is ≥1.5×; otherwise that speedup is a physical impossibility for
    pure-Python work, so the bar is recorded as not applicable rather
    than faked.
    """
    capability = host_capability()
    capable = bool(capability[CAPABILITY_KEY[backend]])
    floor = OVERHEAD_FLOOR[backend]

    def best_of(fn, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def run(workers):
        return insert_exchanges(
            scan_filter_aggregate(fact), workers, backend=backend
        ).run_batches(BATCH_SIZE)

    def measure():
        serial_rows, serial_metrics = scan_filter_aggregate(fact).run_batches(
            BATCH_SIZE
        )
        for workers in (1, 4):
            rows, metrics = run(workers)
            assert rows == serial_rows
            assert metrics.counters == serial_metrics.counters
        one = best_of(lambda: run(1))
        four = best_of(lambda: run(4))
        return one / four

    speedup = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info["speedup_workers4_vs_1"] = round(speedup, 3)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info.update(capability)
    assert speedup >= floor, (
        f"{backend} parallel overhead out of bounds: workers=4 is "
        f"{speedup:.2f}x of workers=1 (floor {floor}x)"
    )
    if capable:
        assert speedup >= 1.5, (
            f"{backend} scan→filter→aggregate only {speedup:.2f}x at "
            "workers=4 on a capable host (acceptance bar: 1.5x)"
        )

"""Whole-plan memoization benchmarks.

The ROADMAP's heavy-traffic story: repeated query templates should skip
planning entirely.  PR 1 got a warm repeated-template planning path of
~5.6ms per 10 plannings (oracle memoization only, see bench_engine.py);
the plan cache collapses that to two dict lookups plus a fingerprint —
these cases pin the relative shape:

* ``bypass`` — the pre-cache warm path (interned theories, no plan cache);
* ``warm``  — every planning after the first is a cache hit, and must be
  at least ~5× faster than ``bypass`` per round;
* ``cold``  — miss + store churn: the overhead the cache adds when it
  never hits (bounded at a few percent of planning cost);
* ``execute`` — end-to-end: repeated execution of a small template, where
  planning used to dominate.
"""
from __future__ import annotations

PLAN_REPEATS = 10


def test_repeated_template_plan_bypass(benchmark, tpcds, template_sql):
    """Baseline: warm theories but no plan cache (use_cache=False)."""
    sql = template_sql(tpcds, "Q9")
    tpcds.database.plan(sql, use_cache=False)  # warm theories + oracle

    def run():
        for _ in range(PLAN_REPEATS):
            plan = tpcds.database.plan(sql, use_cache=False)
        return plan

    plan = benchmark(run)
    assert plan.plan_info.cache_state == "bypass"


def test_repeated_template_plan_cache_warm(benchmark, tpcds, template_sql):
    """Repeated plannings of one template: all hits after the first."""
    sql = template_sql(tpcds, "Q9")
    database = tpcds.database
    database.plan(sql)  # fill the entry

    def run():
        for _ in range(PLAN_REPEATS):
            plan = database.plan(sql)
        return plan

    plan = benchmark(run)
    assert plan.plan_info.cache_state == "hit"
    stats = database.plan_cache_stats()
    assert stats["hits"] > stats["misses"]


def test_repeated_template_plan_cache_cold(benchmark, tpcds, template_sql):
    """Every round clears the cache: measures miss + store overhead."""
    sql = template_sql(tpcds, "Q9")
    database = tpcds.database

    def run():
        for _ in range(PLAN_REPEATS):
            database.plan_cache.clear()
            plan = database.plan(sql)
        return plan

    plan = benchmark(run)
    assert plan.plan_info.cache_state == "miss"


def test_template_sweep_cache_warm(benchmark, tpcds):
    """All 13 rewrite templates planned back to back, cache warm — the
    steady-state mix of a templated workload."""
    from repro.workloads.tpcds_lite import DATE_QUERIES

    lo, hi = tpcds.date_range(100, 60)
    sqls = [sql.format(lo=lo, hi=hi) for _, sql in DATE_QUERIES]
    database = tpcds.database
    for sql in sqls:
        database.plan(sql)

    def run():
        return [database.plan(sql) for sql in sqls]

    plans = benchmark(run)
    assert all(plan.plan_info.cache_state == "hit" for plan in plans)


def test_execute_small_template_cache_warm(benchmark, tpcds, template_sql):
    """End-to-end repeated execution of a narrow template (Q12): with the
    plan cache, execution cost is the row work, not the planning."""
    sql = template_sql(tpcds, "Q12")
    database = tpcds.database
    database.execute(sql)

    def run():
        return database.execute(sql)

    result = benchmark(run)
    assert result.plan.plan_info.cache_state == "hit"


def test_plan_cache_speedup_sanity(tpcds, template_sql):
    """Not a timed case: pin the headline ratio warm-hit vs bypass ≥ 5×."""
    import time

    sql = template_sql(tpcds, "Q9")
    database = tpcds.database
    database.plan(sql)

    def best_of(fn, rounds: int = 5) -> float:
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(PLAN_REPEATS):
                fn()
            times.append(time.perf_counter() - start)
        return min(times)

    bypass = best_of(lambda: database.plan(sql, use_cache=False))
    warm = best_of(lambda: database.plan(sql))
    assert warm * 5 < bypass, f"warm={warm:.6f}s bypass={bypass:.6f}s"

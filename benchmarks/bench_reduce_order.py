"""E10 — ReduceOrder ([17]) vs ReduceOrder++ (the paper's augmentation).

Measures both the rewrite throughput and the *reduction power*: across a
family of order specs over the date hierarchy, ReduceOrder++ must strictly
dominate (drop at least as much, and strictly more on the paper's
``[year, quarter, month]`` shape).
"""
from __future__ import annotations

import pytest

from repro.core.inference import ODTheory
from repro.core.dependency import fd, od
from repro.optimizer.reduce_order import (
    reduce_order_exact,
    reduce_order_fd,
    reduce_order_od,
)

#: the date-hierarchy knowledge: ODs + the FDs they imply
THEORY = ODTheory(
    [
        od("moy", "qoy"),
        od("date", "year,moy,dom"),
        od("date", "week"),
        fd("moy", "qoy"),
        fd("date", "year,qoy,moy,dom,week"),
    ]
)

SPECS = [
    ["year", "qoy", "moy"],
    ["year", "moy", "qoy"],
    ["year", "qoy", "moy", "dom"],
    ["date", "year", "qoy"],
    ["year", "week", "qoy", "moy"],
    ["qoy", "moy", "dom"],
    ["year", "moy", "dom", "qoy"],
]


@pytest.mark.parametrize("algo,fn", [
    ("fd", reduce_order_fd),
    ("od", reduce_order_od),
    ("exact", reduce_order_exact),
])
def test_reduction_throughput(benchmark, algo, fn):
    def run():
        return [fn(THEORY, spec) for spec in SPECS]

    results = benchmark(run)
    assert len(results) == len(SPECS)


def test_reduction_power(benchmark):
    """ReduceOrder++ strictly dominates ReduceOrder on this family."""

    def run():
        fd_dropped = od_dropped = 0
        for spec in SPECS:
            fd_out = reduce_order_fd(THEORY, spec)
            od_out = reduce_order_od(THEORY, spec)
            assert len(od_out) <= len(fd_out)
            fd_dropped += len(spec) - len(fd_out)
            od_dropped += len(spec) - len(od_out)
        return fd_dropped, od_dropped

    fd_dropped, od_dropped = benchmark(run)
    assert od_dropped > fd_dropped
    print(
        f"\nE10 attributes dropped across {len(SPECS)} specs: "
        f"ReduceOrder={fd_dropped}, ReduceOrder++={od_dropped}"
    )


def test_headline_spec(benchmark):
    """[year, quarter, month]: FD keeps quarter, OD removes it."""

    def run():
        return (
            reduce_order_fd(THEORY, ["year", "qoy", "moy"]),
            reduce_order_od(THEORY, ["year", "qoy", "moy"]),
        )

    fd_out, od_out = benchmark(run)
    assert fd_out == ("year", "qoy", "moy")
    assert od_out == ("year", "moy")

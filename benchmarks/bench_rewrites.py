"""The logical rewrite pack, on vs off, on its planted-win workload.

Each rewrite_pack template executes twice — with the pack enabled (the
default) and with ``rewrites="off"`` — at benchmark scale, plan-cache
warm so the timings measure execution, not planning.
``test_rewrites_claim`` is the acceptance record: each rule must beat
the unrewritten plan on its planted query, measured both in wall time
and in the deterministic ``Metrics.work`` ratio (the latter is what
``tests/harness/test_bench_regression.py`` re-checks as a cheap,
host-independent proxy on every CI run).  The per-rule bars: eager
aggregation ≥1.5×, scan consolidation ≥1.2×, join elimination ≥1.5×.
"""
from __future__ import annotations

import time

import pytest

from repro.workloads.rewrite_pack import REWRITE_PACK_QUERIES

TEMPLATES = {qid: sql for qid, sql, _ in REWRITE_PACK_QUERIES}

#: qid → (rule it plants, acceptance bar for work_off / work_on).
CLAIMS = {
    "RW1": ("eager-agg", 1.5),
    "RW2": ("scan-consolidation", 1.2),
    "RW3": ("join-elimination", 1.5),
}


# ----------------------------------------------------------------------
# Execution time per template, both regimes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("qid", sorted(TEMPLATES))
def test_rewrites_on_execution(benchmark, rewrite_pack_db, qid):
    db = rewrite_pack_db
    sql = TEMPLATES[qid]
    db.plan(sql)  # warm the plan cache: measure execution only
    result = benchmark(lambda: db.execute(sql))
    benchmark.extra_info["measured_work"] = round(result.metrics.work)


@pytest.mark.parametrize("qid", sorted(TEMPLATES))
def test_rewrites_off_execution(benchmark, rewrite_pack_db, qid):
    db = rewrite_pack_db
    sql = TEMPLATES[qid]
    db.plan(sql, rewrites="off")
    result = benchmark(lambda: db.execute(sql, rewrites="off"))
    benchmark.extra_info["measured_work"] = round(result.metrics.work)


# ----------------------------------------------------------------------
# The acceptance claim, asserted where the baseline is recorded
# ----------------------------------------------------------------------
def test_rewrites_claim(benchmark, rewrite_pack_db):
    """Rewritten vs unrewritten plans, per rule.

    Asserted here (and re-checked by the bench-regression proxy against
    the committed JSON): identical result multisets, the planted rule
    actually recorded on the plan, and at least the per-rule ``work``
    ratio.  Wall-time speedups are recorded alongside; ``work`` is the
    gated number because it is exact on every host.
    """
    db = rewrite_pack_db

    def best_of(fn, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def measure():
        ratios = {}
        for qid, (rule, bar) in sorted(CLAIMS.items()):
            sql = TEMPLATES[qid]
            on = db.execute(sql)
            off = db.execute(sql, rewrites="off")
            assert sorted(on.rows, key=repr) == sorted(off.rows, key=repr), qid
            assert [r.rule for r in on.plan.plan_info.rewrites] == [rule], qid
            assert off.plan.plan_info.rewrites == [], qid
            work_ratio = off.metrics.work / on.metrics.work
            on_s = best_of(lambda: db.execute(sql))
            off_s = best_of(lambda: db.execute(sql, rewrites="off"))
            ratios[rule] = (bar, work_ratio, off_s / on_s)
        return ratios

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    for rule, (bar, work_ratio, speedup) in ratios.items():
        benchmark.extra_info[f"work_ratio_off_vs_on_{rule}"] = round(work_ratio, 3)
        benchmark.extra_info[f"speedup_on_vs_off_{rule}"] = round(speedup, 3)
        assert work_ratio >= bar, (
            f"{rule} lost its edge: off/on work ratio only {work_ratio:.2f}x "
            f"on its planted-win query (acceptance bar: {bar}x)"
        )

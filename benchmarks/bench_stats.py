"""Estimate-vs-actual Q-error: histogram statistics vs the uniform baseline.

Every skewed snowflake template (``SNOWFLAKE_SKEWED_QUERIES`` — fact
dates beta(2,2)-distributed, promo calendar overlapping only the thin
tail) plans and executes under both estimation modes:

* ``uniform`` — the pre-histogram model: min/max interpolation,
  ``rows/ndv`` equalities, NDV-under-containment joins (with this PR's
  degenerate-case bug fixes, so the comparison isolates the *model*);
* ``histogram`` — equi-depth histograms, KMV sketch overlap, FD key
  caps, OD interleaved-merge join bounds.

Per template the Q-error ``max(est/actual, actual/est)`` of the root
cardinality estimate is recorded; ``test_stats_qerror_claim`` is the
acceptance record: the histogram mode's median Q-error must beat the
uniform baseline's, and the planted SK1 plan flip must hold — under
uniform statistics the search drags the item-filtered fact through the
promo hash, under histogram statistics it probes the promo join first,
measurably cheaper in deterministic ``Metrics.work``.
``tests/harness/test_bench_regression.py`` re-checks the committed
claims plus a live proxy on every CI run.
"""
from __future__ import annotations

import statistics

from repro.engine.stats import set_estimation_mode
from repro.optimizer.costing import estimate_plan
from repro.workloads.snowflake import skewed_query_sql
from repro.workloads.tpcds_lite import DATE_QUERIES

#: The template whose join order must flip between the modes.
FLIP_QUERY = "SK1"


def _canon_rows(rows):
    """Different join orders accumulate float SUMs in different orders;
    compare result multisets up to last-ulp noise."""
    return sorted(
        (
            tuple(round(v, 6) if isinstance(v, float) else v for v in row)
            for row in rows
        ),
        key=repr,
    )


def _measure_mode(db, sqls: dict, mode: str) -> dict:
    """Per-template (estimate, actual, work, join orders) under one mode."""
    previous = set_estimation_mode(mode)
    try:
        out = {}
        for qid, sql in sqls.items():
            plan = db.plan(sql, use_cache=False)
            estimate = max(1.0, estimate_plan(db, plan).rows)
            orders = tuple(d.chosen for d in plan.plan_info.join_orders)
            result = db.execute(sql, use_cache=False)
            actual = max(1, len(result.rows))
            out[qid] = {
                "estimate": estimate,
                "actual": actual,
                "qerror": max(estimate / actual, actual / estimate),
                "work": result.metrics.work,
                "orders": orders,
                "rows": _canon_rows(result.rows),
            }
        return out
    finally:
        set_estimation_mode(previous)


# ----------------------------------------------------------------------
# The acceptance claim, asserted where the baseline is recorded
# ----------------------------------------------------------------------
def test_stats_qerror_claim(benchmark, snowflake):
    """Median Q-error must improve and the SK1 join order must flip to a
    measurably cheaper plan."""
    db = snowflake.database
    sqls = skewed_query_sql(snowflake)

    def measure():
        uniform = _measure_mode(db, sqls, "uniform")
        histogram = _measure_mode(db, sqls, "histogram")
        return uniform, histogram

    uniform, histogram = benchmark.pedantic(measure, rounds=1, iterations=1)

    for qid in sqls:
        assert uniform[qid]["rows"] == histogram[qid]["rows"], (
            f"{qid}: result rows differ between estimation modes — "
            "estimates must never change answers"
        )

    median_uniform = statistics.median(e["qerror"] for e in uniform.values())
    median_histogram = statistics.median(e["qerror"] for e in histogram.values())
    benchmark.extra_info["median_q_uniform"] = round(median_uniform, 3)
    benchmark.extra_info["median_q_histogram"] = round(median_histogram, 3)
    benchmark.extra_info["qerror_uniform"] = {
        qid: round(e["qerror"], 2) for qid, e in uniform.items()
    }
    benchmark.extra_info["qerror_histogram"] = {
        qid: round(e["qerror"], 2) for qid, e in histogram.items()
    }

    flip_uniform = uniform[FLIP_QUERY]
    flip_histogram = histogram[FLIP_QUERY]
    benchmark.extra_info["flip_query"] = FLIP_QUERY
    benchmark.extra_info["flip_uniform_order"] = " ".join(flip_uniform["orders"])
    benchmark.extra_info["flip_histogram_order"] = " ".join(
        flip_histogram["orders"]
    )
    benchmark.extra_info["flip_work_uniform"] = round(flip_uniform["work"])
    benchmark.extra_info["flip_work_histogram"] = round(flip_histogram["work"])
    work_ratio = flip_uniform["work"] / max(1.0, flip_histogram["work"])
    benchmark.extra_info["flip_work_ratio"] = round(work_ratio, 3)

    assert median_histogram < median_uniform, (
        f"histogram statistics lost their edge: median Q-error "
        f"{median_histogram:.2f} vs uniform baseline {median_uniform:.2f}"
    )
    assert flip_uniform["orders"] != flip_histogram["orders"], (
        f"{FLIP_QUERY} no longer flips its join order between modes"
    )
    assert work_ratio >= 1.1, (
        f"the {FLIP_QUERY} flip is no longer measurably cheaper: "
        f"uniform-order work is only {work_ratio:.2f}x the histogram-order "
        "work (acceptance bar: 1.1x)"
    )


def test_stats_qerror_tpcds(benchmark, tpcds):
    """Q-error over TPC-DS-lite date windows (fact dates equally skewed):
    tail and peak windows on the three biggest date-range templates."""
    db = tpcds.database
    days = tpcds.days
    sqls = {}
    for qid in ("Q1", "Q2", "Q3"):
        template = dict(DATE_QUERIES)[qid]
        for label, (first, length) in {
            "tail": (0, max(7, int(days * 0.05))),
            "peak": (int(days * 0.47), max(7, int(days * 0.06))),
        }.items():
            lo, hi = tpcds.date_range(first, length)
            sqls[f"{qid}-{label}"] = template.format(lo=lo, hi=hi)

    def measure():
        uniform = _measure_mode(db, sqls, "uniform")
        histogram = _measure_mode(db, sqls, "histogram")
        return uniform, histogram

    uniform, histogram = benchmark.pedantic(measure, rounds=1, iterations=1)
    median_uniform = statistics.median(e["qerror"] for e in uniform.values())
    median_histogram = statistics.median(e["qerror"] for e in histogram.values())
    benchmark.extra_info["median_q_uniform"] = round(median_uniform, 3)
    benchmark.extra_info["median_q_histogram"] = round(median_histogram, 3)
    assert median_histogram <= median_uniform, (
        f"histogram statistics regressed on TPC-DS-lite: median Q-error "
        f"{median_histogram:.2f} vs uniform {median_uniform:.2f}"
    )


# ----------------------------------------------------------------------
# What the subsystem costs: the single collection pass
# ----------------------------------------------------------------------
def test_stats_collection_pass(benchmark, snowflake):
    """One full ``collect_stats`` pass over the fact table — histograms,
    sketches, and dependency facts included.  Not gated; documents the
    price of the per-epoch recollection."""
    from repro.engine.stats import collect_stats

    db = snowflake.database
    table = db.table("sales")
    indexes = db.indexes_on("sales")
    stats = benchmark(lambda: collect_stats(table, indexes=indexes))
    column = stats.column("f_date_sk")
    benchmark.extra_info["histogram_buckets"] = len(column.histogram.counts)
    benchmark.extra_info["rows"] = stats.row_count

"""E8 — Example 5: the Taxes table.

Paper claim: from ``[income] ↦ [bracket]`` and ``[income] ↦ [payable]``,
Union gives ``[income] ↦ [bracket, payable]``, so an ``ORDER BY bracket,
payable`` is answered by the tree index on ``income`` — no sort.
"""
from __future__ import annotations

import pytest

from repro.engine.logical import bind
from repro.engine.sql.parser import parse
from repro.optimizer.planner import Planner

SQL = "SELECT income, bracket, payable FROM taxes ORDER BY bracket, payable"


def run_mode(db, mode):
    plan = Planner(db, mode=mode).plan(bind(parse(SQL)))
    return plan.run()


@pytest.mark.parametrize("mode", ["fd", "od"])
def test_taxes_orderby(benchmark, tax_db, mode):
    rows, metrics = benchmark(run_mode, tax_db, mode)
    assert rows
    if mode == "od":
        assert metrics.get("sorts") == 0
    else:
        assert metrics.get("sorts") == 1


def test_taxes_shape(benchmark, tax_db):
    def run():
        fd_rows, fd_metrics = run_mode(tax_db, "fd")
        od_rows, od_metrics = run_mode(tax_db, "od")
        return fd_rows, fd_metrics, od_rows, od_metrics

    fd_rows, fd_metrics, od_rows, od_metrics = benchmark(run)
    # equal answers up to ties on the sort keys
    assert [(r[1], r[2]) for r in fd_rows] == [(r[1], r[2]) for r in od_rows]
    assert od_metrics.work < fd_metrics.work


def test_taxes_range_query(benchmark, tax_db):
    """A bracket-range scan rides the income index through the OD."""
    sql = (
        "SELECT COUNT(*) AS n FROM taxes "
        "WHERE income BETWEEN 50000 AND 100000"
    )

    def run():
        plan = Planner(tax_db, mode="od").plan(bind(parse(sql)))
        return plan.run()

    rows, metrics = benchmark(run)
    assert rows[0][0] > 0

"""E9 — the Section 2.3 TPC-DS experiment: date surrogate-key rewrite.

Paper numbers (IBM DB2 9.7 prototype, TPC-DS): *thirteen* queries matched
the rewrite's preconditions; **every one benefited**, average wall-clock
gain ≈ **48%** (later extended to eighteen queries).

Reproduction contract: same shape — all thirteen query templates must (a)
trigger the rewrite, (b) return identical answers, and (c) win, with an
average gain of comparable magnitude.  Absolute numbers differ (our
substrate is a Python engine, not DB2); EXPERIMENTS.md records the measured
per-query gains next to the paper's headline.
"""
from __future__ import annotations

import time

import pytest

from repro.workloads.tpcds_lite import DATE_QUERIES

def _range(tpcds, fraction_start=0.35, fraction_len=0.03):
    """A selective range placed relative to the calendar length, so the
    benchmark is meaningful at any REPRO_BENCH_SCALE."""
    start = int(tpcds.days * fraction_start)
    length = max(3, int(tpcds.days * fraction_len))
    return tpcds.date_range(start, length)


def _sql(tpcds, template):
    lo, hi = _range(tpcds)
    return template.format(lo=lo, hi=hi)


@pytest.mark.parametrize("qid,template", DATE_QUERIES)
def test_baseline(benchmark, tpcds, qid, template):
    sql = _sql(tpcds, template)
    result = benchmark(tpcds.database.execute, sql, False)
    assert result.rows is not None


@pytest.mark.parametrize("qid,template", DATE_QUERIES)
def test_rewritten(benchmark, tpcds, qid, template):
    sql = _sql(tpcds, template)
    result = benchmark(tpcds.database.execute, sql, True)
    assert result.plan.plan_info.date_rewrites, f"{qid}: rewrite did not fire"


def test_all_thirteen_benefit(benchmark, tpcds):
    """The headline claim, measured in one pass: 13/13 queries benefit."""
    database = tpcds.database

    def sweep():
        gains = {}
        for qid, template in DATE_QUERIES:
            sql = _sql(tpcds, template)
            t0 = time.perf_counter()
            base = database.execute(sql, optimize=False)
            t1 = time.perf_counter()
            opt = database.execute(sql, optimize=True)
            t2 = time.perf_counter()
            assert sorted(base.rows) == sorted(opt.rows), qid
            assert opt.plan.plan_info.date_rewrites, qid
            wall_gain = 1 - (t2 - t1) / max(t1 - t0, 1e-9)
            work_gain = 1 - opt.metrics.work / max(base.metrics.work, 1e-9)
            gains[qid] = (wall_gain, work_gain)
        return gains

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    wall = [g[0] for g in gains.values()]
    work = [g[1] for g in gains.values()]
    # paper shape: every query benefits; average gain substantial (~48% there)
    assert all(g > 0 for g in work), f"work regressions: {gains}"
    if len(tpcds.database.table("store_sales")) >= 50_000:
        # wall-clock includes planning; it only dominates at real data sizes
        assert sum(wall) / len(wall) > 0.2, f"average wall gain too small: {gains}"
    print("\nE9 per-query gains (paper: 13/13 benefit, avg 48%):")
    for qid, (wg, kg) in gains.items():
        print(f"  {qid:4s}  wall {wg:6.1%}   work {kg:6.1%}")
    print(f"  avg   wall {sum(wall)/len(wall):6.1%}   work {sum(work)/len(work):6.1%}")


def test_partition_pruning_effect(benchmark, tpcds):
    """The 'scan only the relevant partitions' effect: rows touched by the
    optimized plan scale with the date range, not the table."""
    database = tpcds.database
    template = DATE_QUERIES[0][1]

    def run():
        narrow_range = _range(tpcds, 0.35, 0.01)
        wide_range = _range(tpcds, 0.10, 0.70)
        narrow = database.execute(
            template.format(lo=narrow_range[0], hi=narrow_range[1]), optimize=True
        )
        wide = database.execute(
            template.format(lo=wide_range[0], hi=wide_range[1]), optimize=True
        )
        return narrow.metrics.get("rows_scanned"), wide.metrics.get("rows_scanned")

    narrow_rows, wide_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert narrow_rows < wide_rows
    total = len(database.table("store_sales"))
    assert narrow_rows < total / 10

"""Row vs vectorized throughput (the tentpole claim of the batch mode).

Two pipeline shapes, each executed row-at-a-time and at batch sizes
1/64/1024:

* **scan → filter → aggregate** — the shape the ROADMAP's "Vectorized
  batches" item names: a full scan, a range predicate, and a grouped
  COUNT+SUM.  The acceptance bar is ≥5× rows/sec at batch_size=1024.
* **join → aggregate** — the TPC-DS-lite shape (fact ⋈ dim, grouped sum),
  where the probe loop keeps more per-row work in Python.

Each case records ``rows_per_sec`` in ``extra_info`` (dumped to
``BENCH_bench_vectorized.json`` alongside the timings), so the committed
baseline documents the throughput claim, and
``tests/harness/test_bench_regression.py`` re-checks a cheap proxy of the
speedup on every CI run.

batch_size=1 is included deliberately: it prices the batch machinery's
fixed overhead (one kernel call + one metrics charge per single-row
batch) — the reason ``DEFAULT_BATCH_SIZE`` is 1024, not 1.
"""
from __future__ import annotations

import time

import pytest

# Shared fixtures (fact/dim) come from conftest.py; the pipeline shapes
# and scaled size from repro.workloads.microbench — one workload
# definition for this module, bench_parallel, and the regression proxies.
from repro.workloads.microbench import (
    BENCH_ROWS as ROWS,
    join_aggregate,
    scan_filter_aggregate,
)

BATCH_SIZES = (1, 64, 1024)


def _record_rate(benchmark, rows):
    mean = getattr(getattr(benchmark, "stats", None), "stats", None)
    mean_s = getattr(mean, "mean", None)
    if mean_s:
        benchmark.extra_info["rows_per_sec"] = round(rows / mean_s)


# ----------------------------------------------------------------------
# scan → filter → aggregate
# ----------------------------------------------------------------------
def test_scan_filter_aggregate_row(benchmark, fact):
    result = benchmark(lambda: scan_filter_aggregate(fact).run())
    assert len(result[0]) > 0
    _record_rate(benchmark, ROWS)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_scan_filter_aggregate_batch(benchmark, fact, batch_size):
    result = benchmark(
        lambda: scan_filter_aggregate(fact).run_batches(batch_size)
    )
    assert len(result[0]) > 0
    _record_rate(benchmark, ROWS)


# ----------------------------------------------------------------------
# join → aggregate
# ----------------------------------------------------------------------
def test_join_aggregate_row(benchmark, fact, dim):
    result = benchmark(lambda: join_aggregate(fact, dim).run())
    assert len(result[0]) > 0
    _record_rate(benchmark, ROWS)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_join_aggregate_batch(benchmark, fact, dim, batch_size):
    result = benchmark(lambda: join_aggregate(fact, dim).run_batches(batch_size))
    assert len(result[0]) > 0
    _record_rate(benchmark, ROWS)


# ----------------------------------------------------------------------
# The acceptance claim, asserted where the baseline is recorded
# ----------------------------------------------------------------------
def test_vectorized_speedup_claim(benchmark, fact):
    """batch_size=1024 must beat the row path ≥5× on scan→filter→aggregate
    (and produce identical results while doing it)."""

    def best_of(fn, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def measure():
        row_rows, row_metrics = scan_filter_aggregate(fact).run()
        batch_rows, batch_metrics = scan_filter_aggregate(fact).run_batches(1024)
        assert batch_rows == row_rows
        assert batch_metrics.counters == row_metrics.counters
        row_s = best_of(lambda: scan_filter_aggregate(fact).run())
        batch_s = best_of(lambda: scan_filter_aggregate(fact).run_batches(1024))
        return row_s / batch_s

    speedup = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert speedup >= 5.0, (
        f"vectorized scan→filter→aggregate only {speedup:.2f}x over the row "
        "path at batch_size=1024 (acceptance bar: 5x)"
    )

"""Shared fixtures for the benchmark harness.

Workloads are built once per session at laptop scale.  Set
``REPRO_BENCH_SCALE`` (default 1.0) to shrink/grow all datasets together.

Each run also dumps per-benchmark timings to ``BENCH_<module>.json`` in the
repo root (see :func:`pytest_sessionfinish`), so successive PRs leave a
comparable perf trajectory behind.
"""
from __future__ import annotations

import collections
import json
import os
import pathlib

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    return max(1, int(n * SCALE))


# ----------------------------------------------------------------------
# Shared execution-mode fixtures: one fact/dim pair, used by
# bench_vectorized (row vs batch) and bench_parallel (serial vs workers)
# so the baselines test_bench_regression.py compares can never
# desynchronize.  The builders and pipeline shapes live in
# repro.workloads.microbench — the regression proxies import the same
# ones.
# ----------------------------------------------------------------------
@pytest.fixture(scope="session")
def fact():
    from repro.workloads.microbench import BENCH_ROWS, build_fact

    return build_fact(BENCH_ROWS)


@pytest.fixture(scope="session")
def dim():
    from repro.workloads.microbench import build_dim

    return build_dim()


def pytest_sessionfinish(session, exitstatus):
    """Dump per-benchmark timings to ``BENCH_<module>.json``.

    Best-effort: any pytest-benchmark API drift must never fail the run.
    """
    benchsession = getattr(session.config, "_benchmarksession", None)
    if benchsession is None or not getattr(benchsession, "benchmarks", None):
        return
    try:
        per_module = collections.defaultdict(dict)
        for bench in benchsession.benchmarks:
            fullname = getattr(bench, "fullname", "") or ""
            module = pathlib.Path(fullname.split("::")[0]).stem or "unknown"
            stats = getattr(bench, "stats", None)
            inner = getattr(stats, "stats", stats)
            entry = {
                "mean_s": getattr(inner, "mean", None),
                "stddev_s": getattr(inner, "stddev", None),
                "min_s": getattr(inner, "min", None),
                "rounds": getattr(inner, "rounds", None),
                "scale": SCALE,
            }
            # e.g. rows_per_sec from bench_vectorized: throughput claims
            # travel with the timing they were derived from.
            extra = getattr(bench, "extra_info", None)
            if extra:
                entry["extra_info"] = dict(extra)
            per_module[module][getattr(bench, "name", fullname)] = entry
        root = pathlib.Path(str(session.config.rootdir))
        for module, entries in sorted(per_module.items()):
            path = root / f"BENCH_{module}.json"
            path.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n")
    except Exception:  # pragma: no cover - diagnostics must not break runs
        pass


@pytest.fixture(scope="session")
def template_sql():
    """One of the thirteen TPC-DS-lite templates, instantiated with a
    natural-date range — shared by every planning benchmark so they all
    measure the same queries."""

    def make(workload, qid: str, first_day: int = 100, length: int = 60) -> str:
        from repro.workloads.tpcds_lite import DATE_QUERIES

        lo, hi = workload.date_range(first_day, length)
        return dict(DATE_QUERIES)[qid].format(lo=lo, hi=hi)

    return make


def _warm(database):
    """Build every index up front so benchmarks measure query work, not the
    one-time lazy index construction."""
    for index in database.indexes.values():
        index.build()


@pytest.fixture(scope="session")
def tpcds():
    from repro.workloads.tpcds_lite import build_tpcds_lite

    workload = build_tpcds_lite(days=scaled(365 * 3), sales_rows=scaled(120_000))
    _warm(workload.database)
    return workload


@pytest.fixture(scope="session")
def snowflake():
    from repro.workloads.snowflake import build_snowflake

    workload = build_snowflake(days=scaled(365 * 2), sales_rows=scaled(60_000))
    _warm(workload.database)
    return workload


@pytest.fixture(scope="session")
def rewrite_pack_db():
    from repro.workloads.rewrite_pack import build_rewrite_pack

    database = build_rewrite_pack(
        fact_rows=scaled(30_000),
        wide_rows=scaled(20_000),
        order_rows=scaled(40_000),
        customers=scaled(20_000),
    )
    _warm(database)
    return database


@pytest.fixture(scope="session")
def date_db():
    from repro.engine.database import Database
    from repro.workloads.datedim import build_date_dim

    database = Database()
    build_date_dim(database, days=scaled(365 * 6))
    _warm(database)
    return database


@pytest.fixture(scope="session")
def tax_db():
    from repro.engine.database import Database
    from repro.workloads.taxes import build_taxes

    database = Database()
    build_taxes(database, rows=scaled(50_000))
    _warm(database)
    return database

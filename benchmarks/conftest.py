"""Shared fixtures for the benchmark harness.

Workloads are built once per session at laptop scale.  Set
``REPRO_BENCH_SCALE`` (default 1.0) to shrink/grow all datasets together.
"""
from __future__ import annotations

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    return max(1, int(n * SCALE))


def _warm(database):
    """Build every index up front so benchmarks measure query work, not the
    one-time lazy index construction."""
    for index in database.indexes.values():
        index.build()


@pytest.fixture(scope="session")
def tpcds():
    from repro.workloads.tpcds_lite import build_tpcds_lite

    workload = build_tpcds_lite(days=scaled(365 * 3), sales_rows=scaled(120_000))
    _warm(workload.database)
    return workload


@pytest.fixture(scope="session")
def date_db():
    from repro.engine.database import Database
    from repro.workloads.datedim import build_date_dim

    database = Database()
    build_date_dim(database, days=scaled(365 * 6))
    _warm(database)
    return database


@pytest.fixture(scope="session")
def tax_db():
    from repro.engine.database import Database
    from repro.workloads.taxes import build_taxes

    database = Database()
    build_taxes(database, rows=scaled(50_000))
    _warm(database)
    return database

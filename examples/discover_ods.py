"""OD discovery: from raw data to declared constraints to better plans.

The full loop the paper's future work sketches: profile an instance for
the order dependencies it satisfies, verify them, feed them to the
inference oracle, and use the resulting theory for query optimization —
including building an Armstrong relation that *characterizes* exactly what
was learned.

Run:  python examples/discover_ods.py
"""
from repro.core.armstrong import canonical_armstrong
from repro.core.attrs import AttrList
from repro.core.dependency import od
from repro.core.inference import ODTheory
from repro.core.satisfaction import satisfies
from repro.discovery import compose_rhs, discover_ods
from repro.workloads.datedim import generate_date_dim


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Profile a two-year calendar for its dependencies.
    # ------------------------------------------------------------------
    table = generate_date_dim(days=730)
    relation = table.as_relation()
    print(f"profiling {len(relation)} calendar rows / {len(relation.attributes)} columns...")
    result = discover_ods(relation, max_lhs=1, max_fd_lhs=1)
    print("found:", result.summary())

    print("\nminimal single-attribute ODs (a sample):")
    for dependency in result.ods[:12]:
        print("  ", dependency)

    # ------------------------------------------------------------------
    # 2. Grow maximal right-hand sides (the Figure 2 paths, data-driven).
    # ------------------------------------------------------------------
    grown = compose_rhs(
        relation,
        AttrList(["d_date"]),
        ["d_year", "d_qoy", "d_moy", "d_dom", "d_month_name"],
    )
    print(f"\n[d_date] orders the list {grown!r} — a Figure 2 path, recovered")
    assert satisfies(relation, od("d_date", list(grown)))

    # ------------------------------------------------------------------
    # 3. Feed discoveries to the oracle and derive *new* facts.
    # ------------------------------------------------------------------
    theory = ODTheory(result.statements())
    # Union composes [d_date_sk] |-> [d_year] and [d_date_sk] |-> [d_week_seq]
    derived = od("d_date_sk", "d_year,d_week_seq")
    print(f"\ndiscovered facts imply {derived}:", theory.implies(derived))
    assert theory.implies(derived)
    # ... while facts *not* entailed by the single-attribute discoveries are
    # correctly refused (the oracle is exact, not optimistic):
    not_derivable = od("d_date_sk", "d_year,d_qoy")
    print(f"but NOT {not_derivable}:", not theory.implies(not_derivable))

    # ------------------------------------------------------------------
    # 4. Characterize the learned theory with an Armstrong relation: a
    #    small table satisfying exactly the implied ODs (Section 4's
    #    construction, over a 4-column fragment).
    # ------------------------------------------------------------------
    fragment = ["d_date_sk", "d_year", "d_moy", "d_qoy"]
    kept = [
        statement
        for statement in result.statements()
        if set(statement.attributes) <= set(fragment)
    ]
    small_theory = ODTheory(kept)
    armstrong = canonical_armstrong(small_theory, AttrList(fragment))
    print(
        f"\nArmstrong relation for the {len(kept)}-statement fragment: "
        f"{len(armstrong.rows)} rows"
    )
    checks = [
        od("d_date_sk", "d_year"),
        od("d_year", "d_date_sk"),
        od("d_moy", "d_qoy"),
        od("d_qoy", "d_moy"),
    ]
    for candidate in checks:
        on_table = satisfies(armstrong, candidate)
        implied = small_theory.implies(candidate)
        marker = "✓" if on_table == implied else "✗"
        print(f"  {marker} {candidate}: table={on_table}, implied={implied}")


if __name__ == "__main__":
    main()

"""Physical design with ODs: narrowing and dropping redundant indexes.

The design-side payoff of OD reasoning (the paper's future-work item on
normalization, and [6]'s "reduce indexing space"): columns whose order is
already implied make index keys wider than they need to be, and whole
indexes order-subsumed by others can be dropped without losing any sort
order the workload relies on.

Run:  python examples/index_advisor.py
"""
from repro.core.dependency import equiv, fd, od
from repro.core.inference import ODTheory, irreducible_cover
from repro.design import recommend_key, subsumed_indexes
from repro.workloads.datedim import date_dim_ods


def main() -> None:
    # the date dimension's declared knowledge
    theory = ODTheory(date_dim_ods())

    # ------------------------------------------------------------------
    # 1. Audit an index zoo.
    # ------------------------------------------------------------------
    indexes = {
        "idx_sk": ["d_date_sk"],
        "idx_date": ["d_date"],
        "idx_ymd": ["d_year", "d_moy", "d_dom"],
        "idx_yqmd": ["d_year", "d_qoy", "d_moy", "d_dom"],
        "idx_week": ["d_year", "d_week_seq", "d_dow"],
    }
    print("index audit (given the declared date-hierarchy ODs):")
    for advice in subsumed_indexes(theory, indexes):
        print("  ", advice.describe())

    # ------------------------------------------------------------------
    # 2. Recommend a single key for a sort workload.
    # ------------------------------------------------------------------
    workload = [
        ["d_year"],
        ["d_year", "d_qoy"],
        ["d_year", "d_qoy", "d_moy"],
        ["d_year", "d_moy", "d_dom"],
    ]
    key = recommend_key(theory, workload)
    print(f"\none key covering {len(workload)} requested sort orders: {list(key)}")

    # ------------------------------------------------------------------
    # 3. Constraint-set hygiene: drop redundant declarations.
    # ------------------------------------------------------------------
    declared = [
        od("d_moy", "d_qoy"),
        od("d_date", "d_year,d_moy,d_dom"),
        od("d_date", "d_year,d_qoy,d_moy,d_dom"),   # implied by the two above
        equiv("d_date_sk", "d_date"),
        fd("d_moy", "d_qoy"),                        # implied by the OD (Lemma 1)
    ]
    cover = irreducible_cover(declared)
    print(f"\ndeclared {len(declared)} constraints; irreducible cover keeps {len(cover)}:")
    for statement in cover:
        print("  ", statement)


if __name__ == "__main__":
    main()

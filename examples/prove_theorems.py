"""Machine-checked proofs: replaying the paper's derivations.

Shows the proof kernel at work: the library's derivations of the paper's
theorems (Union, Shift, Replace, Eliminate, Left Eliminate, ...), each
replayed line by line through the six axioms, plus the proof *search* that
derives new facts on demand with certificates.

Run:  python examples/prove_theorems.py
"""
from repro.core.dependency import equiv, od
from repro.core.inference import ODTheory
from repro.core.proofs import check_proof
from repro.core.proofs_library import DERIVATION_ORDER, build_proof
from repro.core.prover import decide


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Replay a library proof: Left Eliminate, the Example 1 rule.
    # ------------------------------------------------------------------
    proof = build_proof("LeftEliminate", x="month", y="quarter", z="year", w="")
    check_proof(proof)
    print(proof)
    print("kernel-checked ✓  (justifies dropping quarter from the order-by)\n")

    # ------------------------------------------------------------------
    # 2. The whole stratified library.
    # ------------------------------------------------------------------
    fixed = dict(x="A,B", y="C", z="D", w="E", v="F", u="D", t="E")
    from repro.core.proofs_library import PROOF_BUILDERS

    print("library derivations (stratified, all kernel-checked):")
    for name in DERIVATION_ORDER:
        builder, params = PROOF_BUILDERS[name]
        p = builder(*(fixed[key] for key in params))
        check_proof(p)
        cited = sorted(
            {line.rule for line in p.lines}
            - {"Given", "Reflexivity", "Prefix", "Normalization",
               "Transitivity", "Suffix", "Chain", "EquivIntro", "EquivLeft",
               "EquivRight", "EquivTrans", "CompatIntro", "CompatElim"}
        )
        via = f"  (cites {', '.join(cited)})" if cited else "  (axioms only)"
        print(f"  {name:15s} {len(p):3d} lines{via}")

    # ------------------------------------------------------------------
    # 3. Proof search: derive something new, with a certificate.
    # ------------------------------------------------------------------
    premises = [od("a", "b"), od("b", "c")]
    goal = equiv("a", "c,b,a")
    verdict = decide(premises, goal)
    print(f"\nsearching: {premises} |- {goal} ?")
    if verdict.implied and verdict.proof is not None:
        print(verdict.proof)
        check_proof(verdict.proof)
        print("found and kernel-checked ✓")

    # ------------------------------------------------------------------
    # 4. Refutations carry two-row witnesses.
    # ------------------------------------------------------------------
    bad = od("c", "a")
    verdict = decide(premises, bad)
    print(f"\nsearching: {premises} |- {bad} ?")
    print("implied:", verdict.implied)
    print("counterexample (satisfies the premises, falsifies the goal):")
    print(verdict.counterexample)

    # ------------------------------------------------------------------
    # 5. The oracle behind it all is exact, so "not provable" is a theorem
    #    about ALL instances, not a search failure.
    # ------------------------------------------------------------------
    theory = ODTheory(premises)
    print("\nexactness: oracle says implied =", theory.implies(bad))


if __name__ == "__main__":
    main()

"""Quickstart: order dependencies in five minutes.

Covers the core API surface: stating dependencies, checking them against
data, asking the implication oracle, and getting counterexample witnesses.

Run:  python examples/quickstart.py
"""
from repro import (
    ODTheory,
    Relation,
    compat,
    counterexample,
    equiv,
    explain_violation,
    fd,
    implies,
    od,
    satisfies,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. State dependencies.  X |-> Y reads "ordering by X also orders Y".
    # ------------------------------------------------------------------
    month_orders_quarter = od("month", "quarter")           # [month] |-> [quarter]
    print("an OD:        ", month_orders_quarter)
    print("an equivalence:", equiv("year,month", "year,month,quarter"))
    print("a compatibility:", compat("year", "month"))
    print("an FD:         ", fd("month", "quarter"))

    # ------------------------------------------------------------------
    # 2. Check dependencies against concrete data (the paper's Figure 1).
    # ------------------------------------------------------------------
    figure1 = Relation(
        "A,B,C,D,E,F",
        [(3, 2, 0, 4, 7, 9), (3, 2, 1, 3, 8, 9)],
    )
    print("\nFigure 1 instance:")
    print(figure1)
    print("[A,B,C] |-> [F,E,D] holds:   ", satisfies(figure1, od("A,B,C", "F,E,D")))
    print("[A,B,C] |-> [F,D,E] falsified:", not satisfies(figure1, od("A,B,C", "F,D,E")))
    print("why:", explain_violation(figure1, od("A,B,C", "F,D,E")))

    # ------------------------------------------------------------------
    # 3. Ask the implication oracle (the paper's future-work theorem
    #    prover): does a set of declared ODs imply another?
    # ------------------------------------------------------------------
    theory = ODTheory([month_orders_quarter])
    question = equiv("year,quarter,month", "year,month")
    print(f"\nGiven {month_orders_quarter}:")
    print(f"  {question} ?  ->", theory.implies(question))
    # This is the paper's Example 1: the quarter column can be dropped from
    # an ORDER BY — something the FD month -> quarter alone cannot justify:
    fd_only = ODTheory([fd("month", "quarter")])
    print("  same question from the FD alone ->", fd_only.implies(question))

    # ------------------------------------------------------------------
    # 4. Non-implications come with two-row counterexample witnesses.
    # ------------------------------------------------------------------
    witness = counterexample([od("A", "B")], od("B", "A"))
    print("\n[A] |-> [B] does not imply [B] |-> [A]; witness:")
    print(witness)

    # ------------------------------------------------------------------
    # 5. ODs subsume FDs (Theorem 13/16): FD questions work too.
    # ------------------------------------------------------------------
    print("\nFD reasoning through the OD oracle:")
    print("  A->B, B->C  |=  A->C ?", implies([fd("A", "B"), fd("B", "C")], fd("A", "C")))
    print("  [A] |-> [B]  |=  A->B ?", implies([od("A", "B")], fd("A", "B")))
    print("  A->B  |=  [A] |-> [B] ?", implies([fd("A", "B")], od("A", "B")))


if __name__ == "__main__":
    main()

"""Example 5: the Taxes table — ODs from real-world monotonicity.

Progressive taxation means brackets and payable amounts rise with income.
Declared as OD check constraints, these let an ``ORDER BY bracket,
payable`` ride the clustered income index with no sort — and the engine
*enforces* the constraints, rejecting data that would break the
optimization.

Run:  python examples/tax_audit.py
"""
from repro.core.dependency import od
from repro.engine.database import Database
from repro.engine.logical import bind
from repro.engine.sql.parser import parse
from repro.engine.table import ConstraintViolation
from repro.optimizer.planner import Planner
from repro.workloads.taxes import build_taxes


def main() -> None:
    db = Database()
    taxes = build_taxes(db, rows=20_000)
    print(f"loaded {len(taxes)} taxpayers; declared constraints:")
    for statement in taxes.constraints:
        print("  ", statement)

    # ------------------------------------------------------------------
    # The Example 5 query: order by bracket, then payable.
    # ------------------------------------------------------------------
    sql = "SELECT taxpayer_id, income, bracket, payable FROM taxes ORDER BY bracket, payable"
    print("\nquery:", sql)
    for mode in ("fd", "od"):
        plan = Planner(db, mode=mode).plan(bind(parse(sql)))
        rows, metrics = plan.run()
        label = "FD-only" if mode == "fd" else "OD-aware"
        print(f"\n[{label}] plan:")
        print(plan.explain())
        print(f"sorts={metrics.get('sorts')}  work={metrics.work:,.0f}")

    # ------------------------------------------------------------------
    # Audit: the constraints are live.  A row violating monotonicity (a
    # higher income in a lower bracket) is rejected with a witness.
    # ------------------------------------------------------------------
    print("\nattempting to load an inconsistent row (income 999999, bracket 1)...")
    try:
        taxes.load([(99_999, 999_999, 1, 0.10, 10.0)])
    except ConstraintViolation as violation:
        print("rejected:", violation)

    # clean up the offending row so the table stays consistent
    taxes.rows.pop()
    taxes.check_constraints()
    print("table consistent again ✓")

    # ------------------------------------------------------------------
    # Where did the ODs come from?  They are *discoverable* from the data.
    # ------------------------------------------------------------------
    from repro.discovery import discover_ods

    sample = taxes.as_relation().subrelation(taxes.rows[:500])
    result = discover_ods(sample, max_lhs=1, max_fd_lhs=1)
    print(f"\ndiscovery over a 500-row sample: {result.summary()}")
    for wanted in (od("income", "bracket"), od("income", "payable")):
        print(f"  recovered {wanted}:", wanted in result.ods)


if __name__ == "__main__":
    main()

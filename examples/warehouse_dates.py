"""The data-warehouse scenario: Example 1 and the Section 2.3 date rewrite.

Builds the TPC-DS-lite star schema (fact table keyed by date *surrogate*
keys, a date dimension carrying the natural calendar), declares the OD
check constraints, and shows both headline optimizations:

1. Example 1 — the ``GROUP BY / ORDER BY year, quarter, month`` query whose
   sort disappears once the optimizer may use ``month ↦ quarter``;
2. the date-dimension join elimination — a natural-date range predicate
   translated into a surrogate-key range via two probes, removing the join
   entirely.

Run:  python examples/warehouse_dates.py
"""
import time

from repro.engine.logical import bind
from repro.engine.sql.parser import parse
from repro.optimizer.planner import Planner
from repro.workloads.tpcds_lite import build_tpcds_lite

EXAMPLE1 = """
SELECT d_year, d_qoy, d_moy, SUM(ss_sales_price) AS revenue
FROM store_sales ss JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
GROUP BY d_year, d_qoy, d_moy
ORDER BY d_year, d_qoy, d_moy
"""


def show(title, plan, rows, metrics):
    print(f"--- {title}")
    print(plan.explain())
    print(f"rows={len(rows)}  sorts={metrics.get('sorts')}  work={metrics.work:,.0f}\n")


def main() -> None:
    print("building TPC-DS-lite (this takes a few seconds)...")
    workload = build_tpcds_lite(days=365 * 2, sales_rows=60_000)
    db = workload.database

    # ------------------------------------------------------------------
    # Example 1: the introduction's query.
    # ------------------------------------------------------------------
    print("\n================ Example 1 ================")
    for mode in ("fd", "od"):
        plan = Planner(db, mode=mode).plan(bind(parse(EXAMPLE1)))
        rows, metrics = plan.run()
        label = "[17] FD-only optimizer" if mode == "fd" else "OD-aware optimizer"
        show(label, plan, rows, metrics)

    # ------------------------------------------------------------------
    # The Section 2.3 rewrite: dates arrive as natural values, the fact
    # table only knows surrogate keys.
    # ------------------------------------------------------------------
    print("================ date-range query ================")
    lo, hi = workload.date_range(200, 31)
    sql = f"""
    SELECT ss_store_sk, SUM(ss_quantity) AS qty
    FROM store_sales ss JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
    WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
    GROUP BY ss_store_sk ORDER BY ss_store_sk
    """
    print(f"predicate: d_date BETWEEN {lo} AND {hi}\n")

    t0 = time.perf_counter()
    baseline = db.execute(sql, optimize=False)
    t1 = time.perf_counter()
    optimized = db.execute(sql, optimize=True)
    t2 = time.perf_counter()

    show("baseline (join evaluated)", baseline.plan, baseline.rows, baseline.metrics)
    show("OD rewrite (join eliminated)", optimized.plan, optimized.rows, optimized.metrics)
    for record in optimized.plan.plan_info.date_rewrites:
        print("rewrite:", record.describe())
    assert baseline.rows == optimized.rows
    print(
        f"\nanswers identical; wall {t1 - t0:.3f}s -> {t2 - t1:.3f}s "
        f"({1 - (t2 - t1) / (t1 - t0):.0%} faster), "
        f"work {baseline.metrics.work:,.0f} -> {optimized.metrics.work:,.0f}"
    )

    # ------------------------------------------------------------------
    # Why it is safe: the constraint the dimension declares.
    # ------------------------------------------------------------------
    print("\ndeclared on date_dim (checked against the data on load):")
    for statement in db.constraints_on("date_dim")[:4]:
        print("  ", statement)


if __name__ == "__main__":
    main()

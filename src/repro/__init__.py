"""repro — Order Dependencies: theory, inference, and query optimization.

A from-scratch reproduction of *Fundamentals of Order Dependencies*
(Szlichta, Godfrey, Gryz; PVLDB 5(11), 2012): the lexicographic order
dependency (OD) formalism, the sound-and-complete axiomatization OD1–OD6,
machine-checked derived theorems, an exact implication oracle, the
completeness (Armstrong-relation) construction, OD discovery, and an
OD-aware relational engine + optimizer reproducing the paper's
query-rewrite experiments.

Quickstart::

    from repro import od, ODTheory

    theory = ODTheory([od("month", "quarter")])
    theory.implies(od("year,month", "year,quarter,month"))   # True

See ``examples/`` for end-to-end scenarios and ``DESIGN.md`` for the system
inventory.
"""
from .core import (
    EMPTY,
    AttrList,
    FunctionalDependency,
    ODTheory,
    OrderCompatibility,
    OrderDependency,
    OrderEquivalence,
    Relation,
    Witness,
    attrlist,
    compat,
    counterexample,
    equiv,
    explain_violation,
    fd,
    find_split,
    find_swap,
    find_witness,
    implies,
    is_trivial,
    od,
    parse_statement,
    satisfies,
    satisfies_naive,
    to_ods,
)

__version__ = "1.0.0"

__all__ = [
    "AttrList",
    "attrlist",
    "EMPTY",
    "OrderDependency",
    "OrderEquivalence",
    "OrderCompatibility",
    "FunctionalDependency",
    "od",
    "equiv",
    "compat",
    "fd",
    "parse_statement",
    "to_ods",
    "Relation",
    "satisfies",
    "satisfies_naive",
    "find_split",
    "find_swap",
    "find_witness",
    "explain_violation",
    "Witness",
    "ODTheory",
    "implies",
    "counterexample",
    "is_trivial",
    "__version__",
]

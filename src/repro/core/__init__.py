"""Core order-dependency theory: lists, statements, satisfaction, inference.

This package implements the paper's formal machinery:

* :mod:`repro.core.attrs` — attribute lists (Section 2.1 notation),
* :mod:`repro.core.dependency` — OD / ↔ / ~ / FD statement types,
* :mod:`repro.core.relation` — instances and the ``≼`` operators (Defs 1–3),
* :mod:`repro.core.satisfaction` — Definition 4 plus split/swap witnesses,
* :mod:`repro.core.signs` — two-row sign-vector semantics,
* :mod:`repro.core.inference` — the exact implication oracle,
* :mod:`repro.core.axioms` — the six inference rules OD1–OD6,
* :mod:`repro.core.proofs` — machine-checkable proof objects,
* :mod:`repro.core.theorems` — the derived rules (Theorems 2–15),
* :mod:`repro.core.prover` — axiomatic proof search,
* :mod:`repro.core.armstrong` — the completeness construction (Section 4).
"""
from .attrs import EMPTY, AttrList, attrlist
from .dependency import (
    FunctionalDependency,
    OrderCompatibility,
    OrderDependency,
    OrderEquivalence,
    compat,
    equiv,
    fd,
    od,
    parse_statement,
    to_ods,
)
from .inference import ODTheory, counterexample, implies, is_trivial
from .relation import Relation
from .satisfaction import (
    Witness,
    explain_violation,
    find_split,
    find_swap,
    find_witness,
    satisfies,
    satisfies_naive,
)

__all__ = [
    "AttrList",
    "attrlist",
    "EMPTY",
    "OrderDependency",
    "OrderEquivalence",
    "OrderCompatibility",
    "FunctionalDependency",
    "od",
    "equiv",
    "compat",
    "fd",
    "parse_statement",
    "to_ods",
    "Relation",
    "satisfies",
    "satisfies_naive",
    "find_split",
    "find_swap",
    "find_witness",
    "explain_violation",
    "Witness",
    "ODTheory",
    "implies",
    "counterexample",
    "is_trivial",
]

"""The completeness construction: Armstrong-style relations for OD sets.

Section 4 of the paper proves the axiomatization complete by *constructing*,
for any OD set ``M``, a table that satisfies ``M`` and falsifies every OD not
in ``M⁺``.  The table is ``split(M) append swap(M)``:

* ``split(M)`` (Figure 7, Lemma 10) — Ullman's two-row blocks, one per
  attribute subset ``W``: the rows agree exactly on the FD-closure of ``W``
  and ascend elsewhere.  Splits falsify every non-implied FD facet and the
  ascending pattern can never introduce a swap.
* ``swap(M)`` (Figures 8–9, Lemmas 12–13) — for every attribute pair that
  must disagree on order in some *context*, a sub-table realizing that swap:
  recursively constructed with the context frozen to constants (Hypothesis
  1's induction), or, in the *empty context*, the direct two-row pattern of
  Figure 9 whose consistency is exactly what the Chain axiom (OD6)
  guarantees.
* ``append`` (Definition 17, Figures 4–6) — stacks sub-tables after shifting
  values so every cell of the second table exceeds every cell of the first;
  Lemma 9 shows this introduces no new splits or swaps.  (Constant
  attributes keep their single value across blocks — the paper handles
  constants by projecting them out via Lemma 8; pinning them is the
  equivalent inline form.)

Two constructions are provided and cross-validated in the test suite:

* :func:`paper_armstrong` — the construction above, faithful to Section 4;
* :func:`canonical_armstrong` — a direct product construction: one two-row
  block per *sign-vector model* of ``M`` (guaranteed complete by the
  two-row small-model property, see :mod:`repro.core.signs`).
"""
from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .attrs import EMPTY, AttrList, attrlist
from .dependency import OrderCompatibility, OrderDependency, Statement
from .inference import ODTheory
from .relation import Relation

__all__ = [
    "append_tables",
    "split_table",
    "swap_table",
    "paper_armstrong",
    "canonical_armstrong",
]


# ----------------------------------------------------------------------
# Definition 17 — append
# ----------------------------------------------------------------------
def append_tables(
    first: Relation,
    second: Relation,
    constant_attrs: FrozenSet[str] = frozenset(),
) -> Relation:
    """Append two sub-tables per Definition 17.

    Normalizes the first table to minimum value 0, then shifts the second
    above the first's maximum, so cross-table tuple pairs ascend on every
    non-constant attribute (Lemma 9: no new splits or swaps, barring the
    trivial ``[] ↦ Y``).  Columns in ``constant_attrs`` are pinned instead
    of shifted.
    """
    if tuple(first.attributes) != tuple(second.attributes):
        raise ValueError("append requires identical schemas")
    variable_positions = [
        i for i, name in enumerate(first.attributes) if name not in constant_attrs
    ]
    if not first.rows:
        return second.subrelation(second.rows)
    if not second.rows:
        return first.subrelation(first.rows)

    def shifted(rows: Sequence[tuple], delta: int) -> List[tuple]:
        out = []
        for row in rows:
            new_row = list(row)
            for i in variable_positions:
                new_row[i] = row[i] + delta
            out.append(tuple(new_row))
        return out

    def extremum(rows: Sequence[tuple], func) -> int:
        values = [row[i] for row in rows for i in variable_positions]
        return func(values) if values else 0

    first_rows = shifted(first.rows, -extremum(first.rows, min))
    second_rows = shifted(second.rows, -extremum(second.rows, min))
    delta = extremum(first_rows, max) + 1
    second_rows = shifted(second_rows, delta)
    return Relation(first.attributes, first_rows + second_rows, name="append")


def _append_all(
    tables: Iterable[Relation],
    attributes: AttrList,
    constant_attrs: FrozenSet[str],
) -> Relation:
    result = Relation(attributes, [], name="armstrong")
    for table in tables:
        result = append_tables(result, table, constant_attrs)
    return result


# ----------------------------------------------------------------------
# Figure 7 — split(M)
# ----------------------------------------------------------------------
def split_table(
    theory: ODTheory, attributes: "AttrList | Sequence[str] | None" = None
) -> Relation:
    """Ullman's construction lifted to ODs: two rows per attribute subset.

    For each ``W`` the block agrees exactly on ``fd_closure(W)`` and ascends
    0 → 1 elsewhere, falsifying every FD ``W → A`` with ``A ∉ W⁺`` (hence
    every OD ``X ↦ XY`` not in ``M⁺`` with ``set(X) = W``) while ascending
    columns can never produce a swap.
    """
    attributes = attrlist(attributes) if attributes is not None else AttrList(
        sorted(theory.attributes)
    )
    constants = theory.constants() & set(attributes)
    blocks: List[Relation] = []
    names = list(attributes)
    for size in range(len(names) + 1):
        for subset in itertools.combinations(names, size):
            closure = theory.fd_closure(subset) | constants
            top = tuple(0 if a in closure else 1 for a in names)
            bottom = tuple(0 for _ in names)
            if top == bottom:
                continue
            blocks.append(Relation(attributes, [bottom, top], name="split-block"))
    return _append_all(blocks, attributes, frozenset(constants))


# ----------------------------------------------------------------------
# Figures 8-9 — swap(M)
# ----------------------------------------------------------------------
def _is_context(
    theory: ODTheory, context: FrozenSet[str], a: str, b: str
) -> bool:
    """Is a swap between ``a`` and ``b`` required within ``context``?

    True iff some model of ``M`` freezes the context attributes and still
    swaps ``a`` against ``b`` — i.e. freezing the context does *not* make
    ``[a] ~ [b]`` derivable.
    """
    frozen = [OrderDependency(EMPTY, AttrList([name])) for name in sorted(context)]
    extended = theory.extended(frozen)
    return not extended.order_compatible(AttrList([a]), AttrList([b]))


def _maximal_contexts(
    theory: ODTheory, non_constants: Sequence[str], a: str, b: str
) -> List[FrozenSet[str]]:
    """All maximal context sets for the pair, largest first."""
    candidates = [name for name in non_constants if name not in (a, b)]
    contexts: List[FrozenSet[str]] = []
    for size in range(len(candidates), -1, -1):
        for combo in itertools.combinations(candidates, size):
            context = frozenset(combo)
            if any(context < bigger for bigger in contexts):
                continue  # only maximal contexts matter
            if any(context <= bigger for bigger in contexts):
                continue
            if _is_context(theory, context, a, b):
                contexts.append(context)
    return contexts


def _empty_context_swap(
    theory: ODTheory, attributes: AttrList, a: str, b: str
) -> Optional[Relation]:
    """The direct two-row swap of Figure 9 (Lemma 12).

    Partitions the non-constant attributes into ``a``'s group (those
    connected to ``a`` through pairwise order-compatibility), ``b``'s group,
    and the rest; ``a``'s side ascends while ``b``'s side descends.  The
    Chain axiom is what guarantees the two groups are disjoint.
    """
    constants = theory.constants() & set(attributes)
    non_constants = [name for name in attributes if name not in constants]
    adjacency: Dict[str, set] = {name: set() for name in non_constants}
    for x, y in itertools.combinations(non_constants, 2):
        if theory.order_compatible(AttrList([x]), AttrList([y])):
            adjacency[x].add(y)
            adjacency[y].add(x)

    def component(start: str) -> set:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        return seen

    group_a = component(a)
    if b in group_a:
        # A compatibility chain connects a to b; the Chain axiom then forces
        # [a] ~ [b], so no empty-context swap is constructible (or needed).
        return None
    group_b = component(b)
    row1, row2 = [], []
    for name in attributes:
        if name in constants:
            row1.append(0)
            row2.append(0)
        elif name in group_b:
            row1.append(1)
            row2.append(0)
        else:  # a's group and the remaining attributes ascend together
            row1.append(0)
            row2.append(1)
    return Relation(attributes, [tuple(row1), tuple(row2)], name=f"swap-{a}-{b}")


def swap_table(
    theory: ODTheory,
    attributes: "AttrList | Sequence[str] | None" = None,
    _depth: int = 0,
) -> Relation:
    """``swap(M)``: falsify every non-implied order-compatibility.

    For every attribute pair and every *maximal* context in which the pair
    must swap: if the context is non-empty, recursively build a complete
    table for ``M`` extended with the context frozen to constants
    (Hypothesis 1); if empty, emit the Figure 9 two-row block directly.
    """
    attributes = attrlist(attributes) if attributes is not None else AttrList(
        sorted(theory.attributes)
    )
    constants = theory.constants() & set(attributes)
    non_constants = [name for name in attributes if name not in constants]
    blocks: List[Relation] = []
    if _depth > len(attributes):  # safety net; recursion shrinks non-constants
        raise RuntimeError("swap construction failed to terminate")
    for a, b in itertools.combinations(non_constants, 2):
        for context in _maximal_contexts(theory, non_constants, a, b):
            if context:
                frozen = [
                    OrderDependency(EMPTY, AttrList([name]))
                    for name in sorted(context)
                ]
                sub_theory = theory.extended(frozen)
                blocks.append(
                    paper_armstrong(sub_theory, attributes, _depth=_depth + 1)
                )
            else:
                block = _empty_context_swap(theory, attributes, a, b)
                if block is not None:
                    blocks.append(block)
    return _append_all(blocks, attributes, frozenset(constants))


def paper_armstrong(
    theory: ODTheory,
    attributes: "AttrList | Sequence[str] | None" = None,
    _depth: int = 0,
) -> Relation:
    """``split(M) append swap(M)`` — the Section 4 completeness table."""
    attributes = attrlist(attributes) if attributes is not None else AttrList(
        sorted(theory.attributes)
    )
    constants = frozenset(theory.constants() & set(attributes))
    split_part = split_table(theory, attributes)
    swap_part = swap_table(theory, attributes, _depth=_depth)
    return append_tables(split_part, swap_part, constants)


# ----------------------------------------------------------------------
# Canonical (model-enumeration) construction
# ----------------------------------------------------------------------
def canonical_armstrong(
    theory: ODTheory, attributes: "AttrList | Sequence[str] | None" = None
) -> Relation:
    """One two-row block per sign-vector model of ``M``.

    Complete by construction: any OD over these attributes not implied by
    ``M`` has a two-row model of ``M`` refuting it, and that exact sign
    pattern appears as a block.  Satisfies ``M`` because each block is a
    model and cross-block pairs ascend on all non-constants (constants,
    which every model zeroes, are pinned).
    """
    attributes = attrlist(attributes) if attributes is not None else AttrList(
        sorted(theory.attributes)
    )
    constants = theory.constants() & set(attributes)
    rows: List[tuple] = []
    seen: set = set()
    base = 0
    for sigma in theory.models(tuple(attributes)):
        signs = tuple(sigma[a] for a in attributes)
        if all(s == 0 for s in signs):
            continue
        if signs in seen or tuple(-s for s in signs) in seen:
            continue  # σ and -σ describe the same unordered two-row set
        seen.add(signs)
        row1, row2 = [], []
        for name, sign in zip(attributes, signs):
            if name in constants:
                row1.append(0)
                row2.append(0)
            else:
                row1.append(base + 1)
                row2.append(base + 1 + sign)
        rows.append(tuple(row1))
        rows.append(tuple(row2))
        base += 3
    if not rows:  # no informative models: a single row still satisfies M
        rows = [tuple(0 for _ in attributes)]
    return Relation(attributes, rows, name="canonical-armstrong")

"""Attribute lists: the ordered counterpart of attribute sets.

Order dependencies (ODs) are stated over *lists* of attributes, not sets,
because ``ORDER BY [A, B]`` and ``ORDER BY [B, A]`` mean different things.
This module provides :class:`AttrList`, an immutable sequence of attribute
names with the list manipulations the paper's axioms need: concatenation,
prefix/suffix tests, normalization (removal of repeated attributes), and
contiguous-sublist enumeration.

Attribute names are plain strings; an :class:`AttrList` is a thin immutable
wrapper over a ``tuple`` of them, so instances hash and compare cheaply and
can key dictionaries and sets.
"""
from __future__ import annotations

import itertools
import re
from typing import Iterable, Iterator

__all__ = ["AttrList", "attrlist", "EMPTY"]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


class AttrList(tuple):
    """An immutable list of attribute names.

    Supports the paper's notational conventions:

    * concatenation ``X + Y`` (written ``XY`` in the paper),
    * ``X.attrs`` for ``set(X)``,
    * ``X.normalized()`` removing repeated attributes (justified by the
      Normalization axiom, OD3),
    * prefix/suffix structure used by the Prefix and Suffix axioms.
    """

    __slots__ = ()

    def __new__(cls, items: Iterable[str] = ()) -> "AttrList":
        items = tuple(items)
        for item in items:
            if not isinstance(item, str) or not item:
                raise TypeError(f"attribute names must be non-empty strings, got {item!r}")
        return super().__new__(cls, items)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "AttrList":
        """Parse ``"A, B, C"`` or ``"[A, B, C]"`` into an :class:`AttrList`."""
        text = text.strip()
        if text.startswith("[") and text.endswith("]"):
            text = text[1:-1]
        if not text.strip():
            return EMPTY
        names = [part.strip() for part in text.split(",")]
        for name in names:
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid attribute name: {name!r}")
        return cls(names)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __add__(self, other: Iterable[str]) -> "AttrList":
        return AttrList(tuple(self) + tuple(other))

    def __radd__(self, other: Iterable[str]) -> "AttrList":
        return AttrList(tuple(other) + tuple(self))

    def __getitem__(self, index):
        result = super().__getitem__(index)
        if isinstance(index, slice):
            return AttrList(result)
        return result

    @property
    def attrs(self) -> frozenset:
        """The underlying attribute *set* (``set(X)`` in the paper)."""
        return frozenset(self)

    def head(self) -> str:
        """The first attribute (``[A | T]`` notation: the ``A``)."""
        if not self:
            raise IndexError("head of the empty attribute list")
        return self[0]

    def tail(self) -> "AttrList":
        """Everything but the first attribute (the ``T`` in ``[A | T]``)."""
        if not self:
            raise IndexError("tail of the empty attribute list")
        return self[1:]

    def normalized(self) -> "AttrList":
        """Drop every attribute occurrence that repeats an earlier one.

        ``[A, B, A, C, B]`` normalizes to ``[A, B, C]``.  Sound by iterated
        application of the Normalization axiom (OD3): a later occurrence of an
        attribute never influences the lexicographic order because ties on the
        earlier occurrence force equality on the later one.
        """
        seen: set = set()
        out = []
        for name in self:
            if name not in seen:
                seen.add(name)
                out.append(name)
        return AttrList(out)

    def is_normalized(self) -> bool:
        """True iff no attribute occurs twice."""
        return len(set(self)) == len(self)

    def is_prefix_of(self, other: "AttrList") -> bool:
        """True iff ``self`` is a (not necessarily proper) prefix of ``other``."""
        return len(self) <= len(other) and tuple(other[: len(self)]) == tuple(self)

    def is_suffix_of(self, other: "AttrList") -> bool:
        """True iff ``self`` is a (not necessarily proper) suffix of ``other``."""
        return len(self) <= len(other) and (
            len(self) == 0 or tuple(other[-len(self):]) == tuple(self)
        )

    def without(self, names: Iterable[str]) -> "AttrList":
        """Remove every occurrence of the given attributes, keeping order."""
        drop = set(names)
        return AttrList(name for name in self if name not in drop)

    def common_prefix(self, other: "AttrList") -> "AttrList":
        """The longest list that prefixes both ``self`` and ``other``."""
        out = []
        for a, b in zip(self, other):
            if a != b:
                break
            out.append(a)
        return AttrList(out)

    def contiguous_sublists(self, max_len: int | None = None) -> Iterator["AttrList"]:
        """Yield every non-empty contiguous sublist, shortest first."""
        n = len(self)
        limit = n if max_len is None else min(n, max_len)
        for length in range(1, limit + 1):
            for start in range(0, n - length + 1):
                yield self[start:start + length]

    def prefixes(self, include_empty: bool = True) -> Iterator["AttrList"]:
        """Yield prefixes of ``self``, shortest first."""
        start = 0 if include_empty else 1
        for i in range(start, len(self) + 1):
            yield self[:i]

    def suffixes(self, include_empty: bool = True) -> Iterator["AttrList"]:
        """Yield suffixes of ``self``, longest first."""
        end = len(self) + 1 if include_empty else len(self)
        for i in range(0, end):
            yield self[i:]

    def permutations(self) -> Iterator["AttrList"]:
        """Yield every permutation of ``self`` (``X'`` in the paper)."""
        for perm in itertools.permutations(self):
            yield AttrList(perm)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{', '.join(self)}]"


def attrlist(spec: "str | Iterable[str] | AttrList") -> AttrList:
    """Coerce a string spec or iterable of names into an :class:`AttrList`.

    ``attrlist("A,B,C")``, ``attrlist(["A", "B", "C"])`` and
    ``attrlist(existing)`` all work; single names without commas parse as a
    one-element list.
    """
    if isinstance(spec, AttrList):
        return spec
    if isinstance(spec, str):
        return AttrList.parse(spec)
    return AttrList(spec)


#: The empty attribute list (``[]`` in the paper).
EMPTY = AttrList()

"""The six OD inference rules (Definition 7: axioms OD1–OD6).

Each axiom is realized two ways:

* as a **constructor** — a function that, given premise statements and the
  list parameters of the schema, *builds* the conclusion (raising
  :class:`InvalidRuleApplication` if the premises do not fit the schema);
* as an entry in the :data:`AXIOMS` registry used by the proof checker
  (:mod:`repro.core.proofs`) to replay derivations step by step.

The axioms (``X``, ``Y``, ... range over attribute lists):

=====================  ==========================================================
OD1  Reflexivity       ``⊢ XY ↦ X``
OD2  Prefix            ``X ↦ Y ⊢ ZX ↦ ZY``
OD3  Normalization     ``⊢ WXYXV ↔ WXYV``   (a repeated list occurrence drops)
OD4  Transitivity      ``X ↦ Y, Y ↦ Z ⊢ X ↦ Z``
OD5  Suffix            ``X ↦ Y ⊢ X ↔ YX``
OD6  Chain             ``X ~ Y₁, Yᵢ ~ Yᵢ₊₁, Yₙ ~ Z, ∀i YᵢX ~ YᵢZ ⊢ X ~ Z``
=====================  ==========================================================

A handful of **structural rules** (zero logical content: they move between an
equivalence / compatibility and its defining component ODs) are registered
alongside so proofs can be written at the granularity the paper uses.

Every rule here is exercised against the semantic oracle in the test suite
(soundness, Theorem 1): for random instantiations, any sign vector or
relation satisfying the premises satisfies the conclusion.
"""
from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from .attrs import AttrList, attrlist
from .dependency import (
    OrderCompatibility,
    OrderDependency,
    OrderEquivalence,
    Statement,
    to_ods,
)

__all__ = [
    "InvalidRuleApplication",
    "canon",
    "reflexivity",
    "prefix",
    "normalization",
    "transitivity",
    "suffix",
    "chain",
    "equiv_intro",
    "equiv_left",
    "equiv_right",
    "equiv_trans",
    "compat_intro",
    "compat_elim",
    "AXIOMS",
    "STRUCTURAL",
]


class InvalidRuleApplication(ValueError):
    """The premises/parameters do not match the rule schema."""


def canon(statement: Statement) -> frozenset:
    """Canonical form of a statement: the set of its component ODs.

    Two statements are *the same claim* iff their component OD sets are
    equal; e.g. ``X ↔ Y`` equals ``Y ↔ X``, and ``X ~ Y`` equals the
    equivalence ``XY ↔ YX`` it abbreviates.
    """
    return frozenset(
        (tuple(dep.lhs), tuple(dep.rhs)) for dep in to_ods(statement)
    )


def _as_od(statement: Statement, rule: str) -> OrderDependency:
    if isinstance(statement, OrderDependency):
        return statement
    raise InvalidRuleApplication(f"{rule} expects an OD premise, got {statement}")


def _as_equiv(statement: Statement, rule: str) -> OrderEquivalence:
    if isinstance(statement, OrderEquivalence):
        return statement
    raise InvalidRuleApplication(f"{rule} expects an equivalence premise, got {statement}")


def _as_compat(statement: Statement, rule: str) -> OrderCompatibility:
    if isinstance(statement, OrderCompatibility):
        return statement
    raise InvalidRuleApplication(f"{rule} expects a compatibility premise, got {statement}")


# ----------------------------------------------------------------------
# OD1 — Reflexivity
# ----------------------------------------------------------------------
def reflexivity(x, y) -> OrderDependency:
    """OD1: ``XY ↦ X`` — a list orders every prefix of itself."""
    x, y = attrlist(x), attrlist(y)
    return OrderDependency(x + y, x)


# ----------------------------------------------------------------------
# OD2 — Prefix
# ----------------------------------------------------------------------
def prefix(premise: Statement, z) -> OrderDependency:
    """OD2: from ``X ↦ Y`` infer ``ZX ↦ ZY`` for any list ``Z``."""
    dependency = _as_od(premise, "Prefix")
    z = attrlist(z)
    return OrderDependency(z + dependency.lhs, z + dependency.rhs)


# ----------------------------------------------------------------------
# OD3 — Normalization
# ----------------------------------------------------------------------
def normalization(w, x, y, v) -> OrderEquivalence:
    """OD3: ``WXYXV ↔ WXYV`` — the second occurrence of ``X`` is redundant.

    Once tuples compare equal on the first ``X`` occurrence, the second
    occurrence can never break a tie.
    """
    w, x, y, v = attrlist(w), attrlist(x), attrlist(y), attrlist(v)
    return OrderEquivalence(w + x + y + x + v, w + x + y + v)


# ----------------------------------------------------------------------
# OD4 — Transitivity
# ----------------------------------------------------------------------
def transitivity(first: Statement, second: Statement) -> OrderDependency:
    """OD4: ``X ↦ Y, Y ↦ Z ⊢ X ↦ Z``."""
    od1 = _as_od(first, "Transitivity")
    od2 = _as_od(second, "Transitivity")
    if tuple(od1.rhs) != tuple(od2.lhs):
        raise InvalidRuleApplication(
            f"Transitivity: middle lists differ ({od1.rhs!r} vs {od2.lhs!r})"
        )
    return OrderDependency(od1.lhs, od2.rhs)


# ----------------------------------------------------------------------
# OD5 — Suffix
# ----------------------------------------------------------------------
def suffix(premise: Statement) -> OrderEquivalence:
    """OD5: from ``X ↦ Y`` infer ``X ↔ YX``.

    If ``X`` orders ``Y`` then prepending ``Y`` to ``X`` changes nothing:
    ties broken by ``Y`` were already broken the same way by ``X``.
    """
    dependency = _as_od(premise, "Suffix")
    return OrderEquivalence(dependency.lhs, dependency.rhs + dependency.lhs)


# ----------------------------------------------------------------------
# OD6 — Chain
# ----------------------------------------------------------------------
def chain(premises: Sequence[Statement], x, links, z) -> OrderCompatibility:
    """OD6: the Chain axiom.

    Parameters ``x``/``z`` are lists, ``links`` a non-empty sequence of
    intermediate lists ``Y₁ … Yₙ``.  Required premises (as compatibilities):

    * ``X ~ Y₁``
    * ``Yᵢ ~ Yᵢ₊₁`` for ``i = 1 … n-1``
    * ``Yₙ ~ Z``
    * ``YᵢX ~ YᵢZ`` for every ``i``

    Conclusion: ``X ~ Z``.  This is the axiom that rules out an undetected
    swap between ``X`` and ``Z`` hiding behind a chain of pairwise-compatible
    intermediaries (Figure 3); it is indispensable for completeness (the
    empty-context case of the construction, Lemma 12).
    """
    x, z = attrlist(x), attrlist(z)
    links = [attrlist(link) for link in links]
    if not links:
        raise InvalidRuleApplication("Chain requires at least one intermediate list")
    required = [OrderCompatibility(x, links[0])]
    for first, second in zip(links, links[1:]):
        required.append(OrderCompatibility(first, second))
    required.append(OrderCompatibility(links[-1], z))
    for link in links:
        required.append(OrderCompatibility(link + x, link + z))
    have = {canon(statement) for statement in premises}
    for requirement in required:
        if canon(requirement) not in have:
            raise InvalidRuleApplication(
                f"Chain: missing premise {requirement} "
                f"(need {len(required)} premises)"
            )
    return OrderCompatibility(x, z)


# ----------------------------------------------------------------------
# Structural rules (definitional, no logical content)
# ----------------------------------------------------------------------
def equiv_intro(first: Statement, second: Statement) -> OrderEquivalence:
    """``X ↦ Y, Y ↦ X ⊢ X ↔ Y`` (definition of ↔)."""
    od1 = _as_od(first, "EquivIntro")
    od2 = _as_od(second, "EquivIntro")
    if tuple(od1.lhs) != tuple(od2.rhs) or tuple(od1.rhs) != tuple(od2.lhs):
        raise InvalidRuleApplication("EquivIntro: the two ODs are not converses")
    return OrderEquivalence(od1.lhs, od1.rhs)


def equiv_left(premise: Statement) -> OrderDependency:
    """``X ↔ Y ⊢ X ↦ Y``."""
    equivalence = _as_equiv(premise, "EquivLeft")
    return OrderDependency(equivalence.lhs, equivalence.rhs)


def equiv_right(premise: Statement) -> OrderDependency:
    """``X ↔ Y ⊢ Y ↦ X``."""
    equivalence = _as_equiv(premise, "EquivRight")
    return OrderDependency(equivalence.rhs, equivalence.lhs)


def equiv_trans(first: Statement, second: Statement) -> OrderEquivalence:
    """``X ↔ Y, Y ↔ Z ⊢ X ↔ Z`` (two Transitivity applications)."""
    e1 = _as_equiv(first, "EquivTrans")
    e2 = _as_equiv(second, "EquivTrans")
    if tuple(e1.rhs) == tuple(e2.lhs):
        return OrderEquivalence(e1.lhs, e2.rhs)
    if tuple(e1.rhs) == tuple(e2.rhs):
        return OrderEquivalence(e1.lhs, e2.lhs)
    if tuple(e1.lhs) == tuple(e2.lhs):
        return OrderEquivalence(e1.rhs, e2.rhs)
    raise InvalidRuleApplication("EquivTrans: no shared side")


def compat_intro(premise: Statement, x, y) -> OrderCompatibility:
    """``XY ↔ YX ⊢ X ~ Y`` (definition of ~)."""
    equivalence = _as_equiv(premise, "CompatIntro")
    x, y = attrlist(x), attrlist(y)
    expected = OrderCompatibility(x, y).equivalence()
    if canon(premise) != canon(expected):
        raise InvalidRuleApplication(
            f"CompatIntro: {equivalence} is not the defining equivalence of "
            f"{x!r} ~ {y!r}"
        )
    return OrderCompatibility(x, y)


def compat_elim(premise: Statement) -> OrderEquivalence:
    """``X ~ Y ⊢ XY ↔ YX``."""
    compatibility = _as_compat(premise, "CompatElim")
    return compatibility.equivalence()


#: Registry: rule name -> (constructor, number of premise arguments).
#: ``chain`` takes its premises as one sequence argument; the proof checker
#: special-cases it.
AXIOMS: Dict[str, Callable] = {
    "Reflexivity": reflexivity,
    "Prefix": prefix,
    "Normalization": normalization,
    "Transitivity": transitivity,
    "Suffix": suffix,
    "Chain": chain,
}

STRUCTURAL: Dict[str, Callable] = {
    "EquivIntro": equiv_intro,
    "EquivLeft": equiv_left,
    "EquivRight": equiv_right,
    "EquivTrans": equiv_trans,
    "CompatIntro": compat_intro,
    "CompatElim": compat_elim,
}

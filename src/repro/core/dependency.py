"""Dependency statements: order dependencies, equivalences, compatibilities, FDs.

The paper works with four kinds of statements:

* ``X ↦ Y`` — an **order dependency** (OD, Definition 4): any tuple stream
  ordered by ``X`` is also ordered by ``Y``.
* ``X ↔ Y`` — **order equivalence** (both ``X ↦ Y`` and ``Y ↦ X``).
* ``X ~ Y`` — **order compatibility** (Definition 5): ``XY ↔ YX``.
* ``X' → Y'`` — a classical **functional dependency** over attribute *sets*.

Equivalence and compatibility are definable from ODs, so every statement can
be *expanded* into a set of component ODs via :func:`to_ods`; the inference
oracle and the proof checker work on those expansions.

ASCII rendering uses ``|->`` for ``↦``, ``<->`` for ``↔``, ``~`` for
compatibility, and ``->`` for FDs, and :func:`parse_statement` reads the same
notation back.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from .attrs import EMPTY, AttrList, attrlist

__all__ = [
    "OrderDependency",
    "OrderEquivalence",
    "OrderCompatibility",
    "FunctionalDependency",
    "Statement",
    "od",
    "equiv",
    "compat",
    "fd",
    "to_ods",
    "expand_all",
    "parse_statement",
]


@dataclass(frozen=True)
class OrderDependency:
    """An order dependency ``lhs ↦ rhs`` (Definition 4).

    For every pair of tuples ``s``, ``t`` in a satisfying instance,
    ``s ≼_lhs t`` implies ``s ≼_rhs t``: ordering by ``lhs`` also orders by
    ``rhs``.  We say ``lhs`` *orders* ``rhs``.
    """

    lhs: AttrList
    rhs: AttrList

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", attrlist(self.lhs))
        object.__setattr__(self, "rhs", attrlist(self.rhs))

    @property
    def attributes(self) -> frozenset:
        """All attributes mentioned by the dependency."""
        return self.lhs.attrs | self.rhs.attrs

    def reversed(self) -> "OrderDependency":
        """The converse statement ``rhs ↦ lhs`` (not implied in general)."""
        return OrderDependency(self.rhs, self.lhs)

    def normalized(self) -> "OrderDependency":
        """Normalize both sides (sound by the Normalization axiom)."""
        return OrderDependency(self.lhs.normalized(), self.rhs.normalized())

    def fd_facet(self) -> "OrderDependency":
        """The OD ``lhs ↦ lhs ++ rhs``, equivalent to the FD
        ``set(lhs) → set(rhs)`` by Theorem 13."""
        return OrderDependency(self.lhs, self.lhs + self.rhs)

    def __str__(self) -> str:
        return f"{self.lhs!r} |-> {self.rhs!r}"


@dataclass(frozen=True)
class OrderEquivalence:
    """``lhs ↔ rhs``: each side orders the other."""

    lhs: AttrList
    rhs: AttrList

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", attrlist(self.lhs))
        object.__setattr__(self, "rhs", attrlist(self.rhs))

    @property
    def attributes(self) -> frozenset:
        return self.lhs.attrs | self.rhs.attrs

    def ods(self) -> tuple[OrderDependency, OrderDependency]:
        """The two component ODs."""
        return (
            OrderDependency(self.lhs, self.rhs),
            OrderDependency(self.rhs, self.lhs),
        )

    def __str__(self) -> str:
        return f"{self.lhs!r} <-> {self.rhs!r}"


@dataclass(frozen=True)
class OrderCompatibility:
    """``lhs ~ rhs``: order compatibility (Definition 5), i.e. ``XY ↔ YX``.

    Two lists are order compatible when no pair of tuples *swaps* between
    them: sorting by ``lhs`` then ``rhs`` gives the same order as sorting by
    ``rhs`` then ``lhs``.
    """

    lhs: AttrList
    rhs: AttrList

    def __post_init__(self) -> None:
        object.__setattr__(self, "lhs", attrlist(self.lhs))
        object.__setattr__(self, "rhs", attrlist(self.rhs))

    @property
    def attributes(self) -> frozenset:
        return self.lhs.attrs | self.rhs.attrs

    def equivalence(self) -> OrderEquivalence:
        """The defining equivalence ``lhs ++ rhs ↔ rhs ++ lhs``."""
        return OrderEquivalence(self.lhs + self.rhs, self.rhs + self.lhs)

    def ods(self) -> tuple[OrderDependency, OrderDependency]:
        return self.equivalence().ods()

    def __str__(self) -> str:
        return f"{self.lhs!r} ~ {self.rhs!r}"


@dataclass(frozen=True)
class FunctionalDependency:
    """A classical FD ``lhs → rhs`` over attribute *sets*.

    Stored with sorted tuples so instances are hashable and deterministic.
    By Theorem 13 the FD ``X' → Y'`` holds iff the OD ``X ↦ XY`` holds for
    any (equivalently, every) ordering ``X`` of ``X'`` and ``Y`` of ``Y'``.
    """

    lhs: tuple
    rhs: tuple

    def __init__(self, lhs: Iterable[str], rhs: Iterable[str]) -> None:
        if isinstance(lhs, str):
            lhs = AttrList.parse(lhs)
        if isinstance(rhs, str):
            rhs = AttrList.parse(rhs)
        object.__setattr__(self, "lhs", tuple(sorted(set(lhs))))
        object.__setattr__(self, "rhs", tuple(sorted(set(rhs))))

    @property
    def attributes(self) -> frozenset:
        return frozenset(self.lhs) | frozenset(self.rhs)

    def as_od(self) -> OrderDependency:
        """A canonical OD carrying the same constraint (Theorem 13)."""
        lhs = AttrList(self.lhs)
        rhs = AttrList(self.rhs)
        return OrderDependency(lhs, lhs + rhs)

    def __str__(self) -> str:
        return f"{{{', '.join(self.lhs)}}} -> {{{', '.join(self.rhs)}}}"


Statement = Union[
    OrderDependency, OrderEquivalence, OrderCompatibility, FunctionalDependency
]


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def od(lhs, rhs) -> OrderDependency:
    """Build an OD from list specs: ``od("A,B", "C")``."""
    return OrderDependency(attrlist(lhs), attrlist(rhs))


def equiv(lhs, rhs) -> OrderEquivalence:
    """Build an order equivalence from list specs."""
    return OrderEquivalence(attrlist(lhs), attrlist(rhs))


def compat(lhs, rhs) -> OrderCompatibility:
    """Build an order compatibility from list specs."""
    return OrderCompatibility(attrlist(lhs), attrlist(rhs))


def fd(lhs, rhs) -> FunctionalDependency:
    """Build an FD from set specs: ``fd("A,B", "C")``."""
    return FunctionalDependency(lhs, rhs)


def to_ods(statement: Statement) -> tuple[OrderDependency, ...]:
    """Expand any statement into its component order dependencies."""
    if isinstance(statement, OrderDependency):
        return (statement,)
    if isinstance(statement, (OrderEquivalence, OrderCompatibility)):
        return statement.ods()
    if isinstance(statement, FunctionalDependency):
        return (statement.as_od(),)
    raise TypeError(f"not a dependency statement: {statement!r}")


def expand_all(statements: Iterable[Statement]) -> tuple[OrderDependency, ...]:
    """Expand a collection of statements into a flat tuple of ODs."""
    out: list[OrderDependency] = []
    for statement in statements:
        out.extend(to_ods(statement))
    return tuple(out)


def parse_statement(text: str) -> Statement:
    """Parse the ASCII notation back into a statement object.

    * ``"[A,B] |-> [C]"`` → :class:`OrderDependency`
    * ``"[A,B] <-> [B,A]"`` → :class:`OrderEquivalence`
    * ``"[A] ~ [B]"`` → :class:`OrderCompatibility`
    * ``"A,B -> C"`` → :class:`FunctionalDependency`
    """
    for symbol, maker in (
        ("|->", od),
        ("<->", equiv),
        ("->", fd),
        ("~", compat),
    ):
        if symbol in text:
            left, _, right = text.partition(symbol)
            return maker(left.strip(), right.strip())
    raise ValueError(f"unrecognized dependency notation: {text!r}")


#: The always-true OD over the empty list pair; handy in tests.
TRIVIAL = OrderDependency(EMPTY, EMPTY)

"""The OD implication oracle: an exact theorem prover for order dependencies.

The paper lists an efficient *theorem prover* — deciding whether a set of
prescribed ODs ``M`` logically implies a candidate OD — as the first item of
future work.  This module supplies one, exact and complete, built on the
two-row small-model property (:mod:`repro.core.signs`):

    ``M ⊨ θ``  iff  every sign vector satisfying ``M`` satisfies ``θ``.

The enumeration is exponential in the number of *mentioned* attributes
(consistent with the later coNP-completeness result for OD implication), with
a DFS that prunes whole subtrees as soon as a partial assignment already
falsifies some OD in ``M`` whose attributes are all assigned.  Schema-scale
problems (≤ 16 or so attributes) decide in well under a second.

Besides yes/no answers the oracle produces **counterexample witnesses**: a
concrete two-row relation satisfying ``M`` and falsifying ``θ``, which is how
the library *shows its work* and how the test suite cross-validates every
derived theorem in :mod:`repro.core.theorems`.

**Memoization.**  A theory is immutable, so implication answers are too:
every query is canonicalized (component ODs normalized per the
Normalization axiom, trivially-true components dropped) and the refutation
result — ``None`` for implied, else the exact ``(names, signs)`` witness
tuple — is kept in a bounded LRU keyed on that canonical form.  Repeated
planner probes over the same query template therefore short-circuit without
re-enumerating sign vectors, and memoized answers (including counterexample
witnesses) are bit-identical to uncached ones because the cache stores the
search's own output.  Fast paths answer trivial/prefix/constant-reducible
goals before the cache is even consulted; :meth:`ODTheory.stats` exposes
hit/miss/fast-path counters for EXPLAIN output and benchmarks.
"""
from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .attrs import EMPTY, AttrList, attrlist
from .dependency import (
    FunctionalDependency,
    OrderCompatibility,
    OrderDependency,
    OrderEquivalence,
    Statement,
    expand_all,
    to_ods,
)
from .relation import Relation
from .signs import CompiledOD, materialize

__all__ = [
    "ODTheory",
    "implies",
    "counterexample",
    "is_trivial",
    "constants",
    "irreducible_cover",
]

#: Refuse enumeration beyond this many attributes by default (3^18 ≈ 4e8).
DEFAULT_MAX_ATTRIBUTES = 18

#: Default bound on memoized implication results per theory.
DEFAULT_RESULT_CACHE_SIZE = 4096

#: Default bound on compiled-premise sets per theory (was unbounded, which
#: leaked memory over long discovery runs probing many attribute components).
DEFAULT_COMPILED_CACHE_SIZE = 512

_MISS = object()


class _LRUCache:
    """A small bounded mapping with least-recently-used eviction."""

    __slots__ = ("maxsize", "_data")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: "OrderedDict[tuple, object]" = OrderedDict()

    def get(self, key, default=None):
        try:
            value = self._data[key]
        except KeyError:
            return default
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)


class TooManyAttributes(RuntimeError):
    """Raised when an implication problem exceeds the enumeration budget."""


class ODTheory:
    """A set of prescribed dependency statements with an implication oracle.

    Wraps a collection of statements (ODs, equivalences, compatibilities,
    FDs — anything :func:`repro.core.dependency.to_ods` understands) and
    answers implication queries against it.  Compiled premises are cached per
    attribute universe, so repeated queries over the same schema are cheap.
    """

    def __init__(
        self,
        statements: Iterable[Statement] = (),
        max_attributes: int = DEFAULT_MAX_ATTRIBUTES,
        result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        compiled_cache_size: int = DEFAULT_COMPILED_CACHE_SIZE,
    ) -> None:
        self.statements: tuple = tuple(statements)
        self.ods: tuple = expand_all(self.statements)
        self.max_attributes = max_attributes
        self._universe = frozenset().union(
            *(dependency.attributes for dependency in self.ods)
        ) if self.ods else frozenset()
        self._result_cache_size = result_cache_size
        self._compiled_cache_size = compiled_cache_size
        self._compiled_cache = _LRUCache(max(1, compiled_cache_size))
        #: canonical goal set -> None (implied) | (names, signs) refutation.
        #: ``result_cache_size=0`` disables memoization entirely (used by
        #: tests to cross-check cached answers against fresh searches).
        self._result_cache: Optional[_LRUCache] = (
            _LRUCache(result_cache_size) if result_cache_size > 0 else None
        )
        #: attributes proven constant ([] ↦ [A]) by earlier queries; lets
        #: the constant fast path reduce goals without touching the oracle.
        self._known_constants: set = set()
        self._counters: Dict[str, int] = {
            "implies_calls": 0,
            "fast_path": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "enumerations": 0,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> frozenset:
        """Every attribute mentioned by some premise."""
        return self._universe

    def __len__(self) -> int:
        return len(self.ods)

    def extended(self, statements: Iterable[Statement]) -> "ODTheory":
        """A new theory with additional premises (caches start fresh — the
        premises changed, so memoized answers would be unsound — but keep
        this theory's cache configuration)."""
        return ODTheory(
            self.statements + tuple(statements),
            self.max_attributes,
            result_cache_size=self._result_cache_size,
            compiled_cache_size=self._compiled_cache_size,
        )

    def stats(self) -> Dict[str, object]:
        """Oracle instrumentation: call, fast-path, and cache counters.

        ``hit_rate`` is over result-cache lookups only (fast-path answers
        never reach the cache); the raw counters are what the planner diffs
        to attribute oracle work to a single plan.
        """
        out: Dict[str, object] = dict(self._counters)
        lookups = self._counters["cache_hits"] + self._counters["cache_misses"]
        out["hit_rate"] = self._counters["cache_hits"] / lookups if lookups else 0.0
        out["result_cache_size"] = (
            len(self._result_cache) if self._result_cache is not None else 0
        )
        out["compiled_cache_size"] = len(self._compiled_cache)
        out["known_constants"] = len(self._known_constants)
        return out

    def reset_stats(self) -> None:
        """Zero the counters (caches are kept — they stay sound)."""
        for key in self._counters:
            self._counters[key] = 0

    # ------------------------------------------------------------------
    # Core decision procedure
    # ------------------------------------------------------------------
    def _attribute_order(self, extra: frozenset) -> tuple:
        return tuple(sorted(self._universe | extra))

    def _relevant_premises(self, goal_attrs: frozenset) -> tuple:
        """Premises in the attribute-connected component of the goal.

        Sound *and* complete filtering: a two-row model over the component
        extends to a full model by zeroing every other attribute (all-equal
        signs satisfy any OD), so disconnected premises can never block a
        counterexample.  This keeps implication queries exponential only in
        the *relevant* attribute count, not the schema width.
        """
        component = set(goal_attrs)
        remaining = list(self.ods)
        changed = True
        while changed:
            changed = False
            still = []
            for dependency in remaining:
                attrs = dependency.attributes
                if attrs & component:
                    component |= attrs
                    changed = True
                elif not attrs:
                    continue  # trivially true, never constrains anything
                else:
                    still.append(dependency)
            remaining = still
        used = tuple(
            dependency
            for dependency in self.ods
            if dependency.attributes and dependency.attributes <= component
        )
        return frozenset(component), used

    @staticmethod
    def _canonical_goals(statement: Statement) -> Tuple[tuple, ...]:
        """The statement's canonical form: a sorted, duplicate-free tuple of
        ``(lhs, rhs)`` column tuples, one per non-trivial component OD.

        Both sides are normalized (sound by the Normalization axiom) and
        components whose normalized rhs prefixes their lhs are dropped —
        they hold on every instance (Reflexivity), so they never decide the
        conjunction nor change which sign vectors refute it.
        """
        goals = set()
        for dependency in to_ods(statement):
            lhs = dependency.lhs.normalized()
            rhs = dependency.rhs.normalized()
            if rhs.is_prefix_of(lhs):
                continue
            goals.add((tuple(lhs), tuple(rhs)))
        return tuple(sorted(goals))

    def _constant_reduced_trivial(self, goals: Tuple[tuple, ...]) -> bool:
        """True when dropping known-constant attributes (sign forced 0 in
        every model, so they never influence a lexicographic comparison)
        makes every goal component trivial-by-prefix."""
        constants = self._known_constants
        if not constants:
            return False
        for lhs, rhs in goals:
            reduced_lhs = tuple(a for a in lhs if a not in constants)
            reduced_rhs = tuple(a for a in rhs if a not in constants)
            if reduced_rhs != reduced_lhs[: len(reduced_rhs)]:
                return False
        return True

    def _decide(self, statement: Statement) -> Optional[tuple]:
        """Memoized refutation search over the canonicalized statement.

        Returns ``None`` when implied, else the ``(names, signs)`` witness
        tuple — always the same tuple the uncached search would produce.
        """
        self._counters["implies_calls"] += 1
        goals = self._canonical_goals(statement)
        if not goals:
            self._counters["fast_path"] += 1
            return None
        if self._constant_reduced_trivial(goals):
            self._counters["fast_path"] += 1
            return None
        if self._result_cache is not None:
            found = self._result_cache.get(goals, _MISS)
            if found is not _MISS:
                self._counters["cache_hits"] += 1
                return found
            self._counters["cache_misses"] += 1
        result = self._search_refutation(goals)
        if self._result_cache is not None:
            self._result_cache.put(goals, result)
        if result is None:
            for lhs, rhs in goals:
                if not lhs:  # [] ↦ rhs implied: every rhs attribute is constant
                    self._known_constants.update(rhs)
        return result

    def _search_refutation(self, goals: Tuple[tuple, ...]) -> Optional[tuple]:
        """The exact DFS over sign vectors (uncached core).

        Returns ``(names, signs)`` — a sign tuple satisfying the theory but
        falsifying some goal — or ``None`` when the goals are implied.
        """
        self._counters["enumerations"] += 1
        goal_ods = tuple(
            OrderDependency(AttrList(lhs), AttrList(rhs)) for lhs, rhs in goals
        )
        goal_attrs = frozenset().union(*(d.attributes for d in goal_ods))
        component, used = self._relevant_premises(goal_attrs)
        names = tuple(sorted(component | goal_attrs))
        if len(names) > self.max_attributes:
            raise TooManyAttributes(
                f"{len(names)} attributes exceed the enumeration budget "
                f"({self.max_attributes}); raise max_attributes explicitly"
            )
        index = {name: i for i, name in enumerate(names)}
        cache_key = (names, used)
        premises = self._compiled_cache.get(cache_key)
        if premises is None:
            premises = tuple(CompiledOD(dep, index) for dep in used)
            self._compiled_cache.put(cache_key, premises)
        goals_compiled = tuple(CompiledOD(dependency, index) for dependency in goal_ods)

        # Partial-assignment pruning: a premise can be evaluated as soon as
        # the last of its attributes is assigned.  Bucket premises by that
        # trigger position so the DFS checks each exactly once.
        buckets: List[List[CompiledOD]] = [[] for _ in names]
        always_true: List[CompiledOD] = []
        for compiled in premises:
            positions = compiled.lhs_positions + compiled.rhs_positions
            if positions:
                buckets[max(positions)].append(compiled)
            else:
                always_true.append(compiled)
        for compiled in always_true:
            if not compiled.holds(()):  # pragma: no cover - vacuous ODs hold
                return None

        signs = [0] * len(names)

        def dfs(position: int) -> Optional[tuple]:
            if position == len(names):
                if not all(goal.holds(signs) for goal in goals_compiled):
                    return tuple(signs)
                return None
            for value in (0, -1, 1):
                signs[position] = value
                if all(c.holds(signs) for c in buckets[position]):
                    found = dfs(position + 1)
                    if found is not None:
                        return found
            signs[position] = 0
            return None

        found = dfs(0)
        if found is None:
            return None
        return (names, found)

    def implies(self, statement: Statement) -> bool:
        """Exact logical implication: does every model of the theory satisfy
        the statement?  Memoized — see the module docstring."""
        return self._decide(statement) is None

    def counterexample(self, statement: Statement) -> Optional[Relation]:
        """A two-row relation satisfying the theory and falsifying the
        statement, or ``None`` when the statement is implied."""
        refutation = self._decide(statement)
        if refutation is None:
            return None
        names, signs = refutation
        sigma = dict(zip(names, signs))
        # Attributes outside the relevant component take equal values (sign
        # 0), which satisfies every OD, so the witness models the whole
        # theory, not just the filtered premises.
        for name in self._universe:
            sigma.setdefault(name, 0)
        return materialize(sigma, AttrList(sorted(sigma)))

    def entails_all(self, statements: Iterable[Statement]) -> bool:
        """Check several statements at once."""
        return all(self.implies(statement) for statement in statements)

    # ------------------------------------------------------------------
    # Derived queries
    # ------------------------------------------------------------------
    def is_constant(self, attribute: str) -> bool:
        """Definition 18: ``A`` is constant iff ``[] ↦ [A]`` is implied."""
        return self.implies(OrderDependency(EMPTY, AttrList([attribute])))

    def constants(self) -> frozenset:
        """Every mentioned attribute forced to a single value."""
        return frozenset(a for a in self._universe if self.is_constant(a))

    def order_compatible(self, lhs, rhs) -> bool:
        """Is ``lhs ~ rhs`` implied (Definition 5)?"""
        return self.implies(OrderCompatibility(attrlist(lhs), attrlist(rhs)))

    def equivalent(self, lhs, rhs) -> bool:
        """Is ``lhs ↔ rhs`` implied?"""
        return self.implies(OrderEquivalence(attrlist(lhs), attrlist(rhs)))

    def fd_holds(self, dependency: "FunctionalDependency | str") -> bool:
        """Is the FD implied?  Uses the Theorem 13 OD encoding."""
        if isinstance(dependency, str):
            from .dependency import parse_statement

            parsed = parse_statement(dependency)
            if not isinstance(parsed, FunctionalDependency):
                raise TypeError(f"not an FD: {dependency!r}")
            dependency = parsed
        return self.implies(dependency)

    def fd_closure(self, attributes: Iterable[str]) -> frozenset:
        """The FD-closure of an attribute set under the theory's FD facets.

        ``A ∈ closure(W)`` iff ``W ↦ W ++ [A]`` is implied — by Theorem 13
        that is exactly the classical ``W → A``.
        """
        base = AttrList(sorted(set(attributes)))
        closed = set(base)
        for attribute in sorted(self._universe - set(base)):
            candidate = OrderDependency(base, base + [attribute])
            if self.implies(candidate):
                closed.add(attribute)
        return frozenset(closed)

    def compatibility_graph(self) -> Dict[str, frozenset]:
        """Adjacency of single attributes under implied pairwise ``~``.

        Used by the empty-context swap construction (Figure 9 / Lemma 12) and
        exposed for diagnostics: two attributes in the same connected
        component can never receive an empty-context swap.
        """
        names = sorted(self._universe)
        adjacency: Dict[str, set] = {name: set() for name in names}
        for a, b in itertools.combinations(names, 2):
            if self.order_compatible(AttrList([a]), AttrList([b])):
                adjacency[a].add(b)
                adjacency[b].add(a)
        return {name: frozenset(neighbors) for name, neighbors in adjacency.items()}

    def models(self, attributes: Sequence[str] = ()) -> Iterator[Dict[str, int]]:
        """Yield every sign vector over the universe (plus ``attributes``)
        satisfying the theory.  Basis of the canonical Armstrong relation."""
        names = self._attribute_order(frozenset(attributes))
        if len(names) > self.max_attributes:
            raise TooManyAttributes(
                f"{len(names)} attributes exceed the enumeration budget"
            )
        index = {name: i for i, name in enumerate(names)}
        premises = tuple(CompiledOD(dep, index) for dep in self.ods)
        for combo in itertools.product((-1, 0, 1), repeat=len(names)):
            if all(compiled.holds(combo) for compiled in premises):
                yield dict(zip(names, combo))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ODTheory({len(self.statements)} statements, {len(self._universe)} attributes)"


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------
def implies(premises: Iterable[Statement], statement: Statement) -> bool:
    """One-shot implication check: ``premises ⊨ statement``."""
    return ODTheory(premises).implies(statement)


def counterexample(
    premises: Iterable[Statement], statement: Statement
) -> Optional[Relation]:
    """One-shot counterexample search."""
    return ODTheory(premises).counterexample(statement)


def is_trivial(statement: Statement) -> bool:
    """Is the statement satisfied by *every* instance (implied by ∅)?

    For example ``XY ↦ X`` (Reflexivity) is trivial; ``X ↦ XY`` is not.
    """
    return ODTheory(()).implies(statement)


def constants(premises: Iterable[Statement]) -> frozenset:
    """Attributes forced constant by the premises (Definition 18)."""
    return ODTheory(premises).constants()


def irreducible_cover(statements: Iterable[Statement]) -> tuple:
    """A non-redundant subset equivalent to the input (Definition 9 sense).

    Greedily removes any statement implied by the remainder; the result
    implies (and is implied by) the original set.  Deterministic given
    input order; analogous to an FD minimal cover at the statement level.
    """
    working = list(statements)
    index = 0
    while index < len(working):
        candidate = working[index]
        rest = working[:index] + working[index + 1:]
        if ODTheory(tuple(rest)).implies(candidate):
            working = rest
        else:
            index += 1
    return tuple(working)

"""The OD implication oracle: an exact theorem prover for order dependencies.

The paper lists an efficient *theorem prover* — deciding whether a set of
prescribed ODs ``M`` logically implies a candidate OD — as the first item of
future work.  This module supplies one, exact and complete, built on the
two-row small-model property (:mod:`repro.core.signs`):

    ``M ⊨ θ``  iff  every sign vector satisfying ``M`` satisfies ``θ``.

The enumeration is exponential in the number of *mentioned* attributes
(consistent with the later coNP-completeness result for OD implication), with
a DFS that prunes whole subtrees as soon as a partial assignment already
falsifies some OD in ``M`` whose attributes are all assigned.  Schema-scale
problems (≤ 16 or so attributes) decide in well under a second.

Besides yes/no answers the oracle produces **counterexample witnesses**: a
concrete two-row relation satisfying ``M`` and falsifying ``θ``, which is how
the library *shows its work* and how the test suite cross-validates every
derived theorem in :mod:`repro.core.theorems`.
"""
from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .attrs import EMPTY, AttrList, attrlist
from .dependency import (
    FunctionalDependency,
    OrderCompatibility,
    OrderDependency,
    OrderEquivalence,
    Statement,
    expand_all,
    to_ods,
)
from .relation import Relation
from .signs import CompiledOD, materialize

__all__ = [
    "ODTheory",
    "implies",
    "counterexample",
    "is_trivial",
    "constants",
    "irreducible_cover",
]

#: Refuse enumeration beyond this many attributes by default (3^18 ≈ 4e8).
DEFAULT_MAX_ATTRIBUTES = 18


class TooManyAttributes(RuntimeError):
    """Raised when an implication problem exceeds the enumeration budget."""


class ODTheory:
    """A set of prescribed dependency statements with an implication oracle.

    Wraps a collection of statements (ODs, equivalences, compatibilities,
    FDs — anything :func:`repro.core.dependency.to_ods` understands) and
    answers implication queries against it.  Compiled premises are cached per
    attribute universe, so repeated queries over the same schema are cheap.
    """

    def __init__(
        self,
        statements: Iterable[Statement] = (),
        max_attributes: int = DEFAULT_MAX_ATTRIBUTES,
    ) -> None:
        self.statements: tuple = tuple(statements)
        self.ods: tuple = expand_all(self.statements)
        self.max_attributes = max_attributes
        self._universe = frozenset().union(
            *(dependency.attributes for dependency in self.ods)
        ) if self.ods else frozenset()
        self._compiled_cache: Dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> frozenset:
        """Every attribute mentioned by some premise."""
        return self._universe

    def __len__(self) -> int:
        return len(self.ods)

    def extended(self, statements: Iterable[Statement]) -> "ODTheory":
        """A new theory with additional premises."""
        return ODTheory(self.statements + tuple(statements), self.max_attributes)

    # ------------------------------------------------------------------
    # Core decision procedure
    # ------------------------------------------------------------------
    def _attribute_order(self, extra: frozenset) -> tuple:
        return tuple(sorted(self._universe | extra))

    def _relevant_premises(self, goal_attrs: frozenset) -> tuple:
        """Premises in the attribute-connected component of the goal.

        Sound *and* complete filtering: a two-row model over the component
        extends to a full model by zeroing every other attribute (all-equal
        signs satisfy any OD), so disconnected premises can never block a
        counterexample.  This keeps implication queries exponential only in
        the *relevant* attribute count, not the schema width.
        """
        component = set(goal_attrs)
        remaining = list(self.ods)
        changed = True
        while changed:
            changed = False
            still = []
            for dependency in remaining:
                attrs = dependency.attributes
                if attrs & component:
                    component |= attrs
                    changed = True
                elif not attrs:
                    continue  # trivially true, never constrains anything
                else:
                    still.append(dependency)
            remaining = still
        used = tuple(
            dependency
            for dependency in self.ods
            if dependency.attributes and dependency.attributes <= component
        )
        return frozenset(component), used

    def _refuting_sign_tuple(
        self, statement: Statement
    ) -> Optional[tuple]:
        """A sign tuple satisfying the theory but falsifying the statement.

        Returns ``(names, signs)`` or ``None`` when the statement is implied.
        """
        goal_ods = to_ods(statement)
        goal_attrs = (
            frozenset().union(*(d.attributes for d in goal_ods))
            if goal_ods
            else frozenset()
        )
        component, used = self._relevant_premises(goal_attrs)
        names = tuple(sorted(component | goal_attrs))
        if len(names) > self.max_attributes:
            raise TooManyAttributes(
                f"{len(names)} attributes exceed the enumeration budget "
                f"({self.max_attributes}); raise max_attributes explicitly"
            )
        index = {name: i for i, name in enumerate(names)}
        cache_key = (names, used)
        premises = self._compiled_cache.get(cache_key)
        if premises is None:
            premises = tuple(CompiledOD(dep, index) for dep in used)
            self._compiled_cache[cache_key] = premises
        goals = tuple(CompiledOD(dependency, index) for dependency in goal_ods)

        # Partial-assignment pruning: a premise can be evaluated as soon as
        # the last of its attributes is assigned.  Bucket premises by that
        # trigger position so the DFS checks each exactly once.
        buckets: List[List[CompiledOD]] = [[] for _ in names]
        always_true: List[CompiledOD] = []
        for compiled in premises:
            positions = compiled.lhs_positions + compiled.rhs_positions
            if positions:
                buckets[max(positions)].append(compiled)
            else:
                always_true.append(compiled)
        for compiled in always_true:
            if not compiled.holds(()):  # pragma: no cover - vacuous ODs hold
                return None

        signs = [0] * len(names)

        def dfs(position: int) -> Optional[tuple]:
            if position == len(names):
                if not all(goal.holds(signs) for goal in goals):
                    return tuple(signs)
                return None
            for value in (0, -1, 1):
                signs[position] = value
                if all(c.holds(signs) for c in buckets[position]):
                    found = dfs(position + 1)
                    if found is not None:
                        return found
            signs[position] = 0
            return None

        found = dfs(0)
        if found is None:
            return None
        return (names, found)

    def implies(self, statement: Statement) -> bool:
        """Exact logical implication: does every model of the theory satisfy
        the statement?"""
        return self._refuting_sign_tuple(statement) is None

    def counterexample(self, statement: Statement) -> Optional[Relation]:
        """A two-row relation satisfying the theory and falsifying the
        statement, or ``None`` when the statement is implied."""
        refutation = self._refuting_sign_tuple(statement)
        if refutation is None:
            return None
        names, signs = refutation
        sigma = dict(zip(names, signs))
        # Attributes outside the relevant component take equal values (sign
        # 0), which satisfies every OD, so the witness models the whole
        # theory, not just the filtered premises.
        for name in self._universe:
            sigma.setdefault(name, 0)
        return materialize(sigma, AttrList(sorted(sigma)))

    def entails_all(self, statements: Iterable[Statement]) -> bool:
        """Check several statements at once."""
        return all(self.implies(statement) for statement in statements)

    # ------------------------------------------------------------------
    # Derived queries
    # ------------------------------------------------------------------
    def is_constant(self, attribute: str) -> bool:
        """Definition 18: ``A`` is constant iff ``[] ↦ [A]`` is implied."""
        return self.implies(OrderDependency(EMPTY, AttrList([attribute])))

    def constants(self) -> frozenset:
        """Every mentioned attribute forced to a single value."""
        return frozenset(a for a in self._universe if self.is_constant(a))

    def order_compatible(self, lhs, rhs) -> bool:
        """Is ``lhs ~ rhs`` implied (Definition 5)?"""
        return self.implies(OrderCompatibility(attrlist(lhs), attrlist(rhs)))

    def equivalent(self, lhs, rhs) -> bool:
        """Is ``lhs ↔ rhs`` implied?"""
        return self.implies(OrderEquivalence(attrlist(lhs), attrlist(rhs)))

    def fd_holds(self, dependency: "FunctionalDependency | str") -> bool:
        """Is the FD implied?  Uses the Theorem 13 OD encoding."""
        if isinstance(dependency, str):
            from .dependency import parse_statement

            parsed = parse_statement(dependency)
            if not isinstance(parsed, FunctionalDependency):
                raise TypeError(f"not an FD: {dependency!r}")
            dependency = parsed
        return self.implies(dependency)

    def fd_closure(self, attributes: Iterable[str]) -> frozenset:
        """The FD-closure of an attribute set under the theory's FD facets.

        ``A ∈ closure(W)`` iff ``W ↦ W ++ [A]`` is implied — by Theorem 13
        that is exactly the classical ``W → A``.
        """
        base = AttrList(sorted(set(attributes)))
        closed = set(base)
        for attribute in sorted(self._universe - set(base)):
            candidate = OrderDependency(base, base + [attribute])
            if self.implies(candidate):
                closed.add(attribute)
        return frozenset(closed)

    def compatibility_graph(self) -> Dict[str, frozenset]:
        """Adjacency of single attributes under implied pairwise ``~``.

        Used by the empty-context swap construction (Figure 9 / Lemma 12) and
        exposed for diagnostics: two attributes in the same connected
        component can never receive an empty-context swap.
        """
        names = sorted(self._universe)
        adjacency: Dict[str, set] = {name: set() for name in names}
        for a, b in itertools.combinations(names, 2):
            if self.order_compatible(AttrList([a]), AttrList([b])):
                adjacency[a].add(b)
                adjacency[b].add(a)
        return {name: frozenset(neighbors) for name, neighbors in adjacency.items()}

    def models(self, attributes: Sequence[str] = ()) -> Iterator[Dict[str, int]]:
        """Yield every sign vector over the universe (plus ``attributes``)
        satisfying the theory.  Basis of the canonical Armstrong relation."""
        names = self._attribute_order(frozenset(attributes))
        if len(names) > self.max_attributes:
            raise TooManyAttributes(
                f"{len(names)} attributes exceed the enumeration budget"
            )
        index = {name: i for i, name in enumerate(names)}
        premises = tuple(CompiledOD(dep, index) for dep in self.ods)
        for combo in itertools.product((-1, 0, 1), repeat=len(names)):
            if all(compiled.holds(combo) for compiled in premises):
                yield dict(zip(names, combo))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ODTheory({len(self.statements)} statements, {len(self._universe)} attributes)"


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------
def implies(premises: Iterable[Statement], statement: Statement) -> bool:
    """One-shot implication check: ``premises ⊨ statement``."""
    return ODTheory(premises).implies(statement)


def counterexample(
    premises: Iterable[Statement], statement: Statement
) -> Optional[Relation]:
    """One-shot counterexample search."""
    return ODTheory(premises).counterexample(statement)


def is_trivial(statement: Statement) -> bool:
    """Is the statement satisfied by *every* instance (implied by ∅)?

    For example ``XY ↦ X`` (Reflexivity) is trivial; ``X ↦ XY`` is not.
    """
    return ODTheory(()).implies(statement)


def constants(premises: Iterable[Statement]) -> frozenset:
    """Attributes forced constant by the premises (Definition 18)."""
    return ODTheory(premises).constants()


def irreducible_cover(statements: Iterable[Statement]) -> tuple:
    """A non-redundant subset equivalent to the input (Definition 9 sense).

    Greedily removes any statement implied by the remainder; the result
    implies (and is implied by) the original set.  Deterministic given
    input order; analogous to an FD minimal cover at the statement level.
    """
    working = list(statements)
    index = 0
    while index < len(working):
        candidate = working[index]
        rest = working[:index] + working[index + 1:]
        if ODTheory(tuple(rest)).implies(candidate):
            working = rest
        else:
            index += 1
    return tuple(working)

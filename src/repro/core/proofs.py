"""Machine-checkable proof objects for OD derivations (Definition 6).

A *proof of θ from M* is a sequence of statements, each of which is either a
premise of ``M`` or follows from earlier lines by a rule instantiation.  The
:class:`Proof` object records exactly that, and :func:`check_proof` replays
every line through the rule constructors of :mod:`repro.core.axioms` (and,
when permitted, the derived theorems of :mod:`repro.core.theorems`),
re-deriving each conclusion and comparing canonical forms.

This gives the reproduction a *kernel*: the paper's derived theorems ship
with explicit derivations (:mod:`repro.core.proofs_library`) that the kernel
verifies in the test suite, so "Theorem 8 follows from the axioms" is not a
claim but a replayed computation.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from .axioms import AXIOMS, STRUCTURAL, InvalidRuleApplication, canon
from .dependency import Statement

__all__ = ["ProofLine", "Proof", "ProofError", "check_proof"]


class ProofError(ValueError):
    """A proof line failed verification."""


@dataclass(frozen=True)
class ProofLine:
    """One derivation step.

    ``rule`` is ``"Given"`` or a rule name known to the checker;
    ``premises`` are 0-based indices of earlier lines; ``params`` holds the
    schema parameters (attribute lists and similar) of the instantiation.
    """

    statement: Statement
    rule: str
    premises: Tuple[int, ...] = ()
    params: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        premise_part = (
            f"({', '.join(str(i + 1) for i in self.premises)})" if self.premises else ""
        )
        return f"{self.statement}   [{self.rule}{premise_part}]"


@dataclass
class Proof:
    """A named derivation: assumptions, lines, and the final conclusion."""

    name: str
    assumptions: Tuple[Statement, ...]
    lines: Tuple[ProofLine, ...]

    @property
    def conclusion(self) -> Statement:
        return self.lines[-1].statement

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"Proof of {self.name}:"]
        for i, assumption in enumerate(self.assumptions):
            parts.append(f"  A{i + 1}. {assumption}")
        for i, line in enumerate(self.lines):
            parts.append(f"  {i + 1:>3}. {line}")
        return "\n".join(parts)

    def __len__(self) -> int:
        return len(self.lines)


def _rule_registry(allow_theorems: bool) -> Dict[str, Any]:
    registry: Dict[str, Any] = {}
    registry.update(AXIOMS)
    registry.update(STRUCTURAL)
    if allow_theorems:
        from .theorems import THEOREMS  # local import avoids a cycle

        registry.update(THEOREMS)
    return registry


def check_proof(proof: Proof, allow_theorems: bool = True) -> bool:
    """Replay the proof line by line; raise :class:`ProofError` on failure.

    With ``allow_theorems=False`` only the six axioms and the structural
    rules are accepted (a *kernel-only* check); otherwise lines may also
    cite derived theorems, which is how the paper chains results (each cited
    theorem has its own kernel-checked proof in the library — the
    stratification test in the suite verifies there are no cycles).
    """
    registry = _rule_registry(allow_theorems)
    assumption_forms = [canon(statement) for statement in proof.assumptions]
    for number, line in enumerate(proof.lines):
        for premise_index in line.premises:
            if not 0 <= premise_index < number:
                raise ProofError(
                    f"{proof.name} line {number + 1}: premise reference "
                    f"{premise_index + 1} is not an earlier line"
                )
        if line.rule == "Given":
            if canon(line.statement) not in assumption_forms:
                raise ProofError(
                    f"{proof.name} line {number + 1}: {line.statement} is not "
                    f"among the assumptions"
                )
            continue
        constructor = registry.get(line.rule)
        if constructor is None:
            raise ProofError(
                f"{proof.name} line {number + 1}: unknown rule {line.rule!r}"
            )
        premise_statements = tuple(proof.lines[i].statement for i in line.premises)
        try:
            if line.rule == "Chain":
                derived = constructor(premise_statements, **line.params)
            else:
                derived = constructor(*premise_statements, **line.params)
        except InvalidRuleApplication as exc:
            raise ProofError(
                f"{proof.name} line {number + 1}: invalid {line.rule} "
                f"application: {exc}"
            ) from exc
        except TypeError as exc:
            raise ProofError(
                f"{proof.name} line {number + 1}: bad arity/params for "
                f"{line.rule}: {exc}"
            ) from exc
        if canon(derived) != canon(line.statement):
            raise ProofError(
                f"{proof.name} line {number + 1}: rule {line.rule} derives "
                f"{derived}, not the claimed {line.statement}"
            )
    return True

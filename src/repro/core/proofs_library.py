"""Explicit derivations of the paper's theorems from the axioms.

Each builder returns a :class:`~repro.core.proofs.Proof` for one theorem,
instantiated at caller-supplied attribute lists, so the test suite can replay
the derivations at *random* instantiations through the proof checker.

The library is **stratified**: a proof may cite a derived theorem by name
only if that theorem appears *earlier* in :data:`DERIVATION_ORDER` (and
therefore ultimately reduces to the axioms).  ``tests/core/test_proof_objects``
verifies both each proof and the stratification.

Derivation map (who cites whom):

* Union, Augmentation, Decomposition, FrontReplace, Compose — axioms only.
* Shift — cites FrontReplace.
* Replace — cites FrontReplace.
* Eliminate, LeftEliminate, CompatFacet — cite Replace.
* Drop, Path — cite Eliminate.
* FDFacet — cites Union.
"""
from __future__ import annotations

from typing import Callable, Dict, Tuple

from .attrs import EMPTY, AttrList, attrlist
from .dependency import (
    OrderCompatibility,
    OrderDependency,
    OrderEquivalence,
)
from .proofs import Proof, ProofLine

__all__ = ["PROOF_BUILDERS", "DERIVATION_ORDER", "build_proof"]


def _l(statement, rule, premises=(), **params) -> ProofLine:
    return ProofLine(statement, rule, tuple(premises), dict(params))


def proof_union(x, y, z) -> Proof:
    """Theorem 2: ``X ↦ Y, X ↦ Z ⊢ X ↦ YZ`` (mirrors the paper's proof)."""
    x, y, z = attrlist(x), attrlist(y), attrlist(z)
    a1 = OrderDependency(x, y)
    a2 = OrderDependency(x, z)
    return Proof(
        "Union",
        (a1, a2),
        (
            _l(a1, "Given"),
            _l(a2, "Given"),
            _l(OrderEquivalence(x, y + x), "Suffix", [0]),
            _l(OrderDependency(x, y + x), "EquivLeft", [2]),
            _l(OrderDependency(y + x, y + z), "Prefix", [1], z=y),
            _l(OrderDependency(x, y + z), "Transitivity", [3, 4]),
        ),
    )


def proof_augmentation(x, y, z) -> Proof:
    """Theorem 3: ``X ↦ Y ⊢ XZ ↦ Y``."""
    x, y, z = attrlist(x), attrlist(y), attrlist(z)
    a1 = OrderDependency(x, y)
    return Proof(
        "Augmentation",
        (a1,),
        (
            _l(a1, "Given"),
            _l(OrderDependency(x + z, x), "Reflexivity", [], x=x, y=z),
            _l(OrderDependency(x + z, y), "Transitivity", [1, 0]),
        ),
    )


def proof_decomposition(x, y, z) -> Proof:
    """Theorem 5: ``X ↦ YZ ⊢ X ↦ Y``."""
    x, y, z = attrlist(x), attrlist(y), attrlist(z)
    a1 = OrderDependency(x, y + z)
    return Proof(
        "Decomposition",
        (a1,),
        (
            _l(a1, "Given"),
            _l(OrderDependency(y + z, y), "Reflexivity", [], x=y, y=z),
            _l(OrderDependency(x, y), "Transitivity", [0, 1]),
        ),
    )


def proof_front_replace(x, y, w) -> Proof:
    """FrontReplace lemma: ``X ↔ Y ⊢ XW ↦ YW``, from the axioms alone.

    The crux is commuting equivalent lists at the head: from ``X ↔ Y`` the
    Suffix axiom pins ``XW ↔ YXW`` and ``YW ↔ XYW``, and Normalization
    collapses ``XYXW`` to ``XYW``, letting transitivity carry ``XW`` over to
    ``YW``.
    """
    x, y, w = attrlist(x), attrlist(y), attrlist(w)
    a1 = OrderEquivalence(x, y)
    return Proof(
        "FrontReplace",
        (a1,),
        (
            _l(a1, "Given"),                                                    # 0
            _l(OrderDependency(x, y), "EquivLeft", [0]),                        # 1
            _l(OrderDependency(y, x), "EquivRight", [0]),                       # 2
            _l(OrderDependency(x + w, x), "Reflexivity", [], x=x, y=w),         # 3
            _l(OrderDependency(x + w, y), "Transitivity", [3, 1]),              # 4
            _l(OrderEquivalence(x + w, y + x + w), "Suffix", [4]),              # 5
            _l(OrderDependency(x + w, y + x + w), "EquivLeft", [5]),            # 6
            _l(OrderDependency(y + x + w, y), "Reflexivity", [], x=y, y=x + w), # 7
            _l(OrderDependency(y + x + w, x), "Transitivity", [7, 2]),          # 8
            _l(OrderEquivalence(y + x + w, x + y + x + w), "Suffix", [8]),      # 9
            _l(
                OrderEquivalence(x + y + x + w, x + y + w),
                "Normalization", [], w=EMPTY, x=x, y=y, v=w,
            ),                                                                  # 10
            _l(OrderEquivalence(y + x + w, x + y + w), "EquivTrans", [9, 10]),  # 11
            _l(OrderDependency(y + w, y), "Reflexivity", [], x=y, y=w),         # 12
            _l(OrderDependency(y + w, x), "Transitivity", [12, 2]),             # 13
            _l(OrderEquivalence(y + w, x + y + w), "Suffix", [13]),             # 14
            _l(OrderDependency(x + y + w, y + w), "EquivRight", [14]),          # 15
            _l(OrderDependency(y + x + w, x + y + w), "EquivLeft", [11]),       # 16
            _l(OrderDependency(x + w, x + y + w), "Transitivity", [6, 16]),     # 17
            _l(OrderDependency(x + w, y + w), "Transitivity", [17, 15]),        # 18
        ),
    )


def proof_shift(x, y, v, w) -> Proof:
    """Theorem 4 (Shift): ``X ↔ Y, V ↦ W ⊢ XV ↦ YW``."""
    x, y, v, w = attrlist(x), attrlist(y), attrlist(v), attrlist(w)
    a1 = OrderEquivalence(x, y)
    a2 = OrderDependency(v, w)
    return Proof(
        "Shift",
        (a1, a2),
        (
            _l(a1, "Given"),
            _l(a2, "Given"),
            _l(OrderDependency(x + v, y + v), "FrontReplace", [0], w=v),
            _l(OrderDependency(y + v, y + w), "Prefix", [1], z=y),
            _l(OrderDependency(x + v, y + w), "Transitivity", [2, 3]),
        ),
    )


def proof_replace(x, y, z, w) -> Proof:
    """Theorem 6 (Replace): ``X ↔ Y ⊢ ZXW ↔ ZYW``."""
    x, y, z, w = attrlist(x), attrlist(y), attrlist(z), attrlist(w)
    a1 = OrderEquivalence(x, y)
    return Proof(
        "Replace",
        (a1,),
        (
            _l(a1, "Given"),                                                   # 0
            _l(OrderDependency(x, y), "EquivLeft", [0]),                       # 1
            _l(OrderDependency(y, x), "EquivRight", [0]),                      # 2
            _l(OrderDependency(z + x, z + y), "Prefix", [1], z=z),             # 3
            _l(OrderDependency(z + y, z + x), "Prefix", [2], z=z),             # 4
            _l(OrderEquivalence(z + x, z + y), "EquivIntro", [3, 4]),          # 5
            _l(OrderDependency(z + x + w, z + y + w), "FrontReplace", [5], w=w),  # 6
            _l(OrderEquivalence(z + y, z + x), "EquivIntro", [4, 3]),          # 7
            _l(OrderDependency(z + y + w, z + x + w), "FrontReplace", [7], w=w),  # 8
            _l(OrderEquivalence(z + x + w, z + y + w), "EquivIntro", [6, 8]),  # 9
        ),
    )


def proof_eliminate(x, y, w, v, u) -> Proof:
    """Theorem 7 (Eliminate): ``X ↦ Y ⊢ WXVYU ↔ WXVU``."""
    x, y = attrlist(x), attrlist(y)
    w, v, u = attrlist(w), attrlist(v), attrlist(u)
    a1 = OrderDependency(x, y)
    return Proof(
        "Eliminate",
        (a1,),
        (
            _l(a1, "Given"),                                                     # 0
            _l(OrderEquivalence(x, y + x), "Suffix", [0]),                       # 1
            _l(
                OrderEquivalence(w + x + v + y + u, w + y + x + v + y + u),
                "Replace", [1], z=w, w=v + y + u,
            ),                                                                   # 2
            _l(
                OrderEquivalence(w + y + x + v + y + u, w + y + x + v + u),
                "Normalization", [], w=w, x=y, y=x + v, v=u,
            ),                                                                   # 3
            _l(
                OrderEquivalence(w + x + v + y + u, w + y + x + v + u),
                "EquivTrans", [2, 3],
            ),                                                                   # 4
            _l(
                OrderEquivalence(w + x + v + u, w + y + x + v + u),
                "Replace", [1], z=w, w=v + u,
            ),                                                                   # 5
            _l(
                OrderEquivalence(w + x + v + y + u, w + x + v + u),
                "EquivTrans", [4, 5],
            ),                                                                   # 6
        ),
    )


def proof_left_eliminate(x, y, z, w) -> Proof:
    """Theorem 8 (Left Eliminate): ``X ↦ Y ⊢ ZYXW ↔ ZXW``.

    Exactly the paper's two-line proof: Suffix then Replace.
    """
    x, y, z, w = attrlist(x), attrlist(y), attrlist(z), attrlist(w)
    a1 = OrderDependency(x, y)
    return Proof(
        "LeftEliminate",
        (a1,),
        (
            _l(a1, "Given"),
            _l(OrderEquivalence(x, y + x), "Suffix", [0]),
            _l(
                OrderEquivalence(z + y + x + w, z + x + w),
                "Replace", [1], z=z, w=w,
            ),
        ),
    )


def proof_drop(x, v, u, t) -> Proof:
    """Theorem 9 (Drop): ``X ↦ VUT, V ↦ U ⊢ X ↦ VT``."""
    x, v, u, t = attrlist(x), attrlist(v), attrlist(u), attrlist(t)
    a1 = OrderDependency(x, v + u + t)
    a2 = OrderDependency(v, u)
    return Proof(
        "Drop",
        (a1, a2),
        (
            _l(a1, "Given"),
            _l(a2, "Given"),
            _l(
                OrderEquivalence(v + u + t, v + t),
                "Eliminate", [1], w=EMPTY, v=EMPTY, u=t,
            ),
            _l(OrderDependency(v + u + t, v + t), "EquivLeft", [2]),
            _l(OrderDependency(x, v + t), "Transitivity", [0, 3]),
        ),
    )


def proof_path(x, u, v, t) -> Proof:
    """Theorem 10 (Path): ``X ↦ UT, U ↦ V ⊢ X ↦ UVT``."""
    x, u, v, t = attrlist(x), attrlist(u), attrlist(v), attrlist(t)
    a1 = OrderDependency(x, u + t)
    a2 = OrderDependency(u, v)
    return Proof(
        "Path",
        (a1, a2),
        (
            _l(a1, "Given"),
            _l(a2, "Given"),
            _l(
                OrderEquivalence(u + v + t, u + t),
                "Eliminate", [1], w=EMPTY, v=EMPTY, u=t,
            ),
            _l(OrderDependency(u + t, u + v + t), "EquivRight", [2]),
            _l(OrderDependency(x, u + v + t), "Transitivity", [0, 3]),
        ),
    )


def proof_fd_facet(x, y) -> Proof:
    """Theorem 15 (⇒, FD side): ``X ↦ Y ⊢ X ↦ XY``."""
    x, y = attrlist(x), attrlist(y)
    a1 = OrderDependency(x, y)
    return Proof(
        "FDFacet",
        (a1,),
        (
            _l(a1, "Given"),
            _l(OrderDependency(x, x), "Reflexivity", [], x=x, y=EMPTY),
            _l(OrderDependency(x, x + y), "Union", [1, 0]),
        ),
    )


def proof_compat_facet(x, y) -> Proof:
    """Theorem 15 (⇒, compatibility side): ``X ↦ Y ⊢ X ~ Y``."""
    x, y = attrlist(x), attrlist(y)
    a1 = OrderDependency(x, y)
    return Proof(
        "CompatFacet",
        (a1,),
        (
            _l(a1, "Given"),                                                   # 0
            _l(OrderEquivalence(x, y + x), "Suffix", [0]),                     # 1
            _l(
                OrderEquivalence(x + y, y + x + y),
                "Replace", [1], z=EMPTY, w=y,
            ),                                                                 # 2
            _l(
                OrderEquivalence(y + x + y, y + x),
                "Normalization", [], w=EMPTY, x=y, y=x, v=EMPTY,
            ),                                                                 # 3
            _l(OrderEquivalence(x + y, y + x), "EquivTrans", [2, 3]),          # 4
            _l(OrderCompatibility(x, y), "CompatIntro", [4], x=x, y=y),        # 5
        ),
    )


def proof_compose(x, y) -> Proof:
    """Theorem 15 (⇐): ``X ↦ XY, X ~ Y ⊢ X ↦ Y``."""
    x, y = attrlist(x), attrlist(y)
    a1 = OrderDependency(x, x + y)
    a2 = OrderCompatibility(x, y)
    return Proof(
        "Compose",
        (a1, a2),
        (
            _l(a1, "Given"),
            _l(a2, "Given"),
            _l(OrderEquivalence(x + y, y + x), "CompatElim", [1]),
            _l(OrderDependency(x + y, y + x), "EquivLeft", [2]),
            _l(OrderDependency(x, y + x), "Transitivity", [0, 3]),
            _l(OrderDependency(y + x, y), "Reflexivity", [], x=y, y=x),
            _l(OrderDependency(x, y), "Transitivity", [4, 5]),
        ),
    )


#: name -> (builder, parameter names).  Builders take attribute-list specs.
PROOF_BUILDERS: Dict[str, Tuple[Callable, Tuple[str, ...]]] = {
    "Union": (proof_union, ("x", "y", "z")),
    "Augmentation": (proof_augmentation, ("x", "y", "z")),
    "Decomposition": (proof_decomposition, ("x", "y", "z")),
    "FrontReplace": (proof_front_replace, ("x", "y", "w")),
    "Shift": (proof_shift, ("x", "y", "v", "w")),
    "Replace": (proof_replace, ("x", "y", "z", "w")),
    "Eliminate": (proof_eliminate, ("x", "y", "w", "v", "u")),
    "LeftEliminate": (proof_left_eliminate, ("x", "y", "z", "w")),
    "Drop": (proof_drop, ("x", "v", "u", "t")),
    "Path": (proof_path, ("x", "u", "v", "t")),
    "FDFacet": (proof_fd_facet, ("x", "y")),
    "CompatFacet": (proof_compat_facet, ("x", "y")),
    "Compose": (proof_compose, ("x", "y")),
}

#: Stratification: a proof may cite theorems occurring strictly earlier.
DERIVATION_ORDER: Tuple[str, ...] = (
    "Union",
    "Augmentation",
    "Decomposition",
    "FrontReplace",
    "Shift",
    "Replace",
    "Eliminate",
    "LeftEliminate",
    "Drop",
    "Path",
    "FDFacet",
    "CompatFacet",
    "Compose",
)


def build_proof(name: str, **lists) -> Proof:
    """Instantiate a library proof at the given attribute lists."""
    builder, parameters = PROOF_BUILDERS[name]
    return builder(*(lists[p] for p in parameters))

"""Axiomatic proof search: derive ODs from premises with named rules.

The semantic oracle (:mod:`repro.core.inference`) already *decides*
implication exactly.  This module complements it with a forward-chaining
**proof search** that, when it succeeds, returns an explicit
:class:`~repro.core.proofs.Proof` object replayable through the kernel —
the "efficient theorem prover" the paper lists as future work, in its
certificate-producing form.

The search is sound and bounded (list length and statement-count budgets),
hence deliberately incomplete; :func:`decide` combines both worlds and always
returns a definitive verdict:

* implied + proof found → ``Verdict(implied=True, proof=...)``
* implied, search exhausted → ``Verdict(implied=True, proof=None)``
* not implied → ``Verdict(implied=False, counterexample=<two-row relation>)``
"""
from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .attrs import AttrList
from .dependency import (
    OrderDependency,
    OrderEquivalence,
    Statement,
    expand_all,
    to_ods,
)
from .inference import ODTheory
from .proofs import Proof, ProofLine
from .relation import Relation

__all__ = ["Verdict", "prove", "decide"]

_Key = Tuple[tuple, tuple]


def _key(dependency: OrderDependency) -> _Key:
    return (tuple(dependency.lhs), tuple(dependency.rhs))


@dataclass
class Verdict:
    """Outcome of :func:`decide`."""

    implied: bool
    proof: Optional[Proof] = None
    counterexample: Optional[Relation] = None


@dataclass
class _Derivation:
    dependency: OrderDependency
    rule: str
    premises: Tuple[_Key, ...]
    params: Dict


class _SearchState:
    """Known ODs with provenance, supporting proof reconstruction."""

    def __init__(self) -> None:
        self.known: Dict[_Key, _Derivation] = {}
        self.frontier: List[OrderDependency] = []

    def add(
        self,
        dependency: OrderDependency,
        rule: str,
        premises: Tuple[_Key, ...] = (),
        **params,
    ) -> bool:
        key = _key(dependency)
        if key in self.known:
            return False
        self.known[key] = _Derivation(dependency, rule, premises, params)
        self.frontier.append(dependency)
        return True


def prove(
    premises: Iterable[Statement],
    goal: Statement,
    max_len: int = 4,
    max_statements: int = 30000,
) -> Optional[Proof]:
    """Search for a derivation of ``goal`` from ``premises``.

    Works over ODs with duplicate-free lists of bounded length; applies
    Reflexivity, Prefix (by one attribute), Suffix, Transitivity and Union
    exhaustively until the goal's component ODs are all derived or the
    budget runs out.  Returns a kernel-checkable :class:`Proof` or ``None``.
    """
    premise_ods = expand_all(premises)
    goal_ods = to_ods(goal)
    attributes = sorted(
        set().union(*(d.attributes for d in premise_ods + goal_ods))
        if premise_ods + goal_ods
        else set()
    )
    goal_keys = {_key(d.normalized()) for d in goal_ods}

    state = _SearchState()
    for dependency in premise_ods:
        state.add(dependency.normalized(), "Given")
    # Seed goal-directed Reflexivity instances so premise-free goals (and
    # goals mentioning lists absent from the premises) are reachable.
    for dependency in goal_ods:
        for source in (dependency.lhs.normalized(), dependency.rhs.normalized()):
            for split in range(len(source) + 1):
                head, tail = source[:split], source[split:]
                state.add(
                    OrderDependency(source, head), "Reflexivity", (), x=head, y=tail
                )

    def saturated() -> bool:
        return goal_keys <= set(state.known)

    def emit(dependency, rule, premise_keys, **params) -> None:
        normalized = dependency.normalized()
        if len(normalized.lhs) > max_len or len(normalized.rhs) > max_len:
            return
        if _key(normalized) != _key(dependency):
            # Record the raw result, then its normalized image via the
            # Normalize macro, so the replayed proof stays kernel-valid.
            if len(dependency.lhs) <= max_len + 1 and len(dependency.rhs) <= max_len + 1:
                if state.add(dependency, rule, premise_keys, **params):
                    state.add(normalized, "Normalize", (_key(dependency),))
            return
        state.add(dependency, rule, premise_keys, **params)

    cursor = 0
    while cursor < len(state.frontier) and len(state.known) < max_statements:
        if saturated():
            break
        current = state.frontier[cursor]
        cursor += 1
        current_key = _key(current)

        # Reflexivity instances over lists appearing in the statement.
        for source in (current.lhs, current.rhs):
            for split in range(len(source) + 1):
                head, tail = source[:split], source[split:]
                emit(OrderDependency(source, head), "Reflexivity", (), x=head, y=tail)

        # Suffix: X |-> Y gives X <-> YX.
        forward = OrderDependency(current.lhs, current.rhs + current.lhs)
        backward = OrderDependency(current.rhs + current.lhs, current.lhs)
        emit(forward, "SuffixLeft", (current_key,))
        emit(backward, "SuffixRight", (current_key,))

        # Prefix by a single attribute.
        for attribute in attributes:
            z = AttrList([attribute])
            emit(
                OrderDependency(z + current.lhs, z + current.rhs),
                "Prefix",
                (current_key,),
                z=z,
            )

        # Transitivity and Union against everything known so far.
        for other_key, derivation in list(state.known.items()):
            other = derivation.dependency
            if tuple(current.rhs) == tuple(other.lhs):
                emit(
                    OrderDependency(current.lhs, other.rhs),
                    "Transitivity",
                    (current_key, other_key),
                )
            if tuple(other.rhs) == tuple(current.lhs):
                emit(
                    OrderDependency(other.lhs, current.rhs),
                    "Transitivity",
                    (other_key, current_key),
                )
            if tuple(current.lhs) == tuple(other.lhs):
                emit(
                    OrderDependency(current.lhs, current.rhs + other.rhs),
                    "Union",
                    (current_key, other_key),
                )

    if not saturated():
        return None
    return _reconstruct(premises, goal, goal_ods, state)


def _reconstruct(premises, goal, goal_ods, state: _SearchState) -> Proof:
    """Rebuild a linear proof from the derivations reachable from the goal."""
    order: List[_Key] = []
    seen: set = set()

    def visit(key: _Key) -> None:
        if key in seen:
            return
        seen.add(key)
        for premise in state.known[key].premises:
            visit(premise)
        order.append(key)

    for dependency in goal_ods:
        visit(_key(dependency.normalized()))

    index = {key: i for i, key in enumerate(order)}
    lines: List[ProofLine] = []
    for key in order:
        derivation = state.known[key]
        rule = derivation.rule
        premise_ids = tuple(index[p] for p in derivation.premises)
        if rule in ("SuffixLeft", "SuffixRight"):
            # Expand the macro: Suffix derives the equivalence, then a
            # structural projection picks the direction.
            source = state.known[derivation.premises[0]].dependency
            equivalence = OrderEquivalence(source.lhs, source.rhs + source.lhs)
            lines.append(ProofLine(equivalence, "Suffix", premise_ids))
            projector = "EquivLeft" if rule == "SuffixLeft" else "EquivRight"
            lines.append(
                ProofLine(derivation.dependency, projector, (len(lines) - 1,))
            )
            index[key] = len(lines) - 1
            continue
        lines.append(
            ProofLine(derivation.dependency, rule, premise_ids, derivation.params)
        )
        index[key] = len(lines) - 1

    # Re-point premise references that shifted due to macro expansion.
    fixed: List[ProofLine] = []
    for line in lines:
        fixed.append(line)
    return Proof(f"derivation of {goal}", tuple(premises), tuple(fixed))


def decide(
    premises: Iterable[Statement],
    goal: Statement,
    max_len: int = 4,
    max_statements: int = 30000,
) -> Verdict:
    """Oracle verdict plus, when implied, a best-effort proof object."""
    theory = ODTheory(tuple(premises))
    if not theory.implies(goal):
        return Verdict(False, counterexample=theory.counterexample(goal))
    proof = prove(premises, goal, max_len=max_len, max_statements=max_statements)
    return Verdict(True, proof=proof)

"""Relation instances and the lexicographic comparison operators.

Implements Definitions 1–3 of the paper: the operators ``≼`` (precedes or
equal), ``≺`` (strictly precedes) and ``=_X`` (equal on list ``X``) between
two tuples with respect to an attribute list, under ascending lexicographic
order — the ordering used by SQL's ``ORDER BY``.

A :class:`Relation` is a named schema (an :class:`~repro.core.attrs.AttrList`
giving column order) plus a list of tuples.  Values within a column must be
mutually comparable (ints, strings, dates, ...); the operators only ever
compare values drawn from the same column.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .attrs import AttrList, attrlist

__all__ = ["Relation", "lex_cmp", "leq", "less", "equal_on"]

Row = tuple


def _cmp(a: Any, b: Any) -> int:
    """Three-way comparison of two column values."""
    if a < b:
        return -1
    if b < a:
        return 1
    return 0


@dataclass
class Relation:
    """A table instance: an attribute list (the schema) plus rows.

    The paper limits instances to sets of tuples but notes bags change
    nothing; we accept duplicate rows (they can never falsify an OD since a
    duplicated tuple compares equal on every list).
    """

    attributes: AttrList
    rows: list = field(default_factory=list)
    name: str = "r"

    def __post_init__(self) -> None:
        self.attributes = attrlist(self.attributes)
        if not self.attributes.is_normalized():
            raise ValueError("relation schema contains duplicate attributes")
        self._index = {name: i for i, name in enumerate(self.attributes)}
        self.rows = [tuple(row) for row in self.rows]
        for row in self.rows:
            if len(row) != len(self.attributes):
                raise ValueError(
                    f"row width {len(row)} does not match schema width "
                    f"{len(self.attributes)}"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(
        cls,
        attributes: "AttrList | str | Sequence[str]",
        dicts: Iterable[Mapping[str, Any]],
        name: str = "r",
    ) -> "Relation":
        """Build a relation from mappings, selecting columns in schema order."""
        attributes = attrlist(attributes)
        rows = [tuple(d[a] for a in attributes) for d in dicts]
        return cls(attributes, rows, name=name)

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def column_position(self, attribute: str) -> int:
        """The position of ``attribute`` in the schema."""
        try:
            return self._index[attribute]
        except KeyError:
            raise KeyError(f"no attribute {attribute!r} in {self.attributes!r}") from None

    def positions(self, attrs: "AttrList | str | Sequence[str]") -> tuple:
        """Column positions for each attribute in the given list."""
        return tuple(self.column_position(a) for a in attrlist(attrs))

    def project(self, row: Row, attrs: "AttrList | str | Sequence[str]") -> tuple:
        """``row[X]``: the projection of a tuple on attribute list ``X``."""
        return tuple(row[i] for i in self.positions(attrs))

    def value(self, row: Row, attribute: str) -> Any:
        """``row[A]`` for a single attribute."""
        return row[self.column_position(attribute)]

    def add(self, row: Sequence[Any]) -> None:
        """Append a row (validating its width)."""
        row = tuple(row)
        if len(row) != len(self.attributes):
            raise ValueError("row width does not match schema width")
        self.rows.append(row)

    # ------------------------------------------------------------------
    # Lexicographic operators (Definitions 1-3)
    # ------------------------------------------------------------------
    def cmp(self, s: Row, t: Row, attrs: "AttrList | str | Sequence[str]") -> int:
        """Three-way lexicographic comparison of ``s`` and ``t`` on list ``X``.

        Returns ``-1`` if ``s ≺_X t``, ``0`` if ``s =_X t``, ``1`` if
        ``t ≺_X s``.  The empty list compares everything equal.
        """
        for i in self.positions(attrs):
            sign = _cmp(s[i], t[i])
            if sign:
                return sign
        return 0

    def leq(self, s: Row, t: Row, attrs) -> bool:
        """Operator ``≼`` of Definition 1: ``s ≼_X t``."""
        return self.cmp(s, t, attrs) <= 0

    def less(self, s: Row, t: Row, attrs) -> bool:
        """Operator ``≺`` of Definition 2: ``s ≼_X t`` and not ``t ≼_X s``."""
        return self.cmp(s, t, attrs) < 0

    def equal_on(self, s: Row, t: Row, attrs) -> bool:
        """Definition 3: ``s =_X t`` (both ``≼`` directions hold)."""
        return self.cmp(s, t, attrs) == 0

    # ------------------------------------------------------------------
    # Ordering helpers
    # ------------------------------------------------------------------
    def sort_key(self, attrs) -> Callable[[Row], tuple]:
        """A sort key function realizing ``ORDER BY attrs`` ascending."""
        positions = self.positions(attrs)
        return lambda row: tuple(row[i] for i in positions)

    def sorted_by(self, attrs) -> list:
        """Rows sorted lexicographically by the given attribute list."""
        return sorted(self.rows, key=self.sort_key(attrs))

    def is_sorted_by(self, attrs) -> bool:
        """True iff the rows, in current order, satisfy ``ORDER BY attrs``."""
        positions = self.positions(attrs)
        previous = None
        for row in self.rows:
            key = tuple(row[i] for i in positions)
            if previous is not None and key < previous:
                return False
            previous = key
        return True

    def subrelation(self, rows: Iterable[Row]) -> "Relation":
        """A new relation with the same schema over the given rows."""
        return Relation(self.attributes, list(rows), name=self.name)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        header = " | ".join(f"{a:>6}" for a in self.attributes)
        lines = [header, "-" * len(header)]
        for row in self.rows:
            lines.append(" | ".join(f"{str(v):>6}" for v in row))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Module-level operator aliases (read like the paper when imported)
# ----------------------------------------------------------------------
def lex_cmp(relation: Relation, s: Row, t: Row, attrs) -> int:
    """Three-way comparison ``s`` vs ``t`` on ``attrs`` within ``relation``."""
    return relation.cmp(s, t, attrs)


def leq(relation: Relation, s: Row, t: Row, attrs) -> bool:
    """``s ≼_X t`` (Definition 1)."""
    return relation.leq(s, t, attrs)


def less(relation: Relation, s: Row, t: Row, attrs) -> bool:
    """``s ≺_X t`` (Definition 2)."""
    return relation.less(s, t, attrs)


def equal_on(relation: Relation, s: Row, t: Row, attrs) -> bool:
    """``s =_X t`` (Definition 3)."""
    return relation.equal_on(s, t, attrs)

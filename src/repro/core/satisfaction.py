"""Satisfaction of dependency statements by relation instances.

Implements Definition 4 (when an instance satisfies an OD) together with the
*split* / *swap* witness machinery of Definitions 13–14, which the paper's
completeness proof rests on (Theorem 15): an OD ``X ↦ Y`` is falsified by a
table iff the table contains

* a **split**: two tuples equal on ``X`` but not on ``Y`` (this falsifies the
  FD facet ``X ↦ XY``), or
* a **swap**: two tuples strictly ordered one way by ``X`` and the opposite
  way by ``Y`` (this falsifies the order-compatibility facet ``X ~ Y``).

Two implementations are provided: a naive O(n²) pairwise check (the
definitional oracle, used to validate the fast path in tests) and an
O(n log n) check that sorts by ``X`` once.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .dependency import (
    FunctionalDependency,
    OrderDependency,
    Statement,
    to_ods,
)
from .relation import Relation, Row

__all__ = [
    "Witness",
    "satisfies",
    "satisfies_naive",
    "find_split",
    "find_swap",
    "find_witness",
    "explain_violation",
]


@dataclass(frozen=True)
class Witness:
    """A falsifying pair of tuples, tagged with the violation kind.

    ``kind`` is ``"split"`` or ``"swap"``; ``s`` precedes-or-equals ``t`` on
    the OD's left-hand side.
    """

    kind: str
    s: Row
    t: Row

    def rows(self) -> tuple:
        return (self.s, self.t)


# ----------------------------------------------------------------------
# Witness search (Definitions 13 and 14)
# ----------------------------------------------------------------------
def find_split(relation: Relation, dependency: OrderDependency) -> Optional[Witness]:
    """Find a split w.r.t. ``X ↦ Y``: ``s =_X t`` but ``s ≠_Y t``.

    Runs in O(n log n): group rows by their ``X`` projection and require each
    group to be constant on ``Y``.
    """
    groups: dict = {}
    x, y = dependency.lhs, dependency.rhs
    x_pos = relation.positions(x)
    y_pos = relation.positions(y)
    for row in relation.rows:
        key = tuple(row[i] for i in x_pos)
        y_val = tuple(row[i] for i in y_pos)
        if key in groups:
            first_row, first_y = groups[key]
            if first_y != y_val:
                return Witness("split", first_row, row)
        else:
            groups[key] = (row, y_val)
    return None


def find_swap(relation: Relation, dependency: OrderDependency) -> Optional[Witness]:
    """Find a swap w.r.t. ``X ↦ Y``: ``s ≺_X t`` but ``t ≺_Y s``.

    Sorts by ``X`` then scans for a strict descent on ``Y`` between rows in
    distinct ``X`` groups.  Within an ``X`` group the ``Y`` values may vary
    (that is a split, not a swap), so the scan compares against the *minimum*
    ``Y`` value seen in any earlier strictly-smaller ``X`` group against the
    maximum, and vice versa; it suffices to track, per group boundary, the
    largest ``Y`` seen so far and the smallest in the current group.
    """
    x_pos = relation.positions(dependency.lhs)
    y_pos = relation.positions(dependency.rhs)
    decorated = sorted(
        (tuple(row[i] for i in x_pos), tuple(row[i] for i in y_pos), row)
        for row in relation.rows
    )
    # max Y value (with its row) over all strictly earlier X-groups
    best_y = None
    best_row = None
    group_key = None
    group_max_y = None
    group_max_row = None
    for x_val, y_val, row in decorated:
        if group_key is None or x_val != group_key:
            if group_key is not None:
                if best_y is None or group_max_y > best_y:
                    best_y, best_row = group_max_y, group_max_row
            group_key, group_max_y, group_max_row = x_val, y_val, row
        else:
            if y_val > group_max_y:
                group_max_y, group_max_row = y_val, row
        if best_y is not None and y_val < best_y:
            return Witness("swap", best_row, row)
    return None


def find_witness(relation: Relation, dependency: OrderDependency) -> Optional[Witness]:
    """Find a split or swap falsifying the OD, or ``None`` if it holds.

    By Theorem 15 these are the only two ways an OD can fail.
    """
    return find_split(relation, dependency) or find_swap(relation, dependency)


# ----------------------------------------------------------------------
# Satisfaction
# ----------------------------------------------------------------------
def _satisfies_od(relation: Relation, dependency: OrderDependency) -> bool:
    return find_witness(relation, dependency) is None


def satisfies(relation: Relation, statement: Statement) -> bool:
    """Does the instance satisfy the statement (OD, ↔, ~, or FD)?

    Equivalences and compatibilities are checked through their component ODs;
    FDs through Theorem 13's OD encoding (equivalently: no split).
    """
    if isinstance(statement, FunctionalDependency):
        return find_split(relation, statement.as_od()) is None
    return all(_satisfies_od(relation, od) for od in to_ods(statement))


def satisfies_naive(relation: Relation, statement: Statement) -> bool:
    """Definitional O(n²) satisfaction check — the test oracle.

    Quantifies over *all ordered pairs* of tuples exactly as Definition 4
    states: ``s ≼_X t`` implies ``s ≼_Y t``.
    """
    for dependency in to_ods(statement):
        x, y = dependency.lhs, dependency.rhs
        for s in relation.rows:
            for t in relation.rows:
                if relation.leq(s, t, x) and not relation.leq(s, t, y):
                    return False
    return True


def explain_violation(relation: Relation, statement: Statement) -> Optional[str]:
    """Human-readable description of why the statement fails, or ``None``.

    Useful for OD check-constraint error messages in the engine layer.
    """
    for dependency in to_ods(statement):
        witness = find_witness(relation, dependency)
        if witness is None:
            continue
        s, t = witness.rows()
        if witness.kind == "split":
            return (
                f"split falsifies {dependency}: tuples {s} and {t} agree on "
                f"{dependency.lhs!r} but differ on {dependency.rhs!r}"
            )
        return (
            f"swap falsifies {dependency}: tuple {s} precedes {t} on "
            f"{dependency.lhs!r} but follows it on {dependency.rhs!r}"
        )
    return None

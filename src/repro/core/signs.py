"""Two-row sign-vector semantics for order dependencies.

Order dependencies are *pairwise* constraints: Definition 4 quantifies over
pairs of tuples.  Consequently the class of OD-satisfying instances is closed
under subrelations, and if ``M ⊭ θ`` then some **two-row** instance satisfies
``M`` and falsifies ``θ``.

A two-row instance ``{s, t}`` interacts with lexicographic comparison only
through the per-attribute comparison *signs* ``sign(s[A] vs t[A]) ∈ {-1,0,+1}``.
This module abstracts a two-row instance into such a **sign vector** and gives
exact, cheap evaluation of any OD against it:

* ``lex_sign(σ, X)`` — the comparison of the two rows on list ``X`` is the
  sign of the first attribute of ``X`` with a non-zero sign (0 if none);
* ``od_holds(σ, X ↦ Y)`` — considering both ordered pairs ``(s,t)`` and
  ``(t,s)``, the OD holds iff ``lex_sign(σ, Y)`` is 0 or equals
  ``lex_sign(σ, X)``.

These two facts make OD implication decidable by enumerating the ``3^n`` sign
vectors over the mentioned attributes (:mod:`repro.core.inference`), matching
the problem's known coNP-hardness while staying fast at schema scale.
"""
from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, Mapping, Sequence

from .attrs import AttrList, attrlist
from .dependency import OrderDependency, Statement, to_ods
from .relation import Relation

__all__ = [
    "SignVector",
    "lex_sign",
    "od_holds",
    "statement_holds",
    "enumerate_sign_vectors",
    "materialize",
    "sign_vector_of_pair",
    "CompiledOD",
]

#: A sign vector: attribute name -> -1, 0, or +1.
SignVector = Mapping[str, int]


def lex_sign(sigma: SignVector, attrs: AttrList) -> int:
    """Comparison sign of the two rows on list ``attrs``.

    The first attribute with a non-zero sign decides; if every attribute in
    the list compares equal (or the list is empty) the result is 0.
    """
    for name in attrs:
        sign = sigma[name]
        if sign:
            return sign
    return 0


def od_holds(sigma: SignVector, dependency: OrderDependency) -> bool:
    """Does the two-row instance described by ``sigma`` satisfy the OD?

    Writing ``cX = lex_sign(σ, X)`` and ``cY = lex_sign(σ, Y)``:

    * if ``cX == 0`` both rows are equal on ``X`` so ``s ≼_X t`` and
      ``t ≼_X s``; the OD then demands equality on ``Y``, i.e. ``cY == 0``;
    * if ``cX != 0`` only one ordered pair triggers the implication and the
      OD demands ``cY ∈ {0, cX}``.
    """
    c_lhs = lex_sign(sigma, dependency.lhs)
    c_rhs = lex_sign(sigma, dependency.rhs)
    if c_lhs == 0:
        return c_rhs == 0
    return c_rhs == 0 or c_rhs == c_lhs


def statement_holds(sigma: SignVector, statement: Statement) -> bool:
    """Does the two-row instance satisfy the statement (OD, ↔, ~, FD)?"""
    return all(od_holds(sigma, dependency) for dependency in to_ods(statement))


def enumerate_sign_vectors(attributes: Sequence[str]) -> Iterator[Dict[str, int]]:
    """Yield every sign vector over the given attributes (``3^n`` of them)."""
    names = list(attributes)
    for combo in itertools.product((-1, 0, 1), repeat=len(names)):
        yield dict(zip(names, combo))


def materialize(
    sigma: SignVector, attributes: "AttrList | Sequence[str]", name: str = "witness"
) -> Relation:
    """Build a concrete two-row relation realizing the sign vector.

    Row ``s`` holds the sign itself and row ``t`` holds 0 in every column,
    so that ``sign(s[A] vs t[A]) = sign(σ[A] vs 0) = σ[A]`` exactly.
    """
    attributes = attrlist(attributes)
    s = tuple(sigma[a] for a in attributes)
    t = tuple(0 for _ in attributes)
    return Relation(attributes, [s, t], name=name)


def sign_vector_of_pair(relation: Relation, s, t) -> Dict[str, int]:
    """The sign vector abstracting the ordered pair ``(s, t)`` of rows."""
    out: Dict[str, int] = {}
    for attribute in relation.attributes:
        i = relation.column_position(attribute)
        if s[i] < t[i]:
            out[attribute] = -1
        elif t[i] < s[i]:
            out[attribute] = 1
        else:
            out[attribute] = 0
    return out


class CompiledOD:
    """An OD pre-resolved to integer positions for tight inner loops.

    The implication oracle evaluates thousands to millions of sign vectors;
    resolving attribute names to positions once and scanning plain tuples
    keeps that loop allocation-free.
    """

    __slots__ = ("lhs_positions", "rhs_positions", "source")

    def __init__(self, dependency: OrderDependency, index: Mapping[str, int]) -> None:
        self.lhs_positions = tuple(index[a] for a in dependency.lhs)
        self.rhs_positions = tuple(index[a] for a in dependency.rhs)
        self.source = dependency

    def holds(self, signs: Sequence[int]) -> bool:
        """Evaluate against a sign tuple aligned with the compile-time index."""
        c_lhs = 0
        for position in self.lhs_positions:
            value = signs[position]
            if value:
                c_lhs = value
                break
        c_rhs = 0
        for position in self.rhs_positions:
            value = signs[position]
            if value:
                c_rhs = value
                break
        if c_lhs == 0:
            return c_rhs == 0
        return c_rhs == 0 or c_rhs == c_lhs


def compile_ods(
    statements: Iterable[Statement], index: Mapping[str, int]
) -> tuple:
    """Compile every component OD of the statements against an index."""
    compiled = []
    for statement in statements:
        for dependency in to_ods(statement):
            compiled.append(CompiledOD(dependency, index))
    return tuple(compiled)

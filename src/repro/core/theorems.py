"""Derived inference rules: the paper's Theorems 2–15 as checkable rules.

Each theorem is a constructor in the style of :mod:`repro.core.axioms`: it
validates its premises against the rule schema and builds the conclusion.
The registry :data:`THEOREMS` lets proof lines cite theorems by name; every
theorem that admits a compact derivation also ships an explicit axiom-level
proof in :mod:`repro.core.proofs_library`, replayed by the kernel in tests.

Statement fidelity note.  The source text of the paper available to this
reproduction is OCR-garbled in the statements of Shift (Theorem 4) and Drop
(Theorem 9).  Both are reconstructed here in forms that (a) support every
use the paper makes of them (the Replace/Eliminate derivations, the
Permutation proof, the Lemma 15 bookkeeping) and (b) are verified sound
against the exact semantic oracle by exhaustive sign-vector checking in the
test suite:

* **Shift**: ``X ↔ Y, V ↦ W ⊢ XV ↦ YW`` (concatenation monotonicity).
* **Drop**: ``X ↦ VUT, V ↦ U ⊢ X ↦ VT`` (an ordered middle segment drops).

All other statements are as in the paper:

=====================  ==========================================================
Thm 2  Union           ``X ↦ Y, X ↦ Z ⊢ X ↦ YZ``
Thm 3  Augmentation    ``X ↦ Y ⊢ XZ ↦ Y``
Thm 4  Shift           ``X ↔ Y, V ↦ W ⊢ XV ↦ YW``
Thm 5  Decomposition   ``X ↦ YZ ⊢ X ↦ Y``
Thm 6  Replace         ``X ↔ Y ⊢ ZXW ↔ ZYW``
Thm 7  Eliminate       ``X ↦ Y ⊢ WXVYU ↔ WXVU``
Thm 8  Left Eliminate  ``X ↦ Y ⊢ ZYXW ↔ ZXW``
Thm 9  Drop            ``X ↦ VUT, V ↦ U ⊢ X ↦ VT``
Thm 10 Path            ``X ↦ UT, U ↦ V ⊢ X ↦ UVT``
Thm 11 Partition       ``Z ↦ X, Z ↦ Y, set(X)=set(Y) ⊢ X ↔ Y``
Thm 12 Downward Cl.    ``X ~ YZ ⊢ X ~ Y``
Thm 14 Permutation     ``X ↦ XY ⊢ X' ↦ X'Y'``
Thm 15 Characteriz.    ``X ↦ Y  ⟺  X ↦ XY  and  X ~ Y``
=====================  ==========================================================

(The FrontReplace lemma ``X ↔ Y ⊢ XW ↦ YW`` is the workhorse behind Shift
and Replace; Theorem 13, the FD correspondence, lives in
:mod:`repro.fd.bridge` since it crosses into set-based dependencies.)
"""
from __future__ import annotations

from typing import Callable, Dict

from .attrs import AttrList, attrlist
from .axioms import InvalidRuleApplication, canon
from .dependency import (
    OrderCompatibility,
    OrderDependency,
    OrderEquivalence,
    Statement,
)

__all__ = [
    "union",
    "augmentation",
    "front_replace",
    "shift",
    "decomposition",
    "replace",
    "eliminate",
    "left_eliminate",
    "drop",
    "path",
    "partition",
    "downward_closure",
    "permutation",
    "compose",
    "fd_facet",
    "compat_facet",
    "THEOREMS",
]


def _od(statement: Statement, rule: str) -> OrderDependency:
    if not isinstance(statement, OrderDependency):
        raise InvalidRuleApplication(f"{rule} expects an OD premise, got {statement}")
    return statement


def _equiv(statement: Statement, rule: str) -> OrderEquivalence:
    if not isinstance(statement, OrderEquivalence):
        raise InvalidRuleApplication(
            f"{rule} expects an equivalence premise, got {statement}"
        )
    return statement


def _compat(statement: Statement, rule: str) -> OrderCompatibility:
    if not isinstance(statement, OrderCompatibility):
        raise InvalidRuleApplication(
            f"{rule} expects a compatibility premise, got {statement}"
        )
    return statement


# ----------------------------------------------------------------------
# Theorem 2 — Union
# ----------------------------------------------------------------------
def union(first: Statement, second: Statement) -> OrderDependency:
    """``X ↦ Y, X ↦ Z ⊢ X ↦ YZ``."""
    od1, od2 = _od(first, "Union"), _od(second, "Union")
    if tuple(od1.lhs) != tuple(od2.lhs):
        raise InvalidRuleApplication("Union: left-hand sides differ")
    return OrderDependency(od1.lhs, od1.rhs + od2.rhs)


# ----------------------------------------------------------------------
# Theorem 3 — Augmentation
# ----------------------------------------------------------------------
def augmentation(premise: Statement, z) -> OrderDependency:
    """``X ↦ Y ⊢ XZ ↦ Y``: extra order on the left never hurts."""
    dependency = _od(premise, "Augmentation")
    return OrderDependency(dependency.lhs + attrlist(z), dependency.rhs)


# ----------------------------------------------------------------------
# FrontReplace lemma (used by Shift and Replace)
# ----------------------------------------------------------------------
def front_replace(premise: Statement, w) -> OrderDependency:
    """``X ↔ Y ⊢ XW ↦ YW``: equivalent lists interchange as prefixes."""
    equivalence = _equiv(premise, "FrontReplace")
    w = attrlist(w)
    return OrderDependency(equivalence.lhs + w, equivalence.rhs + w)


# ----------------------------------------------------------------------
# Theorem 4 — Shift (reconstructed; see module docstring)
# ----------------------------------------------------------------------
def shift(first: Statement, second: Statement) -> OrderDependency:
    """``X ↔ Y, V ↦ W ⊢ XV ↦ YW``: concatenation is monotone."""
    equivalence = _equiv(first, "Shift")
    dependency = _od(second, "Shift")
    return OrderDependency(
        equivalence.lhs + dependency.lhs, equivalence.rhs + dependency.rhs
    )


# ----------------------------------------------------------------------
# Theorem 5 — Decomposition
# ----------------------------------------------------------------------
def decomposition(premise: Statement, y) -> OrderDependency:
    """``X ↦ YZ ⊢ X ↦ Y`` for any prefix ``Y`` of the right-hand side."""
    dependency = _od(premise, "Decomposition")
    y = attrlist(y)
    if not y.is_prefix_of(dependency.rhs):
        raise InvalidRuleApplication(
            f"Decomposition: {y!r} is not a prefix of {dependency.rhs!r}"
        )
    return OrderDependency(dependency.lhs, y)


# ----------------------------------------------------------------------
# Theorem 6 — Replace
# ----------------------------------------------------------------------
def replace(premise: Statement, z, w) -> OrderEquivalence:
    """``X ↔ Y ⊢ ZXW ↔ ZYW``: equivalents interchange in any context."""
    equivalence = _equiv(premise, "Replace")
    z, w = attrlist(z), attrlist(w)
    return OrderEquivalence(
        z + equivalence.lhs + w, z + equivalence.rhs + w
    )


# ----------------------------------------------------------------------
# Theorem 7 — Eliminate
# ----------------------------------------------------------------------
def eliminate(premise: Statement, w, v, u) -> OrderEquivalence:
    """``X ↦ Y ⊢ WXVYU ↔ WXVU``: drop ``Y`` anywhere *after* ``X``.

    Example 1's group-by flexibility: given ``month ↦ quarter``,
    ``[year, month, quarter]`` is order-equivalent to ``[year, month]``.
    """
    dependency = _od(premise, "Eliminate")
    w, v, u = attrlist(w), attrlist(v), attrlist(u)
    x, y = dependency.lhs, dependency.rhs
    return OrderEquivalence(w + x + v + y + u, w + x + v + u)


# ----------------------------------------------------------------------
# Theorem 8 — Left Eliminate
# ----------------------------------------------------------------------
def left_eliminate(premise: Statement, z, w) -> OrderEquivalence:
    """``X ↦ Y ⊢ ZYXW ↔ ZXW``: drop ``Y`` when it *directly precedes* ``X``.

    This is the rule that justifies Example 1's order-by rewrite:
    ``[year, quarter, month]`` reduces to ``[year, month]`` given
    ``month ↦ quarter`` — note the FD alone would not license this.
    The paper stresses the adjacency requirement: ``ABD`` reduces to ``AD``
    under ``D ↦ B``, but ``ABCD`` does not (``C`` intervenes).
    """
    dependency = _od(premise, "LeftEliminate")
    z, w = attrlist(z), attrlist(w)
    x, y = dependency.lhs, dependency.rhs
    return OrderEquivalence(z + y + x + w, z + x + w)


# ----------------------------------------------------------------------
# Theorem 9 — Drop (reconstructed; see module docstring)
# ----------------------------------------------------------------------
def drop(first: Statement, second: Statement) -> OrderDependency:
    """``X ↦ VUT, V ↦ U ⊢ X ↦ VT``: an ordered middle segment drops.

    The right-hand side of premise 1 must factor as ``V ++ U ++ T`` where
    ``V ↦ U`` is premise 2.
    """
    od1, od2 = _od(first, "Drop"), _od(second, "Drop")
    v, u = od2.lhs, od2.rhs
    head = v + u
    if not head.is_prefix_of(od1.rhs):
        raise InvalidRuleApplication(
            f"Drop: {od1.rhs!r} does not start with {v!r} ++ {u!r}"
        )
    t = od1.rhs[len(head):]
    return OrderDependency(od1.lhs, v + t)


# ----------------------------------------------------------------------
# Theorem 10 — Path
# ----------------------------------------------------------------------
def path(first: Statement, second: Statement) -> OrderDependency:
    """``X ↦ UT, U ↦ V ⊢ X ↦ UVT``: insert a refinement after its source.

    Example 4: from ``[date] ↦ [year, day_of_year]`` and
    ``[year] ↦ [quarter]`` conclude ``[date] ↦ [year, quarter, day_of_year]``
    — the Figure 2 date-hierarchy compositions.
    """
    od1, od2 = _od(first, "Path"), _od(second, "Path")
    u, v = od2.lhs, od2.rhs
    if not u.is_prefix_of(od1.rhs):
        raise InvalidRuleApplication(
            f"Path: {od1.rhs!r} does not start with {u!r}"
        )
    t = od1.rhs[len(u):]
    return OrderDependency(od1.lhs, u + v + t)


# ----------------------------------------------------------------------
# Theorem 11 — Partition
# ----------------------------------------------------------------------
def partition(first: Statement, second: Statement) -> OrderEquivalence:
    """``Z ↦ X, Z ↦ Y, set(X) = set(Y) ⊢ X ↔ Y``.

    Two orderings over the same attribute set induced by a common source
    are equivalent.  The paper derives this with the Chain axiom.
    """
    od1, od2 = _od(first, "Partition"), _od(second, "Partition")
    if tuple(od1.lhs) != tuple(od2.lhs):
        raise InvalidRuleApplication("Partition: sources differ")
    if od1.rhs.attrs != od2.rhs.attrs:
        raise InvalidRuleApplication(
            f"Partition: set({od1.rhs!r}) != set({od2.rhs!r})"
        )
    return OrderEquivalence(od1.rhs, od2.rhs)


# ----------------------------------------------------------------------
# Theorem 12 — Downward Closure
# ----------------------------------------------------------------------
def downward_closure(premise: Statement, y) -> OrderCompatibility:
    """``X ~ YZ ⊢ X ~ Y``: compatibility passes to prefixes."""
    compatibility = _compat(premise, "DownwardClosure")
    y = attrlist(y)
    if not y.is_prefix_of(compatibility.rhs):
        raise InvalidRuleApplication(
            f"DownwardClosure: {y!r} is not a prefix of {compatibility.rhs!r}"
        )
    return OrderCompatibility(compatibility.lhs, y)


# ----------------------------------------------------------------------
# Theorem 14 — Permutation (of FD facets)
# ----------------------------------------------------------------------
def permutation(premise: Statement, x_perm, y_perm) -> OrderDependency:
    """``X ↦ XY ⊢ X' ↦ X'Y'`` for permutations ``X'`` of ``X``, ``Y'`` of ``Y``.

    FD-facet ODs (the Theorem 13 encodings of FDs) are insensitive to the
    ordering of their lists — the bridge that lets Armstrong's set-based
    world embed into the list-based one.
    """
    dependency = _od(premise, "Permutation")
    x = dependency.lhs
    if not x.is_prefix_of(dependency.rhs):
        raise InvalidRuleApplication(
            "Permutation applies to FD-facet ODs of the form X ↦ XY"
        )
    y = dependency.rhs[len(x):]
    x_perm, y_perm = attrlist(x_perm), attrlist(y_perm)
    if sorted(x_perm) != sorted(x) or sorted(y_perm) != sorted(y):
        raise InvalidRuleApplication(
            "Permutation: the given lists are not permutations of X and Y"
        )
    return OrderDependency(x_perm, x_perm + y_perm)


# ----------------------------------------------------------------------
# Theorem 15 — the split/swap characterization
# ----------------------------------------------------------------------
def compose(first: Statement, second: Statement) -> OrderDependency:
    """``X ↦ XY, X ~ Y ⊢ X ↦ Y`` (Theorem 15, ⇐ direction).

    An OD holds exactly when its FD facet (no splits) and its
    order-compatibility facet (no swaps) both hold.
    """
    od1 = _od(first, "Compose")
    compatibility = _compat(second, "Compose")
    x, y = compatibility.lhs, compatibility.rhs
    if canon(od1) != canon(OrderDependency(x, x + y)):
        raise InvalidRuleApplication(
            f"Compose: {od1} is not the FD facet of {compatibility}"
        )
    return OrderDependency(x, y)


def normalize_statement(premise: Statement) -> Statement:
    """Macro rule: rewrite every list to its normalized (duplicate-free) form.

    Abbreviates iterated Normalization + Replace + Transitivity; used by the
    proof search to keep its statement space canonical.
    """
    if isinstance(premise, OrderDependency):
        return premise.normalized()
    if isinstance(premise, OrderEquivalence):
        return OrderEquivalence(premise.lhs.normalized(), premise.rhs.normalized())
    if isinstance(premise, OrderCompatibility):
        return OrderCompatibility(premise.lhs.normalized(), premise.rhs.normalized())
    raise InvalidRuleApplication(f"Normalize: unsupported statement {premise}")


def fd_facet(premise: Statement) -> OrderDependency:
    """``X ↦ Y ⊢ X ↦ XY`` (Theorem 15, ⇒ FD direction)."""
    dependency = _od(premise, "FDFacet")
    return dependency.fd_facet()


def compat_facet(premise: Statement) -> OrderCompatibility:
    """``X ↦ Y ⊢ X ~ Y`` (Theorem 15, ⇒ compatibility direction)."""
    dependency = _od(premise, "CompatFacet")
    return OrderCompatibility(dependency.lhs, dependency.rhs)


#: Registry of derived rules available to proof lines.
THEOREMS: Dict[str, Callable] = {
    "Union": union,
    "Augmentation": augmentation,
    "FrontReplace": front_replace,
    "Shift": shift,
    "Decomposition": decomposition,
    "Replace": replace,
    "Eliminate": eliminate,
    "LeftEliminate": left_eliminate,
    "Drop": drop,
    "Path": path,
    "Partition": partition,
    "DownwardClosure": downward_closure,
    "Permutation": permutation,
    "Compose": compose,
    "FDFacet": fd_facet,
    "CompatFacet": compat_facet,
    "Normalize": normalize_statement,
}

"""Database design: normalization (FD-driven) and OD-aware index advice."""
from .index_advisor import (
    IndexAdvice,
    minimize_index_key,
    order_subsumes,
    recommend_key,
    subsumed_indexes,
)
from .normalize import (
    Relation3NF,
    bcnf_decompose,
    is_bcnf,
    is_lossless_binary,
    synthesize_3nf,
    violating_fds,
)

__all__ = [
    "violating_fds",
    "is_bcnf",
    "bcnf_decompose",
    "synthesize_3nf",
    "Relation3NF",
    "is_lossless_binary",
    "minimize_index_key",
    "order_subsumes",
    "subsumed_indexes",
    "recommend_key",
    "IndexAdvice",
]

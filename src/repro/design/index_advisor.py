"""OD-aware physical design advice: minimal index keys and subsumption.

The OD-specific design payoff the paper's future work gestures at (and [6]
pursued for "approximate" ODs): *ordering redundancy*.  A column in an
index key whose order is already fixed by the columns before (or directly
after) it adds width, maintenance cost and fan-out for nothing.  With a
declared OD theory, we can:

* **minimize an index key** — drop order-redundant columns while provably
  preserving the set of ORDER BYs the index can answer
  (``reduce_order_od``: the key and its reduction are order-equivalent);
* **detect subsumed indexes** — index ``I`` is order-subsumed by ``J``
  when ``J``'s key orders ``I``'s key, so every sort ``I`` provides, ``J``
  provides too;
* **recommend a key for a workload** — the shortest prefix-merged key
  covering a set of requested sort orders.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..core.attrs import AttrList
from ..core.dependency import OrderDependency, Statement
from ..core.inference import ODTheory
from ..optimizer.reduce_order import reduce_order_od

__all__ = [
    "minimize_index_key",
    "order_subsumes",
    "subsumed_indexes",
    "recommend_key",
    "IndexAdvice",
]


def minimize_index_key(
    theory: ODTheory, key: Sequence[str]
) -> Tuple[str, ...]:
    """The shortest key order-equivalent to ``key`` under the theory.

    Every ORDER BY satisfiable from the original key remains satisfiable:
    the reduction is a two-way order equivalence (ReduceOrder++ invariant,
    verified in the optimizer test suite).
    """
    return reduce_order_od(theory, key)


def order_subsumes(
    theory: ODTheory, stronger: Sequence[str], weaker: Sequence[str]
) -> bool:
    """Does a ``stronger``-keyed index provide every order the
    ``weaker``-keyed one does?  Exactly ``stronger ↦ weaker``."""
    return theory.implies(
        OrderDependency(AttrList(stronger), AttrList(weaker))
    )


@dataclass(frozen=True)
class IndexAdvice:
    """Advice for one existing index."""

    name: str
    key: Tuple[str, ...]
    minimized_key: Tuple[str, ...]
    subsumed_by: Optional[str]

    @property
    def droppable(self) -> bool:
        return self.subsumed_by is not None

    @property
    def narrowable(self) -> bool:
        return len(self.minimized_key) < len(self.key)

    def describe(self) -> str:
        if self.droppable:
            return f"{self.name}: drop (order-subsumed by {self.subsumed_by})"
        if self.narrowable:
            return (
                f"{self.name}: narrow key [{', '.join(self.key)}] -> "
                f"[{', '.join(self.minimized_key)}]"
            )
        return f"{self.name}: keep as-is"


def subsumed_indexes(
    theory: ODTheory, indexes: "dict[str, Sequence[str]]"
) -> List[IndexAdvice]:
    """Analyze a set of named index keys over one table.

    An index is flagged *subsumed* when another (non-identical) index's key
    orders it; among mutually subsuming indexes the lexicographically first
    name survives.  Every index also gets its minimized key.
    """
    advice: List[IndexAdvice] = []
    names = sorted(indexes)
    for name in names:
        key = tuple(indexes[name])
        subsumed_by = None
        for other in names:
            if other == name:
                continue
            other_key = tuple(indexes[other])
            if order_subsumes(theory, other_key, key):
                mutual = order_subsumes(theory, key, other_key)
                if mutual and name < other:
                    continue  # this one is the designated survivor
                subsumed_by = other
                break
        advice.append(
            IndexAdvice(
                name=name,
                key=key,
                minimized_key=minimize_index_key(theory, key),
                subsumed_by=subsumed_by,
            )
        )
    return advice


def recommend_key(
    theory: ODTheory, requested_orders: Iterable[Sequence[str]]
) -> Tuple[str, ...]:
    """A single index key covering every requested sort order, if one
    exists by prefix-merging; otherwise the reduced first order.

    Greedy: reduce each request, then try to arrange them along one chain
    where each is a prefix (up to order equivalence) of the next.
    Returns the chain's longest element, minimized.
    """
    reduced = [reduce_order_od(theory, order) for order in requested_orders]
    reduced = [r for r in reduced if r]
    if not reduced:
        return ()
    reduced.sort(key=len)
    chain: List[Tuple[str, ...]] = []
    for candidate in reduced:
        merged = False
        for i, existing in enumerate(chain):
            longer, shorter = (
                (candidate, existing)
                if len(candidate) >= len(existing)
                else (existing, candidate)
            )
            if order_subsumes(theory, longer, shorter):
                chain[i] = longer
                merged = True
                break
        if not merged:
            chain.append(candidate)
    best = max(chain, key=len)
    return minimize_index_key(theory, best)

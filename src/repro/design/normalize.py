"""Classical normalization: BCNF analysis/decomposition and 3NF synthesis.

The paper's future work points at database design: "the determination of
ODs might be an important part of designing databases ... used in database
normalization and denormalization".  This module supplies the classical
FD-driven design substrate (Bernstein's 3NF synthesis [2], BCNF
decomposition per Beeri–Bernstein [3]); the OD-specific design advice
(ordering redundancy in index keys) lives in
:mod:`repro.design.index_advisor`.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Set, Tuple

from ..core.dependency import FunctionalDependency
from ..fd.closure import attribute_closure, candidate_keys, is_superkey
from ..fd.cover import minimal_cover

__all__ = [
    "violating_fds",
    "is_bcnf",
    "bcnf_decompose",
    "synthesize_3nf",
    "is_lossless_binary",
]


def _project_fds(
    attributes: FrozenSet[str], fds: Sequence[FunctionalDependency]
) -> List[FunctionalDependency]:
    """The FDs implied on a sub-schema (closure-based projection).

    Exponential in the sub-schema size (inherent); fine at design scale.
    """
    import itertools

    names = sorted(attributes)
    out: List[FunctionalDependency] = []
    for size in range(0, len(names)):
        for lhs in itertools.combinations(names, size):
            closed = attribute_closure(lhs, fds) & attributes
            rhs = tuple(sorted(closed - set(lhs)))
            if rhs:
                out.append(FunctionalDependency(lhs, rhs))
    return out


def violating_fds(
    schema: Sequence[str], fds: Sequence[FunctionalDependency]
) -> List[FunctionalDependency]:
    """Non-trivial FDs whose determinant is not a superkey (BCNF offenders)."""
    out: List[FunctionalDependency] = []
    universe = set(schema)
    for dependency in fds:
        rhs_new = set(dependency.rhs) - set(dependency.lhs)
        if not rhs_new or not set(dependency.lhs) <= universe:
            continue
        if not rhs_new <= universe:
            continue
        if not is_superkey(dependency.lhs, schema, fds):
            out.append(dependency)
    return out


def is_bcnf(schema: Sequence[str], fds: Sequence[FunctionalDependency]) -> bool:
    """Is the schema in Boyce–Codd normal form under the (projected) FDs?"""
    projected = _project_fds(frozenset(schema), fds)
    return not violating_fds(schema, projected)


def bcnf_decompose(
    schema: Sequence[str], fds: Sequence[FunctionalDependency]
) -> List[FrozenSet[str]]:
    """Standard BCNF decomposition (lossless-join; not necessarily
    dependency preserving).

    Deterministic: offenders are picked in sorted order.
    """
    result: List[FrozenSet[str]] = []
    worklist: List[FrozenSet[str]] = [frozenset(schema)]
    while worklist:
        current = worklist.pop()
        projected = _project_fds(current, fds)
        offenders = sorted(
            violating_fds(sorted(current), projected),
            key=lambda dependency: (dependency.lhs, dependency.rhs),
        )
        if not offenders:
            result.append(current)
            continue
        offender = offenders[0]
        closure = attribute_closure(offender.lhs, projected) & current
        left = frozenset(closure)
        right = frozenset(set(offender.lhs) | (current - closure))
        worklist.append(left)
        worklist.append(right)
    # drop fragments subsumed by others
    final = [
        fragment
        for fragment in result
        if not any(fragment < other for other in result)
    ]
    return sorted(set(final), key=lambda fragment: sorted(fragment))


@dataclass(frozen=True)
class Relation3NF:
    """One synthesized relation: its attributes and the FDs it embeds."""

    attributes: FrozenSet[str]
    fds: Tuple[FunctionalDependency, ...]


def synthesize_3nf(
    schema: Sequence[str], fds: Sequence[FunctionalDependency]
) -> List[Relation3NF]:
    """Bernstein's 3NF synthesis: lossless *and* dependency preserving.

    Groups a minimal cover by determinant, emits one relation per group,
    and adds a key relation if no fragment contains a candidate key.
    """
    cover = minimal_cover(fds)
    groups: dict = {}
    for dependency in cover:
        groups.setdefault(dependency.lhs, []).append(dependency)
    relations: List[Relation3NF] = []
    for lhs, members in sorted(groups.items()):
        attributes = frozenset(lhs) | {
            attribute for member in members for attribute in member.rhs
        }
        relations.append(Relation3NF(attributes, tuple(members)))
    # ensure some fragment contains a key of the universal schema
    keys = candidate_keys(list(schema), list(fds))
    if keys and not any(
        any(key <= relation.attributes for relation in relations) for key in keys
    ):
        relations.append(Relation3NF(frozenset(keys[0]), ()))
    # absorb fragments contained in others
    final: List[Relation3NF] = []
    for relation in relations:
        if any(
            relation.attributes < other.attributes
            for other in relations
            if other is not relation
        ):
            continue
        final.append(relation)
    return final


def is_lossless_binary(
    schema: Sequence[str],
    first: FrozenSet[str],
    second: FrozenSet[str],
    fds: Sequence[FunctionalDependency],
) -> bool:
    """Lossless-join test for a binary split: the shared attributes must
    determine one side entirely."""
    if (first | second) != set(schema):
        return False
    shared = first & second
    closure = attribute_closure(shared, fds)
    return first <= closure or second <= closure

"""Dependency discovery from data: FDs, ODs, order compatibilities."""
from .fd_discovery import discover_constants, discover_fds
from .od_discovery import (
    DiscoveryResult,
    compose_rhs,
    discover_compatibilities,
    discover_ods,
)

__all__ = [
    "discover_fds",
    "discover_constants",
    "discover_ods",
    "discover_compatibilities",
    "compose_rhs",
    "DiscoveryResult",
]

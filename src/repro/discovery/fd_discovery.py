"""FD discovery from data: a level-wise (TANE-style) lattice search.

Finds all *minimal* functional dependencies ``X → A`` with ``|X| ≤
max_lhs`` holding in a relation instance.  Partitions are represented as
hash maps from LHS projections to the set of RHS values — O(n) per
candidate check, plenty for laptop-scale instances.
"""
from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..core.dependency import FunctionalDependency
from ..core.relation import Relation

__all__ = ["discover_fds", "discover_constants"]


def discover_constants(relation: Relation) -> FrozenSet[str]:
    """Attributes holding a single value throughout the instance."""
    out: Set[str] = set()
    for attribute in relation.attributes:
        position = relation.column_position(attribute)
        values = {row[position] for row in relation.rows}
        if len(values) <= 1:
            out.add(attribute)
    return frozenset(out)


def _fd_holds(relation: Relation, lhs: Tuple[str, ...], rhs: str) -> bool:
    lhs_positions = tuple(relation.column_position(a) for a in lhs)
    rhs_position = relation.column_position(rhs)
    seen: Dict[tuple, object] = {}
    for row in relation.rows:
        key = tuple(row[i] for i in lhs_positions)
        value = row[rhs_position]
        if key in seen:
            if seen[key] != value:
                return False
        else:
            seen[key] = value
    return True


def discover_fds(
    relation: Relation, max_lhs: int = 2
) -> List[FunctionalDependency]:
    """All minimal FDs ``X → A`` with ``|X| ≤ max_lhs`` valid in the data.

    Minimality: no proper subset of ``X`` determines ``A``.  Constants are
    reported with an empty left-hand side.  Results are deterministic
    (attributes in schema order, LHS sets level by level).
    """
    names = list(relation.attributes)
    constants = discover_constants(relation)
    found: List[FunctionalDependency] = [
        FunctionalDependency((), (attribute,)) for attribute in names
        if attribute in constants
    ]
    # determinant sets already known to determine a given rhs (for pruning)
    minimal_lhs: Dict[str, List[FrozenSet[str]]] = {
        attribute: ([frozenset()] if attribute in constants else [])
        for attribute in names
    }
    for level in range(1, max_lhs + 1):
        for lhs in itertools.combinations(names, level):
            lhs_set = frozenset(lhs)
            for rhs in names:
                if rhs in lhs_set or rhs in constants:
                    continue
                if any(smaller <= lhs_set for smaller in minimal_lhs[rhs]):
                    continue  # a subset already determines rhs
                if _fd_holds(relation, lhs, rhs):
                    minimal_lhs[rhs].append(lhs_set)
                    found.append(FunctionalDependency(lhs, (rhs,)))
    return found

"""OD discovery from data.

The paper's third future-work line ("the determination of ODs might be an
important part of designing databases") — and the seed of the follow-on
discovery literature (ORDER, FASTOD, ...).  This module implements a
lattice search for the ODs valid in an instance, exploiting Theorem 15's
factorization: ``X ↦ Y`` holds iff the FD facet ``X ↦ XY`` holds *and*
``X ~ Y`` (no swaps) — so discovery composes FD discovery with
order-compatibility discovery.

Search space control:

* left-hand sides are *lists* up to ``max_lhs`` attributes (permutations
  matter — the lattice is over lists, which is why OD discovery is
  factorially harder than FD discovery);
* minimality pruning by Augmentation: if ``X ↦ [A]`` holds, any list with
  ``X`` as a prefix also orders ``[A]`` and is skipped;
* results are single-attribute right-hand sides; :func:`compose_rhs`
  assembles maximal list RHSs for a given LHS via Union + Path.
"""
from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..core.attrs import AttrList
from ..core.dependency import (
    FunctionalDependency,
    OrderCompatibility,
    OrderDependency,
)
from ..core.relation import Relation
from ..core.satisfaction import find_swap, find_witness, satisfies
from .fd_discovery import discover_constants, discover_fds

__all__ = ["DiscoveryResult", "discover_ods", "discover_compatibilities", "compose_rhs"]


@dataclass
class DiscoveryResult:
    """Everything found in one instance."""

    constants: FrozenSet[str]
    fds: List[FunctionalDependency]
    ods: List[OrderDependency]
    compatibilities: List[OrderCompatibility]
    equivalences: List[tuple] = field(default_factory=list)

    def statements(self) -> list:
        """All discovered statements flattened (usable as an ODTheory)."""
        return list(self.fds) + list(self.ods) + list(self.compatibilities)

    def summary(self) -> str:
        return (
            f"{len(self.constants)} constants, {len(self.fds)} minimal FDs, "
            f"{len(self.ods)} minimal ODs, "
            f"{len(self.compatibilities)} pairwise compatibilities"
        )


def discover_compatibilities(relation: Relation) -> List[OrderCompatibility]:
    """All pairwise single-attribute compatibilities ``[A] ~ [B]`` valid in
    the data (no swap between A and B in the empty context)."""
    out: List[OrderCompatibility] = []
    names = list(relation.attributes)
    for a, b in itertools.combinations(names, 2):
        dependency = OrderCompatibility(AttrList([a]), AttrList([b]))
        if satisfies(relation, dependency):
            out.append(dependency)
    return out


def discover_ods(
    relation: Relation,
    max_lhs: int = 2,
    max_fd_lhs: int = 2,
) -> DiscoveryResult:
    """Discover minimal ODs ``X ↦ [A]`` (|X| ≤ max_lhs) plus FDs and OCs.

    Validity is checked directly against the instance (split *or* swap
    falsifies, Theorem 15); minimality prunes both prefix-extensions of a
    valid LHS (Augmentation) and trivial ODs (``A ∈ X``, Reflexivity).
    """
    names = list(relation.attributes)
    constants = discover_constants(relation)
    fds = discover_fds(relation, max_lhs=max_fd_lhs)
    compatibilities = discover_compatibilities(relation)

    ods: List[OrderDependency] = []
    # Empty-LHS ODs: [] |-> [A] iff A is constant.
    for attribute in names:
        if attribute in constants:
            ods.append(OrderDependency(AttrList(), AttrList([attribute])))

    # minimal valid LHS lists per target, for prefix pruning
    minimal: Dict[str, List[Tuple[str, ...]]] = {name: [] for name in names}
    non_constants = [name for name in names if name not in constants]
    for level in range(1, max_lhs + 1):
        for lhs in itertools.permutations(non_constants, level):
            for target in names:
                if target in lhs or target in constants:
                    continue
                if any(
                    lhs[: len(prefix)] == prefix for prefix in minimal[target]
                ):
                    continue  # a valid prefix already orders the target
                dependency = OrderDependency(AttrList(lhs), AttrList([target]))
                if find_witness(relation, dependency) is None:
                    minimal[target].append(lhs)
                    ods.append(dependency)

    equivalences = [
        (od_.lhs, od_.rhs)
        for od_ in ods
        if len(od_.lhs) == 1
        and satisfies(relation, OrderDependency(od_.rhs, od_.lhs))
    ]
    return DiscoveryResult(constants, fds, ods, compatibilities, equivalences)


def compose_rhs(
    relation: Relation, lhs: AttrList, candidates: Sequence[str]
) -> AttrList:
    """Greedily grow the longest list RHS the LHS orders.

    Appends each candidate attribute in turn, keeping it if
    ``lhs ↦ current ++ [candidate]`` still holds — a data-driven analogue
    of composing Union/Path conclusions.
    """
    current = AttrList()
    for candidate in candidates:
        if candidate in current:
            continue
        attempt = current + [candidate]
        if satisfies(relation, OrderDependency(lhs, attempt)):
            current = attempt
    return current

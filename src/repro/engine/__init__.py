"""Mini relational engine: storage, indexes, operators, SQL, catalog.

The substrate standing in for the paper's IBM DB2 prototype: real executable
plans whose work metrics make "this rewrite removed a sort / a join"
measurable.  See ``DESIGN.md`` §2 (S9–S10) for the substitution rationale.
"""
from .batch import DEFAULT_BATCH_SIZE, ColumnBatch
from .database import Database, QueryResult
from .index import SortedIndex
from .parallel import MergeExchange, UnionExchange, insert_exchanges
from .schema import Column, Schema
from .stats import collect_stats
from .table import ConstraintViolation, Table
from .types import DataType

__all__ = [
    "Database",
    "QueryResult",
    "Table",
    "ConstraintViolation",
    "Schema",
    "Column",
    "DataType",
    "SortedIndex",
    "collect_stats",
    "ColumnBatch",
    "DEFAULT_BATCH_SIZE",
    "MergeExchange",
    "UnionExchange",
    "insert_exchanges",
]

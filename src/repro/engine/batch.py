"""Columnar batches: the unit of vectorized execution.

The row-at-a-time iterator model charges a Python generator hop, a
metrics update, and a closure chain *per row* — at laptop scale that
interpreter overhead drowns the signal the paper's rewrites produce
(sorts and joins that never run).  A :class:`ColumnBatch` amortizes all
of it: operators move fixed-capacity chunks of column vectors, charge
:class:`~repro.engine.operators.base.Metrics` once per batch (with row
counts, so totals stay comparable with the row path), and evaluate
expressions through the compiled vectorized kernels of
:mod:`repro.engine.expr`.

Layout: one Python sequence per column (lists or the tuples ``zip``
produces — anything sliceable), all of equal length, sharing the
operator's :class:`~repro.engine.schema.Schema`.  ``rows()`` adapts a
batch back to the iterator model's tuples, which is also how the two
modes are compared bit-for-bit in the differential harness.

Ordering: a batch stream carries the same :class:`OrderSpec` guarantee
as the row stream it replaces — *within* each batch rows are in stream
order, and batches are emitted in stream order, so concatenating
``rows()`` over the stream reproduces the row path exactly.
"""
from __future__ import annotations

from itertools import chain, compress, islice
from typing import Iterable, Iterator, List, Optional, Sequence

from .schema import Schema

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "ColumnBatch",
    "batches_from_rows",
    "rows_from_batches",
]

#: Default chunk capacity.  Large enough that per-batch costs (one
#: metrics update, one generator hop, one kernel call) amortize to
#: nothing; small enough to stay cache-friendly.
DEFAULT_BATCH_SIZE = 1024


class ColumnBatch:
    """A fixed-capacity chunk of rows in column-major layout."""

    __slots__ = ("schema", "columns", "_length")

    def __init__(
        self,
        schema: Schema,
        columns: Sequence[Sequence],
        length: Optional[int] = None,
    ) -> None:
        self.schema = schema
        self.columns: List[Sequence] = list(columns)
        if length is None:
            length = len(self.columns[0]) if self.columns else 0
        self._length = length

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[tuple]) -> "ColumnBatch":
        """Transpose row tuples into a batch (``zip(*rows)`` — C speed)."""
        if rows:
            return cls(schema, list(zip(*rows)), length=len(rows))
        return cls(schema, [() for _ in schema], length=0)

    @classmethod
    def empty(cls, schema: Schema) -> "ColumnBatch":
        return cls(schema, [() for _ in schema], length=0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    # ------------------------------------------------------------------
    # Pickling (``__slots__`` classes have no ``__dict__`` to snapshot)
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Ship plain column lists + the schema — a batch holds no
        ``Table`` back-pointers, so this is exactly its data.  Column
        vectors may be lazy views (``zip`` tuples, slices); ``list()``
        normalizes them so the wire format is always plain lists."""
        return (self.schema, [list(column) for column in self.columns], self._length)

    def __setstate__(self, state):
        schema, columns, length = state
        self.schema = schema
        self.columns = columns
        self._length = length

    def column(self, reference: str) -> Sequence:
        """The vector for a (possibly unqualified) column reference."""
        return self.columns[self.schema.position(self.schema.resolve(reference))]

    def rows(self) -> Iterator[tuple]:
        """Adapt back to the iterator model: row tuples in stream order."""
        if not self.columns:
            return iter(() for _ in range(self._length))
        return zip(*self.columns)

    def to_rows(self) -> List[tuple]:
        return list(self.rows())

    # ------------------------------------------------------------------
    # Cheap structural operations
    # ------------------------------------------------------------------
    def filter(self, mask: Sequence) -> "ColumnBatch":
        """Keep rows whose mask entry is truthy (``itertools.compress``)."""
        columns = [list(compress(column, mask)) for column in self.columns]
        if columns:
            length = len(columns[0])
        else:
            length = sum(1 for keep in mask if keep)
        return ColumnBatch(self.schema, columns, length)

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        stop = min(stop, self._length)
        start = min(start, stop)
        return ColumnBatch(
            self.schema,
            [column[start:stop] for column in self.columns],
            stop - start,
        )

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """Gather rows by position (e.g. a sort permutation)."""
        return ColumnBatch(
            self.schema,
            [[column[i] for i in indices] for column in self.columns],
            len(indices),
        )

    @staticmethod
    def concat(batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Concatenate same-schema batches into one."""
        if not batches:
            raise ValueError("concat of zero batches (schema unknown)")
        first = batches[0]
        if len(batches) == 1:
            return first
        columns = [
            list(chain.from_iterable(batch.columns[i] for batch in batches))
            for i in range(len(first.columns))
        ]
        return ColumnBatch(first.schema, columns, sum(len(b) for b in batches))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnBatch({len(self.columns)} cols x {self._length} rows)"


def batches_from_rows(
    schema: Schema, rows: Iterable[tuple], batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[ColumnBatch]:
    """Chunk a row iterator into batches (the row→batch adapter)."""
    iterator = iter(rows)
    while True:
        chunk = list(islice(iterator, batch_size))
        if not chunk:
            return
        yield ColumnBatch.from_rows(schema, chunk)


def rows_from_batches(batches: Iterable[ColumnBatch]) -> Iterator[tuple]:
    """Flatten a batch stream back into row tuples (the batch→row adapter)."""
    for batch in batches:
        yield from batch.rows()

"""A simple I/O + CPU cost model for physical plans.

Calibrated in arbitrary "work units": one sequential row touch costs 1, a
random index probe costs :data:`PROBE_COST`, and a sort costs
``n · log2(n) · SORT_FACTOR`` — enough to reproduce the *shape* of the
paper's results (which plans win and roughly by how much), which is the
reproduction contract for an engine substituted for IBM DB2.
"""
from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Cost", "scan_cost", "sort_cost", "hash_cost", "probe_cost"]

#: Work units per random index probe (seek vs sequential touch).
PROBE_COST = 4.0
#: Multiplier on n·log2(n) comparisons for sorting.
SORT_FACTOR = 1.2
#: Per-row cost of inserting into a hash table (allocate + bucket append).
HASH_BUILD_FACTOR = 1.75
#: Per-row cost of probing a hash table (lookup only).  Strictly below the
#: build factor so a cost-based search puts the smaller input on the build
#: side — the asymmetry every real hash join has.
HASH_PROBE_FACTOR = 1.25


@dataclass(frozen=True)
class Cost:
    """Estimated work, split into I/O-ish and CPU-ish components."""

    io: float = 0.0
    cpu: float = 0.0

    @property
    def total(self) -> float:
        return self.io + self.cpu

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.io + other.io, self.cpu + other.cpu)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"cost(io={self.io:.1f}, cpu={self.cpu:.1f}, total={self.total:.1f})"


def scan_cost(rows: float) -> Cost:
    """Sequential scan of ``rows`` rows."""
    return Cost(io=float(rows), cpu=0.1 * rows)


def sort_cost(rows: float) -> Cost:
    """In-memory sort of ``rows`` rows."""
    if rows <= 1:
        return Cost(cpu=float(rows))
    return Cost(cpu=SORT_FACTOR * rows * math.log2(rows))


def hash_cost(build_rows: float, probe_rows: float) -> Cost:
    """Hash build + probe (building weighs more per row than probing)."""
    return Cost(
        cpu=HASH_BUILD_FACTOR * build_rows + HASH_PROBE_FACTOR * probe_rows
    )


def probe_cost(probes: float) -> Cost:
    """Random index probes."""
    return Cost(io=PROBE_COST * probes)

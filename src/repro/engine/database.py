"""The Database: catalog, constraint registry, and query entry points.

Ties the engine together: tables, sorted indexes, declared dependency
constraints (the paper's OD check constraints), statistics, and
``execute``/``explain`` entry points that delegate planning to
:mod:`repro.optimizer.planner` with optimization on or off — the switch the
benchmark harness flips to reproduce every "with vs without OD reasoning"
comparison.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dependency import Statement
from .index import SortedIndex
from .operators.base import Metrics, Operator
from .schema import Schema
from .stats import TableStats, collect_stats
from .table import Table

__all__ = ["Database", "QueryResult"]


@dataclass
class QueryResult:
    """Rows plus everything needed to compare plans."""

    columns: Tuple[str, ...]
    rows: List[tuple]
    metrics: Metrics
    plan: Operator

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def pretty(self, limit: int = 20) -> str:  # pragma: no cover - cosmetic
        header = " | ".join(self.columns)
        lines = [header, "-" * len(header)]
        for row in self.rows[:limit]:
            lines.append(" | ".join(str(value) for value in row))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows)} rows total)")
        return "\n".join(lines)


class Database:
    """An in-memory database instance."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}
        self.indexes: Dict[str, SortedIndex] = {}
        self._stats: Dict[str, TableStats] = {}

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, schema)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no table {name!r}") from None

    def create_index(
        self,
        name: str,
        table_name: str,
        key_columns: Sequence[str],
        clustered: bool = False,
    ) -> SortedIndex:
        if name in self.indexes:
            raise ValueError(f"index {name!r} already exists")
        index = SortedIndex(name, self.table(table_name), key_columns, clustered)
        self.indexes[name] = index
        return index

    def indexes_on(self, table_name: str) -> List[SortedIndex]:
        return [
            index for index in self.indexes.values()
            if index.table.name == table_name
        ]

    def declare(self, table_name: str, statement: Statement) -> None:
        """Register a dependency constraint on a table (checked on data)."""
        self.table(table_name).declare(statement)

    def constraints_on(self, table_name: str) -> List[Statement]:
        return list(self.table(table_name).constraints)

    def stats(self, table_name: str, refresh: bool = False) -> TableStats:
        """Cached table statistics (one pass on first request)."""
        if refresh or table_name not in self._stats:
            self._stats[table_name] = collect_stats(self.table(table_name))
        return self._stats[table_name]

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------
    def plan(self, sql: str, optimize: bool = True) -> Operator:
        """Parse, bind, optimize (optionally) and return the physical plan."""
        from ..optimizer.planner import Planner  # lazy: avoids import cycle

        from .logical import bind
        from .sql.parser import parse

        logical = bind(parse(sql))
        return Planner(self, optimize=optimize).plan(logical)

    def execute(self, sql: str, optimize: bool = True) -> QueryResult:
        """Run a query to completion."""
        plan = self.plan(sql, optimize=optimize)
        rows, metrics = plan.run()
        return QueryResult(plan.schema.names, rows, metrics, plan)

    def explain(self, sql: str, optimize: bool = True, verbose: bool = False) -> str:
        """The physical plan as text.

        ``verbose=True`` appends the planner's decision log — which
        sorts/joins were eliminated and how much oracle work was answered
        from the memoized result cache vs enumerated.
        """
        plan = self.plan(sql, optimize=optimize)
        text = plan.explain()
        info = getattr(plan, "plan_info", None)
        if verbose and info is not None:
            text = f"{text}\n{info.describe()}"
        return text

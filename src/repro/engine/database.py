"""The Database: catalog, constraint registry, and query entry points.

Ties the engine together: tables, sorted indexes, declared dependency
constraints (the paper's OD check constraints), statistics, and
``execute``/``explain`` entry points that delegate planning to
:mod:`repro.optimizer.planner` with optimization on or off — the switch the
benchmark harness flips to reproduce every "with vs without OD reasoning"
comparison.
"""
from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter_ns
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from collections import OrderedDict

from ..core.dependency import Statement
from ..obs import SLOW_QUERY_MS, TRACE_DEFAULT, EngineMetrics
from ..obs.tracer import Tracer
from .batch import DEFAULT_BATCH_SIZE
from .epoch import bump_epoch, current_epoch
from .errors import CancelToken, QueryError, QueryTimeout
from .index import SortedIndex
from .operators.base import Metrics, Operator
from .schema import Schema
from .stats import TableStats, collect_stats
from .table import Table

#: Stable empty mapping for fault-free/serial results' ``exchange_stats``.
_EMPTY_STATS: Mapping[str, object] = MappingProxyType({})

__all__ = ["Database", "ForeignKey", "QueryResult"]


@dataclass(frozen=True)
class ForeignKey:
    """A declared referential constraint: every ``child_columns`` tuple in
    ``child_table`` appears among ``parent_columns`` in ``parent_table``.

    Declared via :meth:`Database.declare_foreign_key` (containment checked
    at declaration) and re-verified at the current catalog epoch before
    any rewrite relies on it (:meth:`Database.verified_foreign_key`)."""

    child_table: str
    child_columns: Tuple[str, ...]
    parent_table: str
    parent_columns: Tuple[str, ...]


@dataclass
class QueryResult:
    """Rows plus everything needed to compare plans."""

    columns: Tuple[str, ...]
    rows: List[tuple]
    metrics: Metrics
    plan: Operator
    #: Vectorized-execution chunk size, ``None`` for the row path.
    batch_size: Optional[int] = None
    #: Parallel worker count, ``None`` for serial execution.
    workers: Optional[int] = None
    #: Exchange backend the parallel run drained through (``"inline"`` /
    #: ``"thread"`` / ``"process"``), ``None`` for serial execution.
    backend: Optional[str] = None
    #: Fault-tolerance accounting for this execution (summed across the
    #: plan's exchanges; zero/None on the fault-free path): partition
    #: attempts that were retried, and the deepest backend any partition
    #: degraded to (``None`` — no degradation).  Lives here and in
    #: ``exchange_stats``, never in :class:`Metrics` — recovered runs
    #: stay counter-identical to serial.
    retries: int = 0
    degraded_to: Optional[str] = None
    #: Whether this execution hit its deadline.  Always ``False`` on a
    #: returned result (a timeout raises :class:`QueryTimeout` instead);
    #: the mirror field on ``plan_info.recovery`` records timeouts for
    #: EXPLAIN post-mortems.
    timed_out: bool = False
    #: Merged per-exchange accounting for this execution, as a *stable
    #: read-only mapping* (the supported surface — digging
    #: ``exchange_stats`` out of the plan tree is deprecated): retries,
    #: degraded partitions, the deepest ``degraded_to`` rung, and the
    #: process backend's serialization totals (``chain_bytes``,
    #: ``morsel_bytes``, ``morsels``, ``rows_shipped``).  Empty for
    #: serial/fault-free-inline runs.
    exchange_stats: Mapping[str, object] = field(default_factory=lambda: _EMPTY_STATS)
    #: Wall-clock milliseconds for plan + execution (what the slow-query
    #: ring records).
    wall_ms: float = 0.0
    #: Chrome ``trace_event`` dict when the execution was traced
    #: (``trace=True`` / ``REPRO_TRACE=1``), else ``None``.  Dump with
    #: ``json.dump`` and load in ``chrome://tracing`` / Perfetto.
    trace: Optional[dict] = None

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> List[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def pretty(self, limit: int = 20) -> str:  # pragma: no cover - cosmetic
        header = " | ".join(self.columns)
        lines = [header, "-" * len(header)]
        for row in self.rows[:limit]:
            lines.append(" | ".join(str(value) for value in row))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows)} rows total)")
        return "\n".join(lines)


class Database:
    """An in-memory database instance."""

    #: Bound on the SQL-text → logical-tree memo (parse/bind fast path).
    _LOGICAL_MEMO_SIZE = 512

    def __init__(self, name: str = "db", plan_cache_capacity: int = 128) -> None:
        from ..optimizer.plan_cache import PlanCache  # lazy: avoids import cycle

        self.name = name
        self.tables: Dict[str, Table] = {}
        self.indexes: Dict[str, SortedIndex] = {}
        #: table name → (catalog epoch at collection, stats).  Epoch-keyed
        #: like the plan cache: inserts and DDL bump the epoch, so a
        #: post-mutation ``stats()`` call always recollects instead of
        #: serving row counts from before the mutation.
        self._stats: Dict[str, Tuple[int, TableStats]] = {}
        #: Whole-plan memoization: logical fingerprint + mode → physical
        #: plan, invalidated by catalog-epoch mismatch (see
        #: :mod:`repro.optimizer.plan_cache`).
        self.plan_cache = PlanCache(capacity=plan_cache_capacity)
        #: SQL text → (bound logical tree, canonical fingerprint).  Both
        #: are catalog-independent (names resolve at physical planning),
        #: so entries never go stale; the memo spares repeated templates
        #: the parse/bind/fingerprint work.
        self._logical_memo: "OrderedDict[str, object]" = OrderedDict()
        #: Declared referential constraints (see :class:`ForeignKey`) and
        #: the epoch-keyed memo of their containment re-verifications.
        self._foreign_keys: List[ForeignKey] = []
        self._fk_checks: Dict[ForeignKey, Tuple[int, bool]] = {}
        #: Cumulative query/timing counters + slow-query ring (see
        #: :mod:`repro.obs.registry`); surfaced by :meth:`stats_snapshot`.
        self._registry = EngineMetrics(SLOW_QUERY_MS)
        #: Lifetime exchange totals (monotonic, summed across executions).
        self._exchange_totals: Dict[str, int] = {"parallel_runs": 0}

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> Table:
        if name in self.tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, schema)
        self.tables[name] = table
        bump_epoch("create-table")
        return table

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no table {name!r}") from None

    def create_index(
        self,
        name: str,
        table_name: str,
        key_columns: Sequence[str],
        clustered: bool = False,
    ) -> SortedIndex:
        if name in self.indexes:
            raise ValueError(f"index {name!r} already exists")
        index = SortedIndex(name, self.table(table_name), key_columns, clustered)
        self.indexes[name] = index
        bump_epoch("create-index")
        return index

    def indexes_on(self, table_name: str) -> List[SortedIndex]:
        return [
            index for index in self.indexes.values()
            if index.table.name == table_name
        ]

    def declare(self, table_name: str, statement: Statement) -> None:
        """Register a dependency constraint on a table (checked on data)."""
        self.table(table_name).declare(statement)

    def constraints_on(self, table_name: str) -> List[Statement]:
        return list(self.table(table_name).constraints)

    def declare_foreign_key(
        self,
        child_table: str,
        child_columns: Sequence[str],
        parent_table: str,
        parent_columns: Sequence[str],
    ) -> ForeignKey:
        """Register a referential constraint, verifying containment now.

        The declaration is the *proof obligation* the rewrite pack's join
        elimination relies on (every fact row matches a dimension row);
        it is re-verified against the data at plan time through
        :meth:`verified_foreign_key`, so a later load that orphans rows
        silently disables the rewrite instead of corrupting results.
        """
        child = self.table(child_table)
        parent = self.table(parent_table)
        child_columns = tuple(child.schema.resolve(c) for c in child_columns)
        parent_columns = tuple(parent.schema.resolve(c) for c in parent_columns)
        if not child_columns or len(child_columns) != len(parent_columns):
            raise ValueError(
                "foreign key requires matching non-empty column lists"
            )
        fk = ForeignKey(child_table, child_columns, parent_table, parent_columns)
        if not self._fk_contained(fk):
            raise ValueError(
                f"foreign key violated: {child_table}({', '.join(child_columns)}) "
                f"has values missing from {parent_table}"
                f"({', '.join(parent_columns)})"
            )
        if fk not in self._foreign_keys:
            self._foreign_keys.append(fk)
        bump_epoch("declare-fk")
        return fk

    def foreign_keys_on(self, child_table: str) -> List[ForeignKey]:
        return [fk for fk in self._foreign_keys if fk.child_table == child_table]

    def _fk_contained(self, fk: ForeignKey) -> bool:
        """One O(|child| + |parent|) set-containment pass."""
        child = self.table(fk.child_table)
        parent = self.table(fk.parent_table)
        child_positions = [child.schema.position(c) for c in fk.child_columns]
        parent_positions = [parent.schema.position(c) for c in fk.parent_columns]
        parent_keys = {
            tuple(row[p] for p in parent_positions) for row in parent.rows
        }
        return all(
            tuple(row[p] for p in child_positions) in parent_keys
            for row in child.rows
        )

    def verified_foreign_key(
        self,
        child_table: str,
        child_columns: Sequence[str],
        parent_table: str,
        parent_columns: Sequence[str],
    ) -> bool:
        """Is a matching declared FK still valid on the current data?

        Matches the declared constraint by its (child, parent) column
        *pairs* regardless of order, then re-verifies containment —
        memoized per catalog epoch, so repeated plannings of one template
        pay the O(n) pass once until the next mutation.
        """
        want = frozenset(zip(child_columns, parent_columns))
        for fk in self._foreign_keys:
            if (
                fk.child_table == child_table
                and fk.parent_table == parent_table
                and frozenset(zip(fk.child_columns, fk.parent_columns)) == want
            ):
                epoch = current_epoch()
                cached = self._fk_checks.get(fk)
                if cached is None or cached[0] != epoch:
                    cached = (epoch, self._fk_contained(fk))
                    self._fk_checks[fk] = cached
                return cached[1]
        return False

    def stats(self, table_name: str, refresh: bool = False) -> TableStats:
        """Cached table statistics, invalidated by the catalog epoch.

        One collection pass per (table, epoch): any mutation — insert,
        DDL, constraint registration — bumps the shared epoch clock, so
        cardinality estimates can never be computed from pre-mutation row
        counts (the same staleness contract the plan cache honors).
        """
        epoch = current_epoch()
        entry = self._stats.get(table_name)
        if refresh or entry is None or entry[0] != epoch:
            entry = (
                epoch,
                collect_stats(
                    self.table(table_name), indexes=self.indexes_on(table_name)
                ),
            )
            self._stats[table_name] = entry
        return entry[1]

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------
    def _bind(self, sql: str):
        """Parse + bind with a bounded memo on the raw SQL text.

        Returns ``(logical tree, fingerprint)``.  The fingerprint is a
        pure function of the tree, so it is memoized alongside it — a
        warm ``plan()`` is then genuinely two dict lookups, with no tree
        walk or hashing.
        """
        entry = self._logical_memo.get(sql)
        if entry is not None:
            self._logical_memo.move_to_end(sql)
            return entry
        from ..optimizer.plan_cache import fingerprint
        from .logical import bind
        from .sql.parser import parse

        logical = bind(parse(sql))
        entry = (logical, fingerprint(logical))
        self._logical_memo[sql] = entry
        while len(self._logical_memo) > self._LOGICAL_MEMO_SIZE:
            self._logical_memo.popitem(last=False)
        return entry

    #: Backend → mode-key token (kept short for cache-key readability).
    _BACKEND_MODE_TOKENS = {"inline": "inline", "thread": "thread", "process": "proc"}

    def plan(
        self,
        sql: str,
        optimize: bool = True,
        use_cache: bool = True,
        workers: Optional[int] = None,
        join_order: str = "cost",
        backend: Optional[str] = None,
        rewrites: str = "on",
        tracer: Optional[Tracer] = None,
    ) -> Operator:
        """Parse, bind, optimize (optionally) and return the physical plan.

        With ``use_cache=True`` (the default) the plan cache is consulted
        first: the logical tree is fingerprinted and, if an entry exists
        for (fingerprint, mode) at the current catalog epoch, the memoized
        physical plan is returned without re-planning.  ``use_cache=False``
        neither reads nor fills the cache (benchmarks use it to measure
        the uncached path; its plans report ``cache_state="bypass"``).

        ``workers=K`` asks the planner to place exchange operators over
        the plan's partitionable chains (see :mod:`repro.engine.parallel`);
        ``backend=`` selects which :class:`ExchangeBackend` drains them
        (``"thread"`` when unspecified) and requires ``workers``.
        Parallel plans are cached under backend-qualified mode keys
        (``"od+w4+thread"``, ``"od+w4+proc"``), so serial and parallel
        plannings of one template — and different backends — never serve
        each other's trees (exchange operators carry their backend).

        ``join_order`` selects how multi-join queries are ordered:
        ``"cost"`` (the default) runs the cost-based search of
        :mod:`repro.optimizer.joinorder` over the query's join graph;
        ``"syntactic"`` keeps the parse order (the pre-search behaviour,
        and the baseline the differential harness compares against).
        Syntactic plans cache under a join-order-qualified mode key
        (``"od+syntactic"``), so the two orderings never serve each
        other's trees.

        ``rewrites`` switches the logical rewrite pack (eager
        aggregation, scan consolidation, FD join elimination — see
        :mod:`repro.optimizer.rewrite_pack`); ``"off"`` plans cache under
        a rewrite-qualified mode key (``"od+norw"``) so the two regimes
        never serve each other's trees.
        """
        from ..optimizer.planner import Planner  # lazy: avoids import cycle

        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if join_order not in ("cost", "syntactic"):
            raise ValueError(f"unknown join_order {join_order!r}")
        if rewrites not in ("on", "off"):
            raise ValueError(f"unknown rewrites setting {rewrites!r}")
        if backend is not None:
            if workers is None:
                raise ValueError("backend= requires workers=")
            if backend not in self._BACKEND_MODE_TOKENS:
                raise ValueError(
                    f"unknown backend {backend!r} "
                    f"(expected one of {tuple(self._BACKEND_MODE_TOKENS)})"
                )
        span = tracer.span if tracer is not None else None
        with span("parse-bind", "optimizer") if span else nullcontext():
            logical, fp = self._bind(sql)
        if not use_cache:
            plan = Planner(
                self,
                optimize=optimize,
                workers=workers,
                join_order=join_order,
                backend=backend,
                rewrites=rewrites,
                tracer=tracer,
            ).plan(logical)
            plan.plan_info.cache_state = "bypass"
            return plan

        mode = "od" if optimize else "fd"
        if join_order != "cost":
            mode = f"{mode}+{join_order}"
        if rewrites != "on":
            mode = f"{mode}+norw"
        if workers is not None:
            token = self._BACKEND_MODE_TOKENS[backend or "thread"]
            mode = f"{mode}+w{workers}+{token}"
        epoch = current_epoch()
        with span("cache-lookup", "optimizer", mode=mode) if span else nullcontext():
            entry = self.plan_cache.lookup(fp, mode, epoch)
        if entry is not None:
            info = entry.plan.plan_info  # type: ignore[attr-defined]
            info.cache_state = "hit"
            info.cache_serves = entry.serves
            return entry.plan
        plan = Planner(
            self,
            optimize=optimize,
            workers=workers,
            join_order=join_order,
            backend=backend,
            rewrites=rewrites,
            tracer=tracer,
        ).plan(logical)
        info = plan.plan_info  # type: ignore[attr-defined]
        info.fingerprint = fp
        info.epoch = epoch
        info.cache_state = "miss"
        self.plan_cache.store(fp, mode, epoch, plan)
        return plan

    def plan_cache_stats(self) -> Dict[str, object]:
        """Plan-cache counters: hits, misses, stores, evictions,
        stale_invalidations, size, capacity, hit_rate."""
        return self.plan_cache.stats()

    def stats_snapshot(self) -> Dict[str, object]:
        """One unified point-in-time reading of every engine metric.

        The counter contract (shared by every sub-registry): keys under a
        ``counters`` mapping are **monotonic** — they only grow for this
        database's lifetime, so deltas between snapshots are meaningful
        rates — while sizes, hit rates, and the slow-query list are
        **gauges**.  Sections:

        * ``engine`` — cumulative query/failure/timeout/row counters,
          average wall ms, and the slow-query ring
          (:mod:`repro.obs.registry`);
        * ``plan_cache`` — whole-plan memoization counters;
        * ``theory_cache`` — the OD-oracle theory cache: live size plus
          oracle-work gauges summed over the live theories;
        * ``exchange`` — lifetime parallel-execution totals (retries,
          degradations, process-backend serialization bytes);
        * ``logical_memo_size`` / ``epoch`` — parse-memo occupancy and
          the current catalog epoch.
        """
        from ..optimizer.context import theory_cache_stats

        return {
            "epoch": current_epoch(),
            "engine": self._registry.snapshot(),
            "plan_cache": self.plan_cache.stats(),
            "theory_cache": theory_cache_stats(),
            "exchange": dict(self._exchange_totals),
            "logical_memo_size": len(self._logical_memo),
        }

    @staticmethod
    def _resolve_batch(
        batch_size: Optional[int], workers: Optional[int]
    ) -> Optional[int]:
        """Validate and default the execution-mode arguments — shared by
        ``execute`` and ``explain`` so they can never disagree about
        which mode a (batch_size, workers) pair selects.  Parallel
        execution is batch execution: ``workers`` without a
        ``batch_size`` gets the default chunk capacity."""
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if workers is not None and batch_size is None:
            return DEFAULT_BATCH_SIZE
        return batch_size

    @staticmethod
    def _execution_desc(
        batch_size: Optional[int],
        workers: Optional[int],
        backend: Optional[str] = None,
    ) -> str:
        if workers is not None:
            return (
                f"parallel ({workers} workers, batch size {batch_size}, "
                f"{backend or 'thread'} backend)"
            )
        if batch_size is not None:
            return f"vectorized (batch size {batch_size})"
        return "row (iterator)"

    @staticmethod
    def _collect_recovery(plan: Operator) -> Dict[str, object]:
        """Merge exchange accounting over the plan's exchanges.

        Walks the physical tree for ``exchange_stats`` (set by the most
        recent batch execution) and totals every integer counter —
        ``retries``, ``degraded_partitions``, and the process backend's
        serialization accounting (``chain_bytes``, ``morsel_bytes``,
        ``morsels``, ``rows_shipped``, ``token_shipped_chains``);
        ``degraded_to`` reports the *deepest* rung any partition fell to
        (``process`` → ``thread`` → ``inline``) and ``exchanges`` counts
        the exchange operators that executed.  The merged mapping is
        what ``QueryResult.exchange_stats`` freezes.
        """
        depth = {None: 0, "thread": 1, "inline": 2}
        totals: Dict[str, object] = {
            "retries": 0,
            "degraded_partitions": 0,
            "degraded_to": None,
        }
        exchanges = 0
        stack = [plan]
        while stack:
            node = stack.pop()
            stats = getattr(node, "exchange_stats", None)
            if stats:
                exchanges += 1
                for key, value in stats.items():
                    if key == "degraded_to":
                        if depth.get(value, 0) > depth.get(totals["degraded_to"], 0):
                            totals["degraded_to"] = value
                    elif isinstance(value, int) and not isinstance(value, bool):
                        totals[key] = totals.get(key, 0) + value  # type: ignore[operator]
            # Exchanges expose their serial subtree as children(); the
            # partition clones hold no exchanges, so children() covers
            # every exchange in the tree exactly once.
            stack.extend(node.children())
        if exchanges:
            totals["exchanges"] = exchanges
        return totals

    def execute(
        self,
        sql: str,
        optimize: bool = True,
        use_cache: bool = True,
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        join_order: str = "cost",
        backend: Optional[str] = None,
        timeout_s: Optional[float] = None,
        rewrites: str = "on",
        trace: Optional[bool] = None,
    ) -> QueryResult:
        """Run a query to completion.

        ``batch_size=None`` (default) executes row-at-a-time.  Any
        positive ``batch_size`` selects the vectorized mode: operators
        stream :class:`~repro.engine.batch.ColumnBatch` chunks of that
        capacity through compiled expression kernels.  ``workers=K``
        additionally partitions the plan's partitionable chains across a
        worker pool behind order-preserving exchanges (parallel execution
        is batch execution — an unspecified ``batch_size`` defaults to
        :data:`~repro.engine.batch.DEFAULT_BATCH_SIZE`), and ``backend=``
        picks the pool: ``"thread"`` (default), ``"process"`` (true
        multicore), or ``"inline"`` (no pool — the deterministic floor).
        Results and ``Metrics`` counter totals are identical across all
        modes and backends (gated by the mode-matrix differential
        harness); only the speed differs.

        ``timeout_s`` sets a deadline: a :class:`CancelToken` rides the
        execution's ``Metrics`` and every operator loop checks it
        per-batch (per ~1k rows in row mode), so a past-deadline query
        raises :class:`~repro.engine.errors.QueryTimeout` promptly,
        producers are unblocked, and the worker pools stay healthy for
        the next query.  Worker/partition failures are retried and
        degraded transparently (see :mod:`repro.engine.parallel`); the
        result's ``retries``/``degraded_to``/``exchange_stats`` report
        what recovery ran.

        ``trace=True`` (or ``REPRO_TRACE=1`` in the environment) records
        a hierarchical span trace of the optimizer phases and every
        operator's execution — across worker pools too — and attaches it
        as a Chrome ``trace_event`` dict on ``QueryResult.trace`` (on the
        raised :class:`QueryError` for failed queries).  Tracing is
        observational only: rows and ``Metrics`` counters are
        bit-identical to an untraced run.
        """
        batch_size = self._resolve_batch(batch_size, workers)
        if trace is None:
            trace = TRACE_DEFAULT
        tracer = Tracer() if trace else None
        started = perf_counter_ns()
        token = CancelToken(timeout_s) if timeout_s is not None else None
        plan: Optional[Operator] = None
        info = None
        try:
            with tracer.span("query", "query", sql=sql) if tracer else nullcontext():
                plan = self.plan(
                    sql,
                    optimize=optimize,
                    use_cache=use_cache,
                    workers=workers,
                    join_order=join_order,
                    backend=backend,
                    rewrites=rewrites,
                    tracer=tracer,
                )
                info = getattr(plan, "plan_info", None)
                with tracer.span("execute", "execute") if tracer else nullcontext():
                    if batch_size is not None:
                        rows, metrics = plan.run_batches(
                            batch_size, token=token, tracer=tracer
                        )
                    else:
                        rows, metrics = plan.run(token=token, tracer=tracer)
        except QueryError as exc:
            wall_ns = perf_counter_ns() - started
            self._registry.record(
                sql,
                wall_ns,
                0,
                backend=(backend or "thread") if workers is not None else None,
                workers=workers,
                error=exc,
                timed_out=isinstance(exc, QueryTimeout),
            )
            if tracer is not None:
                tracer.finish()
                exc.trace = tracer.chrome()
            if info is not None and plan is not None:
                info.execution = self._execution_desc(batch_size, workers, backend)
                merged = self._collect_recovery(plan)
                self._fold_exchange_totals(merged)
                recovery = {
                    key: merged[key]
                    for key in ("retries", "degraded_partitions", "degraded_to")
                }
                recovery["timed_out"] = isinstance(exc, QueryTimeout)
                recovery["failed"] = type(exc).__name__
                info.recovery = recovery
            raise
        wall_ns = perf_counter_ns() - started
        self._registry.record(
            sql,
            wall_ns,
            len(rows),
            backend=(backend or "thread") if workers is not None else None,
            workers=workers,
        )
        merged = self._collect_recovery(plan)
        self._fold_exchange_totals(merged)
        if info is not None:
            info.execution = self._execution_desc(batch_size, workers, backend)
            if merged["retries"] or merged["degraded_partitions"]:
                info.recovery = {
                    "retries": merged["retries"],
                    "degraded_partitions": merged["degraded_partitions"],
                    "degraded_to": merged["degraded_to"],
                    "timed_out": False,
                }
            else:
                info.recovery = {}
        if tracer is not None:
            tracer.finish()
        return QueryResult(
            plan.schema.names,
            rows,
            metrics,
            plan,
            batch_size,
            workers,
            (backend or "thread") if workers is not None else None,
            retries=merged["retries"],  # type: ignore[arg-type]
            degraded_to=merged["degraded_to"],  # type: ignore[arg-type]
            timed_out=False,
            exchange_stats=(
                MappingProxyType(merged) if merged.get("exchanges") else _EMPTY_STATS
            ),
            wall_ms=wall_ns / 1e6,
            trace=tracer.chrome() if tracer is not None else None,
        )

    def _fold_exchange_totals(self, merged: Dict[str, object]) -> None:
        """Accumulate one execution's merged exchange stats into the
        database-lifetime monotonic totals (``stats_snapshot()["exchange"]``)."""
        if not merged.get("exchanges"):
            return
        self._exchange_totals["parallel_runs"] += 1
        for key, value in merged.items():
            if key == "exchanges" or not isinstance(value, int) or isinstance(value, bool):
                continue
            self._exchange_totals[key] = self._exchange_totals.get(key, 0) + value

    def explain(
        self,
        sql: str,
        optimize: bool = True,
        verbose: bool = False,
        use_cache: bool = True,
        batch_size: Optional[int] = None,
        workers: Optional[int] = None,
        join_order: str = "cost",
        backend: Optional[str] = None,
        rewrites: str = "on",
        analyze: bool = False,
    ) -> str:
        """The physical plan as text.

        With ``workers=K`` the tree shows the placed exchange operators
        (merge or union) over their partitioned chains.  ``verbose=True``
        appends the planner's decision log — which sorts/joins were
        eliminated, the join order the cost-based search chose (with its
        estimate and the syntactic-order estimate it beat), the plan's
        estimated rows/cost, each exchange's kind / partition count /
        ordering keys, how much oracle work was answered from the
        memoized result cache vs enumerated, whether this plan was a
        plan-cache hit, miss, or bypass (with its fingerprint prefix and
        catalog epoch), and which execution mode the given
        ``batch_size``/``workers`` select (row iterators, vectorized
        batches, or parallel batches).

        ``analyze=True`` *runs the query* under a tracer and annotates
        every node with its measured actuals — rows, batches, wall time —
        plus the planner's cardinality estimate and the Q-error between
        them (``max(est/actual, actual/est)``), the engine auditing its
        own statistics subsystem.  The per-node summary also lands on
        ``plan_info.analyze`` for programmatic use.
        """
        batch_size = self._resolve_batch(batch_size, workers)
        plan = self.plan(
            sql,
            optimize=optimize,
            use_cache=use_cache,
            workers=workers,
            join_order=join_order,
            backend=backend,
            rewrites=rewrites,
        )
        info = getattr(plan, "plan_info", None)
        if analyze:
            from ..obs.analyze import annotate_plan

            tracer = Tracer()
            started = perf_counter_ns()
            with tracer.span("query", "query", sql=sql):
                with tracer.span("execute", "execute"):
                    if batch_size is not None:
                        plan.run_batches(batch_size, tracer=tracer)
                    else:
                        plan.run(tracer=tracer)
            wall_ns = perf_counter_ns() - started
            tracer.finish()
            text, summary = annotate_plan(self, plan, tracer.spans)
            if info is not None:
                q_errors = [
                    entry["q_error"] for entry in summary if "q_error" in entry
                ]
                info.analyze = {
                    "nodes": len(summary),
                    "wall_ms": wall_ns / 1e6,
                    "summary": summary,
                }
                if q_errors:
                    info.analyze["max_q_error"] = max(q_errors)
        else:
            text = plan.explain()
        if verbose and info is not None:
            info.execution = self._execution_desc(batch_size, workers, backend)
            text = f"{text}\n{info.describe()}"
        return text

"""The catalog epoch: one monotone counter behind every optimizer cache.

Whole-plan memoization (and the interned query-scoped theories backing it)
is only sound while the facts planning consumed stay true.  In this engine
those facts are:

* the **catalog** — which tables and indexes exist (index choice is baked
  into a physical plan);
* the **constraint registry** — declared ODs/FDs drive sort elimination,
  join elimination, and stream-aggregate selection;
* the **data**, in one narrow but important way: the Section 2.3 date
  rewrite translates a natural-date range into *surrogate-key bounds read
  from the dimension's rows*, so a cached plan embeds data-derived
  literals.

Every mutation of any of the three bumps the global epoch.  Caches stamp
entries with the epoch current when they were filled and treat a stamp
mismatch as a miss — so the plan cache and the theory cache invalidate
from the *same* clock and can never disagree about what is stale.

The counter is deliberately global (not per-database): cross-database
bumps only cost a spurious re-plan, never a stale answer, and a single
clock keeps the invalidation contract trivial to reason about.
"""
from __future__ import annotations

from typing import Dict

__all__ = ["current_epoch", "bump_epoch", "epoch_log", "reset_epoch_log"]

_epoch: int = 0
#: Per-reason bump counts, for tests and diagnostics.
_bumps: Dict[str, int] = {}


def current_epoch() -> int:
    """The current catalog/constraint/data epoch."""
    return _epoch


def bump_epoch(reason: str = "unspecified") -> int:
    """Advance the epoch (invalidating every epoch-stamped cache entry).

    ``reason`` is a short tag (``"create-table"``, ``"declare"``, ...)
    recorded in :func:`epoch_log` so tests can assert *which* mutations
    invalidate.
    """
    global _epoch
    _epoch += 1
    _bumps[reason] = _bumps.get(reason, 0) + 1
    return _epoch


def epoch_log() -> Dict[str, int]:
    """Per-reason bump counts since process start (or the last reset)."""
    return dict(_bumps)


def reset_epoch_log() -> None:
    """Zero the per-reason counts (the epoch itself never rewinds)."""
    _bumps.clear()

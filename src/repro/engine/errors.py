"""Typed query-lifecycle errors and the cooperative cancellation token.

The fault-tolerance contract (see :mod:`repro.engine.parallel` and the
chaos leg of ``tests/harness/test_differential.py``) is that a query
either returns answers bit-identical to fault-free serial execution or
raises one of the *typed* errors below — never a wrong answer, never a
``Database`` poisoned for the next query.  Keeping the hierarchy in its
own leaf module lets every layer (operators, exchanges, ``Database``,
tests) import it without cycles.

Cancellation is **cooperative**: a :class:`CancelToken` rides on the
execution's :class:`~repro.engine.operators.base.Metrics` and operators
call ``metrics.check_cancel()`` once per batch (or per ~1k rows in row
mode) — cheap enough to be unmeasurable (<2%, gated in
``BENCH_bench_faults.json``), frequent enough that a deadline lands
within one batch of wall-clock truth.  Worker processes never see the
token; the consumer side enforces deadlines while pumping morsels, so a
timeout needs no cross-process signalling.
"""
from __future__ import annotations

import time
from typing import Optional

__all__ = [
    "QueryError",
    "QueryTimeout",
    "QueryCancelled",
    "ExecutionFailed",
    "CancelToken",
]


class QueryError(RuntimeError):
    """Base of every typed query-lifecycle error.

    When the failed execution was traced (``execute(trace=True)`` /
    ``REPRO_TRACE=1``), ``Database.execute`` attaches the Chrome
    ``trace_event`` dict collected up to the failure as ``trace`` —
    failed queries keep their flight recorder."""

    #: Chrome trace dict of the failed execution, ``None`` when untraced.
    trace: Optional[dict] = None


class QueryTimeout(QueryError):
    """The query ran past its ``timeout_s`` deadline and was cancelled."""


class QueryCancelled(QueryError):
    """The query was cancelled by the consumer before completion."""


class ExecutionFailed(QueryError):
    """Execution failed after every recovery rung (retries, then the
    backend degradation ladder) was exhausted.

    ``worker_traceback`` carries the original worker-side traceback text
    (process workers relay it over the result queue) so the first
    failure's real stack is never lost to the retry machinery.
    """

    def __init__(self, message: str, worker_traceback: Optional[str] = None) -> None:
        super().__init__(message)
        self.worker_traceback = worker_traceback


class CancelToken:
    """A deadline plus a cancellation flag, checked cooperatively.

    ``check()`` is the only hot-path call: one attribute load and an
    ``is not None`` test when no deadline is set, one ``time.monotonic()``
    when one is.  Deadlines are absolute monotonic instants so a token
    created before planning still bounds total wall clock.
    """

    __slots__ = ("timeout_s", "deadline", "_cancelled", "_reason")

    def __init__(self, timeout_s: Optional[float] = None) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.timeout_s = timeout_s
        self.deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        self._cancelled = False
        self._reason = ""

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self, reason: str = "cancelled by consumer") -> None:
        """Request cooperative cancellation (consumer-side close)."""
        self._cancelled = True
        self._reason = reason

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (``None``: no deadline)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def check(self) -> None:
        """Raise the typed error if cancelled or past the deadline."""
        if self._cancelled:
            raise QueryCancelled(self._reason or "query cancelled")
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise QueryTimeout(
                f"query exceeded its deadline of {self.timeout_s}s"
            )

"""Expression trees: scalar expressions evaluated against rows.

Supports the SQL subset the paper's examples need: column references,
literals, arithmetic, comparisons, boolean connectives, ``BETWEEN``/``IN``,
and the date extraction functions (``YEAR``/``QUARTER``/``MONTH``/``DAY``/
``WEEK``/``DAY_OF_YEAR``) central to Section 2.2's monotonic derived columns.

Each expression compiles itself against a :class:`~repro.engine.schema.Schema`
into a plain Python closure (``compile_against``), so per-row evaluation in
operator inner loops costs one function call.
"""
from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Any, Callable, FrozenSet, Sequence, Tuple

from .schema import Schema

__all__ = [
    "Expr",
    "Col",
    "Lit",
    "Arith",
    "Cmp",
    "BoolOp",
    "Not",
    "Between",
    "InList",
    "Func",
    "FUNCTIONS",
]


def _quarter(value: datetime.date) -> int:
    return (value.month - 1) // 3 + 1


def _week(value: datetime.date) -> int:
    return value.isocalendar()[1]


#: Built-in scalar functions.  All the date extractors are monotonic in
#: their argument at the granularity the Figure 2 hierarchy describes.
FUNCTIONS: dict = {
    "YEAR": lambda d: d.year,
    "QUARTER": _quarter,
    "MONTH": lambda d: d.month,
    "DAY": lambda d: d.day,
    "DAY_OF_YEAR": lambda d: d.timetuple().tm_yday,
    "WEEK": _week,
    "ABS": abs,
    "LOWER": lambda s: s.lower(),
    "UPPER": lambda s: s.upper(),
    "LENGTH": len,
}

_CMP_OPS: dict = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITH_OPS: dict = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


class Expr:
    """Base expression node."""

    def columns(self) -> FrozenSet[str]:
        """All column references (as written, possibly unqualified)."""
        raise NotImplementedError

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        """A closure evaluating this expression on rows of ``schema``."""
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


@dataclass(frozen=True)
class Col(Expr):
    """A column reference (possibly qualified, e.g. ``d.year``)."""

    name: str

    def columns(self) -> FrozenSet[str]:
        return frozenset([self.name])

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        position = schema.position(schema.resolve(self.name))
        return lambda row: row[position]

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lit(Expr):
    """A literal constant."""

    value: Any

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        value = self.value
        return lambda row: value

    def render(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if isinstance(self.value, datetime.date):
            return f"DATE '{self.value.isoformat()}'"
        return repr(self.value)


@dataclass(frozen=True)
class Arith(Expr):
    """Binary arithmetic."""

    op: str
    left: Expr
    right: Expr

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        operation = _ARITH_OPS[self.op]
        left = self.left.compile_against(schema)
        right = self.right.compile_against(schema)
        return lambda row: operation(left(row), right(row))

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


@dataclass(frozen=True)
class Cmp(Expr):
    """Binary comparison."""

    op: str
    left: Expr
    right: Expr

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        operation = _CMP_OPS[self.op]
        left = self.left.compile_against(schema)
        right = self.right.compile_against(schema)
        return lambda row: operation(left(row), right(row))

    def render(self) -> str:
        return f"{self.left.render()} {self.op} {self.right.render()}"


@dataclass(frozen=True)
class BoolOp(Expr):
    """``AND`` / ``OR`` over two or more operands."""

    op: str  # "AND" | "OR"
    operands: Tuple[Expr, ...]

    def __init__(self, op: str, operands: Sequence[Expr]) -> None:
        object.__setattr__(self, "op", op.upper())
        object.__setattr__(self, "operands", tuple(operands))

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for operand in self.operands:
            out |= operand.columns()
        return out

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        compiled = [operand.compile_against(schema) for operand in self.operands]
        if self.op == "AND":
            return lambda row: all(fn(row) for fn in compiled)
        return lambda row: any(fn(row) for fn in compiled)

    def render(self) -> str:
        joiner = f" {self.op} "
        return "(" + joiner.join(o.render() for o in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    operand: Expr

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        inner = self.operand.compile_against(schema)
        return lambda row: not inner(row)

    def render(self) -> str:
        return f"NOT ({self.operand.render()})"


@dataclass(frozen=True)
class Between(Expr):
    """``expr BETWEEN lo AND hi`` (inclusive both ends, as in SQL)."""

    operand: Expr
    low: Expr
    high: Expr

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns() | self.low.columns() | self.high.columns()

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        operand = self.operand.compile_against(schema)
        low = self.low.compile_against(schema)
        high = self.high.compile_against(schema)
        return lambda row: low(row) <= operand(row) <= high(row)

    def render(self) -> str:
        return (
            f"{self.operand.render()} BETWEEN {self.low.render()} "
            f"AND {self.high.render()}"
        )


@dataclass(frozen=True)
class InList(Expr):
    """``expr IN (v1, v2, ...)`` over literal values."""

    operand: Expr
    values: Tuple[Any, ...]

    def __init__(self, operand: Expr, values: Sequence[Any]) -> None:
        object.__setattr__(self, "operand", operand)
        object.__setattr__(self, "values", tuple(values))

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        operand = self.operand.compile_against(schema)
        values = set(self.values)
        return lambda row: operand(row) in values

    def render(self) -> str:
        rendered = ", ".join(Lit(value).render() for value in self.values)
        return f"{self.operand.render()} IN ({rendered})"


@dataclass(frozen=True)
class Func(Expr):
    """A built-in scalar function call."""

    name: str
    args: Tuple[Expr, ...]

    def __init__(self, name: str, args: Sequence[Expr]) -> None:
        name = name.upper()
        if name not in FUNCTIONS:
            raise ValueError(f"unknown function {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for argument in self.args:
            out |= argument.columns()
        return out

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        function = FUNCTIONS[self.name]
        compiled = [argument.compile_against(schema) for argument in self.args]
        return lambda row: function(*(fn(row) for fn in compiled))

    def render(self) -> str:
        return f"{self.name}({', '.join(a.render() for a in self.args)})"

"""Expression trees: scalar expressions evaluated against rows.

Supports the SQL subset the paper's examples need: column references,
literals, arithmetic, comparisons, boolean connectives, ``BETWEEN``/``IN``,
and the date extraction functions (``YEAR``/``QUARTER``/``MONTH``/``DAY``/
``WEEK``/``DAY_OF_YEAR``) central to Section 2.2's monotonic derived columns.

Each expression compiles itself against a :class:`~repro.engine.schema.Schema`
two ways:

* ``compile_against`` — a plain Python closure, so per-row evaluation in
  row-mode operator inner loops costs one function call;
* ``compile_vectorized`` (also :func:`vectorized_kernel`) — a *generated*
  list-comprehension kernel over whole column vectors for the batch
  execution mode: the entire expression tree is fused into one Python
  expression compiled once (and cached per ``(expression, schema)``), so
  a batch of N rows costs one function call instead of N closure chains.
"""
from __future__ import annotations

import datetime
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Sequence, Tuple

from .schema import Schema

__all__ = [
    "Expr",
    "Col",
    "Lit",
    "Arith",
    "Cmp",
    "BoolOp",
    "Not",
    "Between",
    "InList",
    "Func",
    "FUNCTIONS",
    "vectorized_kernel",
]


def _quarter(value: datetime.date) -> int:
    return (value.month - 1) // 3 + 1


def _week(value: datetime.date) -> int:
    return value.isocalendar()[1]


#: Built-in scalar functions.  All the date extractors are monotonic in
#: their argument at the granularity the Figure 2 hierarchy describes.
FUNCTIONS: dict = {
    "YEAR": lambda d: d.year,
    "QUARTER": _quarter,
    "MONTH": lambda d: d.month,
    "DAY": lambda d: d.day,
    "DAY_OF_YEAR": lambda d: d.timetuple().tm_yday,
    "WEEK": _week,
    "ABS": abs,
    "LOWER": lambda s: s.lower(),
    "UPPER": lambda s: s.upper(),
    "LENGTH": len,
}

_CMP_OPS: dict = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITH_OPS: dict = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


class Expr:
    """Base expression node."""

    def columns(self) -> FrozenSet[str]:
        """All column references (as written, possibly unqualified)."""
        raise NotImplementedError

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        """A closure evaluating this expression on rows of ``schema``."""
        raise NotImplementedError

    def compile_vectorized(
        self, schema: Schema
    ) -> Callable[[Sequence[Sequence], int], list]:
        """A kernel ``fn(columns, n) -> list`` evaluating this expression
        over column vectors of ``schema`` — see :func:`vectorized_kernel`."""
        return vectorized_kernel(self, schema)

    def vector_source(self, ctx: "_VectorContext") -> str:
        """The per-row Python source this node contributes to a fused
        vectorized kernel (columns as scalar variables, constants hoisted
        into the kernel namespace via ``ctx``)."""
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


@dataclass(frozen=True)
class Col(Expr):
    """A column reference (possibly qualified, e.g. ``d.year``)."""

    name: str

    def columns(self) -> FrozenSet[str]:
        return frozenset([self.name])

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        position = schema.position(schema.resolve(self.name))
        return lambda row: row[position]

    def vector_source(self, ctx: "_VectorContext") -> str:
        return ctx.column(self.name)

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lit(Expr):
    """A literal constant."""

    value: Any

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        value = self.value
        return lambda row: value

    def vector_source(self, ctx: "_VectorContext") -> str:
        return ctx.literal(self.value)

    def render(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if isinstance(self.value, datetime.date):
            return f"DATE '{self.value.isoformat()}'"
        return repr(self.value)


@dataclass(frozen=True)
class Arith(Expr):
    """Binary arithmetic."""

    op: str
    left: Expr
    right: Expr

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        operation = _ARITH_OPS[self.op]
        left = self.left.compile_against(schema)
        right = self.right.compile_against(schema)
        return lambda row: operation(left(row), right(row))

    def vector_source(self, ctx: "_VectorContext") -> str:
        return (
            f"({self.left.vector_source(ctx)} {self.op} "
            f"{self.right.vector_source(ctx)})"
        )

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


@dataclass(frozen=True)
class Cmp(Expr):
    """Binary comparison."""

    op: str
    left: Expr
    right: Expr

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        operation = _CMP_OPS[self.op]
        left = self.left.compile_against(schema)
        right = self.right.compile_against(schema)
        return lambda row: operation(left(row), right(row))

    def vector_source(self, ctx: "_VectorContext") -> str:
        operator = {"=": "==", "<>": "!="}.get(self.op, self.op)
        return (
            f"({self.left.vector_source(ctx)} {operator} "
            f"{self.right.vector_source(ctx)})"
        )

    def render(self) -> str:
        return f"{self.left.render()} {self.op} {self.right.render()}"


@dataclass(frozen=True)
class BoolOp(Expr):
    """``AND`` / ``OR`` over two or more operands."""

    op: str  # "AND" | "OR"
    operands: Tuple[Expr, ...]

    def __init__(self, op: str, operands: Sequence[Expr]) -> None:
        object.__setattr__(self, "op", op.upper())
        object.__setattr__(self, "operands", tuple(operands))

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for operand in self.operands:
            out |= operand.columns()
        return out

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        compiled = [operand.compile_against(schema) for operand in self.operands]
        if self.op == "AND":
            return lambda row: all(fn(row) for fn in compiled)
        return lambda row: any(fn(row) for fn in compiled)

    def vector_source(self, ctx: "_VectorContext") -> str:
        # ``bool(...)`` matches the row path's all()/any() return type while
        # keeping Python's left-to-right short-circuit per row.
        joiner = " and " if self.op == "AND" else " or "
        inner = joiner.join(
            f"({operand.vector_source(ctx)})" for operand in self.operands
        )
        return f"bool({inner})"

    def render(self) -> str:
        joiner = f" {self.op} "
        return "(" + joiner.join(o.render() for o in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    operand: Expr

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        inner = self.operand.compile_against(schema)
        return lambda row: not inner(row)

    def vector_source(self, ctx: "_VectorContext") -> str:
        return f"(not {self.operand.vector_source(ctx)})"

    def render(self) -> str:
        return f"NOT ({self.operand.render()})"


@dataclass(frozen=True)
class Between(Expr):
    """``expr BETWEEN lo AND hi`` (inclusive both ends, as in SQL)."""

    operand: Expr
    low: Expr
    high: Expr

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns() | self.low.columns() | self.high.columns()

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        operand = self.operand.compile_against(schema)
        low = self.low.compile_against(schema)
        high = self.high.compile_against(schema)
        return lambda row: low(row) <= operand(row) <= high(row)

    def vector_source(self, ctx: "_VectorContext") -> str:
        # Chained comparison evaluates the middle operand once, as the row
        # path's closure does.
        return (
            f"({self.low.vector_source(ctx)} <= "
            f"{self.operand.vector_source(ctx)} <= "
            f"{self.high.vector_source(ctx)})"
        )

    def render(self) -> str:
        return (
            f"{self.operand.render()} BETWEEN {self.low.render()} "
            f"AND {self.high.render()}"
        )


@dataclass(frozen=True)
class InList(Expr):
    """``expr IN (v1, v2, ...)`` over literal values."""

    operand: Expr
    values: Tuple[Any, ...]

    def __init__(self, operand: Expr, values: Sequence[Any]) -> None:
        object.__setattr__(self, "operand", operand)
        object.__setattr__(self, "values", tuple(values))

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        operand = self.operand.compile_against(schema)
        values = set(self.values)
        return lambda row: operand(row) in values

    def vector_source(self, ctx: "_VectorContext") -> str:
        hoisted = ctx.hoist(set(self.values))
        return f"({self.operand.vector_source(ctx)} in {hoisted})"

    def render(self) -> str:
        rendered = ", ".join(Lit(value).render() for value in self.values)
        return f"{self.operand.render()} IN ({rendered})"


@dataclass(frozen=True)
class Func(Expr):
    """A built-in scalar function call."""

    name: str
    args: Tuple[Expr, ...]

    def __init__(self, name: str, args: Sequence[Expr]) -> None:
        name = name.upper()
        if name not in FUNCTIONS:
            raise ValueError(f"unknown function {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for argument in self.args:
            out |= argument.columns()
        return out

    def compile_against(self, schema: Schema) -> Callable[[tuple], Any]:
        function = FUNCTIONS[self.name]
        compiled = [argument.compile_against(schema) for argument in self.args]
        return lambda row: function(*(fn(row) for fn in compiled))

    def vector_source(self, ctx: "_VectorContext") -> str:
        function = ctx.function(self.name)
        arguments = ", ".join(a.vector_source(ctx) for a in self.args)
        return f"{function}({arguments})"

    def render(self) -> str:
        return f"{self.name}({', '.join(a.render() for a in self.args)})"


# ----------------------------------------------------------------------
# Vectorized kernel generation (the batch execution mode's evaluator)
# ----------------------------------------------------------------------
class _VectorContext:
    """Codegen state for one fused kernel: which column positions the
    expression touches (each becomes a loop variable) and the values
    hoisted into the kernel's namespace (functions, non-trivial
    literals, IN-list sets)."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.positions: Dict[int, str] = {}
        self.namespace: Dict[str, Any] = {}
        self._hoisted = 0

    def column(self, name: str) -> str:
        position = self.schema.position(self.schema.resolve(name))
        variable = f"v{position}"
        self.positions[position] = variable
        return variable

    def hoist(self, value: Any) -> str:
        name = f"_k{self._hoisted}"
        self._hoisted += 1
        self.namespace[name] = value
        return name

    def literal(self, value: Any) -> str:
        # bool before int: True is an int, but repr is already exact.
        if value is None or isinstance(value, (bool, int, float, str)):
            return repr(value)
        return self.hoist(value)

    def function(self, name: str) -> str:
        key = f"_f_{name}"
        self.namespace[key] = FUNCTIONS[name]
        return key


def _build_kernel(expr: Expr, schema: Schema):
    """Fuse ``expr`` into one generated list comprehension.

    The whole tree becomes a single Python expression evaluated per row
    inside one comprehension — preserving the row path's left-to-right,
    short-circuit semantics — so a batch costs one function call plus a
    C-speed loop instead of a closure chain per row.
    """
    if isinstance(expr, Col):
        # Pass-through column: the input vector itself, no copy.
        position = schema.position(schema.resolve(expr.name))
        return lambda columns, n: columns[position]
    ctx = _VectorContext(schema)
    body = expr.vector_source(ctx)
    positions = sorted(ctx.positions)
    if not positions:
        source = (
            "def _kernel(columns, n):\n"
            f"    _value = {body}\n"
            "    return [_value] * n"
        )
    elif len(positions) == 1:
        p = positions[0]
        source = (
            "def _kernel(columns, n):\n"
            f"    return [{body} for v{p} in columns[{p}]]"
        )
    else:
        variables = ", ".join(f"v{p}" for p in positions)
        vectors = ", ".join(f"columns[{p}]" for p in positions)
        source = (
            "def _kernel(columns, n):\n"
            f"    return [{body} for ({variables},) in zip({vectors})]"
        )
    namespace = ctx.namespace
    exec(compile(source, "<vectorized-expr>", "exec"), namespace)
    return namespace["_kernel"]


def _literal_signature(expr: Expr) -> tuple:
    """The types of every literal in the tree, in traversal order.

    Part of the kernel cache key: dataclass equality says
    ``Lit(1) == Lit(1.0) == Lit(True)`` (Python's cross-type numeric
    ``==``), but their kernels bake different ``repr``s — without the
    type signature, two queries differing only in literal type would
    share one kernel and the second would return wrong-typed values.
    """
    signature: list = []

    def walk(node: Expr) -> None:
        if isinstance(node, Lit):
            signature.append(type(node.value).__name__)
        elif isinstance(node, InList):
            signature.extend(type(value).__name__ for value in node.values)
            walk(node.operand)
        elif isinstance(node, (Arith, Cmp)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, BoolOp):
            for operand in node.operands:
                walk(operand)
        elif isinstance(node, Not):
            walk(node.operand)
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, Func):
            for argument in node.args:
                walk(argument)

    walk(expr)
    return tuple(signature)


#: kernel cache: (expression, literal-type signature, schema column
#: names) → compiled kernel.  Expressions are frozen dataclasses
#: (hashable), so identical predicates against identical schemas — e.g.
#: every execution of a cached plan — compile exactly once.
_KERNEL_CACHE: "OrderedDict[tuple, Callable]" = OrderedDict()
_KERNEL_CACHE_CAPACITY = 1024
#: Parallel partitions compile kernels from worker threads; the lock keeps
#: the get/move_to_end/evict sequence atomic (an eviction racing a
#: ``move_to_end`` would otherwise KeyError).  Uncontended cost is one
#: lock per *operator construction*, not per batch — kernels are cached
#: on the operator instance after the first call.
_KERNEL_CACHE_LOCK = threading.Lock()


def vectorized_kernel(
    expr: Expr, schema: Schema
) -> Callable[[Sequence[Sequence], int], list]:
    """The (cached) vectorized evaluator for ``expr`` against ``schema``.

    Returns ``fn(columns, n) -> list`` where ``columns`` is a sequence of
    column vectors positioned as in ``schema`` and ``n`` their length;
    the result vector matches row-at-a-time evaluation element-for-element.
    """
    try:
        key = (expr, _literal_signature(expr), schema.names)
        with _KERNEL_CACHE_LOCK:
            cached = _KERNEL_CACHE.get(key)
            if cached is not None:
                _KERNEL_CACHE.move_to_end(key)
    except TypeError:  # unhashable literal somewhere: compile uncached
        return _build_kernel(expr, schema)
    if cached is not None:
        return cached
    kernel = _build_kernel(expr, schema)
    with _KERNEL_CACHE_LOCK:
        _KERNEL_CACHE[key] = kernel
        while len(_KERNEL_CACHE) > _KERNEL_CACHE_CAPACITY:
            _KERNEL_CACHE.popitem(last=False)
    return kernel

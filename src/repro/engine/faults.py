"""Deterministic fault injection for the exchange backends.

Recovery code that only runs when hardware misbehaves is recovery code
that never runs in CI.  This module gives the backends *seams* where
faults fire on a fixed, seeded schedule — a :class:`FaultPlan` names a
fault kind, the partition and batch it strikes, and how many attempts it
keeps striking — so the chaos leg of the differential harness
(``tests/harness/test_differential.py``) can replay worker kills,
in-kernel exceptions, delays, and lost result streams and assert the
recovered run stays bit-identical to fault-free serial execution.

Fault kinds (the ``kind`` field):

* ``kill_worker`` — the worker process hard-exits (``os._exit``) before
  emitting the target batch.  Process backend only; thread/inline seams
  skip it (you cannot kill a thread mid-bytecode).
* ``raise`` — the partition raises :class:`InjectedFault` before
  emitting the target batch, on any backend.
* ``delay`` — the partition sleeps ``delay_s`` before emitting the
  target batch (pairs with ``timeout_s`` to exercise deadlines).
* ``drop_results`` — the producer stops silently: no more morsels and
  no terminal message (a lost result stream).  Thread backend detects
  this via its producer-finished flag; the process backend cannot
  distinguish it from a slow worker, so process chaos tests pair it
  with a deadline.  Inline seams skip it (the inline "stream" *is* the
  consumer).

Plans are **attempt-gated**: a plan fires while the partition's attempt
number is below ``attempts``, so ``attempts=1`` means "fail once, then
let the retry succeed" and a large ``attempts`` means "fail every retry
rung" (driving the run into backend degradation and, past the ladder,
the typed :class:`~repro.engine.errors.ExecutionFailed`).

Activation: programmatic :func:`install`/:func:`clear` (tests), or the
``REPRO_FAULTS`` environment knob, a ``;``-separated list of specs like
``kill_worker:partition=0,batch=1,attempts=2``.  With no plans active
the seams are a single falsy check — zero cost on the fault-free path.
"""
from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedFault",
    "DropResults",
    "parse_plan",
    "parse_plans",
    "install",
    "clear",
    "active_plans",
    "resolve",
    "should_fire",
    "fire",
]

#: The recognized fault kinds.
FAULT_KINDS: Tuple[str, ...] = ("kill_worker", "raise", "delay", "drop_results")


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault plants in a partition kernel."""


class DropResults(Exception):
    """Control-flow signal: the producer stops without a terminal message.

    Never surfaces to callers — backends catch it at the seam and simply
    go silent, which is the point of the fault.
    """


@dataclass(frozen=True)
class FaultPlan:
    """One scheduled fault: *kind* strikes *partition* at *batch*, for
    the first *attempts* attempts.

    ``partition is None`` targets every partition; ``partition == -1``
    picks one deterministically from ``seed`` once the run's partition
    count is known (:func:`resolve`).  Frozen and picklable: process
    tasks ship their resolved plans to the worker.
    """

    kind: str
    partition: Optional[int] = None
    at_batch: int = 0
    attempts: int = 1
    delay_s: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of {FAULT_KINDS})"
            )
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")


def parse_plan(spec: str) -> FaultPlan:
    """``kind:key=value,...`` → :class:`FaultPlan`.

    Keys: ``partition`` (int, or ``any``/``seeded``), ``batch``,
    ``attempts``, ``delay`` (seconds), ``seed``.
    """
    spec = spec.strip()
    kind, _, rest = spec.partition(":")
    kwargs: dict = {}
    if rest:
        for item in rest.split(","):
            key, _, value = item.strip().partition("=")
            key = key.strip()
            value = value.strip()
            if key == "partition":
                if value == "any":
                    kwargs["partition"] = None
                elif value == "seeded":
                    kwargs["partition"] = -1
                else:
                    kwargs["partition"] = int(value)
            elif key == "batch":
                kwargs["at_batch"] = int(value)
            elif key == "attempts":
                kwargs["attempts"] = int(value)
            elif key == "delay":
                kwargs["delay_s"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(f"unknown fault-plan key {key!r} in {spec!r}")
    return FaultPlan(kind=kind.strip(), **kwargs)


def parse_plans(text: str) -> Tuple[FaultPlan, ...]:
    """Parse a ``;``-separated list of plan specs (empty → no plans)."""
    return tuple(
        parse_plan(item) for item in text.split(";") if item.strip()
    )


#: Programmatically installed plans (take precedence over the env knob).
_INSTALLED: Optional[Tuple[FaultPlan, ...]] = None


def install(plans: Sequence[FaultPlan]) -> None:
    """Activate fault plans for subsequent executions (tests)."""
    global _INSTALLED
    _INSTALLED = tuple(plans)


def clear() -> None:
    """Deactivate programmatic plans (the env knob applies again)."""
    global _INSTALLED
    _INSTALLED = None


def active_plans() -> Tuple[FaultPlan, ...]:
    """The plans in force: installed ones, else ``REPRO_FAULTS``."""
    if _INSTALLED is not None:
        return _INSTALLED
    text = os.environ.get("REPRO_FAULTS", "")
    if not text.strip():
        return ()
    return parse_plans(text)


def resolve(
    plans: Sequence[FaultPlan], partition_count: int
) -> Tuple[FaultPlan, ...]:
    """Pin seeded (``partition == -1``) plans to a concrete partition.

    Done once, parent-side, when the run's partition count is known — so
    every attempt and every backend rung targets the *same* partition
    and the schedule stays deterministic end to end.
    """
    resolved = []
    for plan in plans:
        if plan.partition == -1:
            pick = random.Random(plan.seed).randrange(max(1, partition_count))
            plan = replace(plan, partition=pick)
        resolved.append(plan)
    return tuple(resolved)


def should_fire(
    plan: FaultPlan, partition: int, batch_no: int, attempt: int
) -> bool:
    return (
        attempt < plan.attempts
        and batch_no == plan.at_batch
        and (plan.partition is None or plan.partition == partition)
    )


def fire(
    plans: Sequence[FaultPlan],
    partition: int,
    batch_no: int,
    attempt: int,
    backend: str,
) -> None:
    """The seam: called by a producer before emitting batch ``batch_no``
    of ``partition`` on ``attempt``.  Raises, sleeps, or kills per the
    matching plans; kinds a backend cannot express are skipped (see the
    module docstring)."""
    for plan in plans:
        if not should_fire(plan, partition, batch_no, attempt):
            continue
        if plan.kind == "delay":
            time.sleep(plan.delay_s)
        elif plan.kind == "raise":
            raise InjectedFault(
                f"injected fault: partition {partition} batch {batch_no} "
                f"attempt {attempt}"
            )
        elif plan.kind == "kill_worker":
            if backend == "process":
                os._exit(43)
        elif plan.kind == "drop_results":
            if backend != "inline":
                raise DropResults()

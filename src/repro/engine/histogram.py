"""Equi-depth histograms and distinct-value sketches for estimation.

The uniform min/max model behind the original :class:`ColumnStats` is the
weakest layer under the cost-based join ordering: it cannot see skew (a
beta-distributed fact date column looks uniform), cannot answer point
ranges, and treats every join as containment of the smaller key domain.
This module supplies the two summaries that fix that:

* :class:`EquiDepthHistogram` — buckets of (approximately) equal row
  count over the sorted column values, so dense regions get many narrow
  buckets and sparse regions few wide ones.  Equality estimates read the
  owning bucket's rows-per-distinct; range estimates sum whole buckets
  and interpolate the partial ones.  A value never spans two buckets, so
  heavy hitters surface as single-value buckets with exact counts.
* :class:`KMVSketch` — a k-minimum-values distinct sketch.  Hashing every
  value and keeping the ``k`` smallest hashes yields a mergeable NDV
  estimate, and — the part the join estimator uses — an *intersection*
  estimate between two columns' key domains, replacing the containment
  assumption (``smaller domain ⊆ larger``) with a measured overlap.
  Below ``k`` distinct values the sketch is exact.

Both are built inside :func:`repro.engine.stats.collect_stats` (one pass
per column, shared with min/max/NDV collection) and live on
:class:`~repro.engine.stats.ColumnStats`, so they inherit the epoch-keyed
staleness contract of ``TableStats`` — any catalog or data mutation bumps
the epoch and the next ``Database.stats`` call recollects.

:func:`merge_join_rows` is the interleaved-merge join estimator: both
histograms' bucket boundaries are merged into one ordered sequence of
intervals and each interval contributes ``l_rows · r_rows / max(ndv)``
— per-interval containment, which degrades to the classic global
containment estimate when the histograms are flat but sees disjoint and
partially-overlapping key ranges exactly.
"""
from __future__ import annotations

import datetime
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "SKETCH_SIZE",
    "EquiDepthHistogram",
    "KMVSketch",
    "build_histogram",
    "build_sketch",
    "merge_join_rows",
]

#: Bucket budget per histogram.  Equi-depth buckets adapt their width to
#: the data, so a modest budget resolves strong skew; 64 keeps the
#: per-column summary a few hundred machine words.
DEFAULT_BUCKETS = 64

#: k for the k-minimum-values sketch: exact below 256 distinct values
#: (every dimension table here), ~6% relative NDV error above.
SKETCH_SIZE = 256


def _ordinal(value: Any) -> Optional[float]:
    """Map a value onto the interpolation axis (None: not interpolable).

    Numbers map to themselves and dates to their proleptic ordinal, so
    date-domain windows interpolate by *days* — the same convention the
    uniform model's ``timedelta.days`` branch uses.  Strings (and any
    other ordered-but-not-numeric domain) return None: range estimates
    then count whole buckets and charge half of a partially-covered one.
    """
    if isinstance(value, bool):  # bool is an int subclass; keep it explicit
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, datetime.datetime):
        return value.timestamp()
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    return None


@dataclass(frozen=True)
class EquiDepthHistogram:
    """Equi-depth buckets over one column's sorted values.

    Bucket ``i`` covers ``(lowers[i], uppers[i]]`` by value — except
    bucket 0, which includes its lower bound — holding ``counts[i]`` rows
    over ``distincts[i]`` distinct values.  Buckets never split a value:
    the boundary always advances to the last duplicate.
    """

    lowers: Tuple[Any, ...]
    uppers: Tuple[Any, ...]
    counts: Tuple[int, ...]
    distincts: Tuple[int, ...]
    total: int

    @property
    def minimum(self) -> Any:
        return self.lowers[0]

    @property
    def maximum(self) -> Any:
        return self.uppers[-1]

    def equality_fraction(self, value: Any) -> float:
        """Estimated fraction of rows equal to ``value``: the owning
        bucket's rows-per-distinct (0.0 outside the observed domain)."""
        if self.total == 0:
            return 0.0
        try:
            if value < self.minimum or value > self.maximum:
                return 0.0
            position = bisect_left(self.uppers, value)
        except TypeError:  # cross-type probe (e.g. str vs int column)
            return 0.0
        position = min(position, len(self.counts) - 1)
        rows = self.counts[position] / max(1, self.distincts[position])
        return min(1.0, rows / self.total)

    def range_fraction(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Estimated fraction of rows in the window; ``None`` bounds are
        open ends.  Whole buckets inside the window contribute their full
        count; the boundary buckets interpolate on the ordinal axis (half
        a bucket for non-interpolable domains); exclusive endpoints give
        back their endpoint's equality mass."""
        if self.total == 0:
            return 0.0
        try:
            rows = 0.0
            for i in range(len(self.counts)):
                rows += self._bucket_overlap(i, low, high)
            if not low_inclusive and low is not None:
                rows -= self.equality_fraction(low) * self.total
            if not high_inclusive and high is not None:
                rows -= self.equality_fraction(high) * self.total
        except TypeError:  # incomparable bound for this domain
            return -1.0  # sentinel: caller falls back to the uniform model
        return max(0.0, min(1.0, rows / self.total))

    def _bucket_overlap(self, i: int, low: Any, high: Any) -> float:
        """Estimated rows of bucket ``i`` inside the closed window."""
        bucket_low, bucket_high = self.lowers[i], self.uppers[i]
        if (low is not None and bucket_high < low) or (
            high is not None and bucket_low > high
        ):
            return 0.0
        covers_low = low is None or low <= bucket_low
        covers_high = high is None or high >= bucket_high
        if covers_low and covers_high:
            return float(self.counts[i])
        if bucket_low == bucket_high:  # single-value bucket, inside window
            return float(self.counts[i])
        lo_ord = _ordinal(bucket_low)
        hi_ord = _ordinal(bucket_high)
        if lo_ord is None or hi_ord is None or hi_ord <= lo_ord:
            return self.counts[i] * 0.5  # non-interpolable: half a bucket
        window_lo = lo_ord if covers_low else max(lo_ord, _ordinal(low))
        window_hi = hi_ord if covers_high else min(hi_ord, _ordinal(high))
        fraction = (window_hi - window_lo) / (hi_ord - lo_ord)
        return self.counts[i] * max(0.0, min(1.0, fraction))

    def distinct_in(self, low: Any, high: Any) -> float:
        """Estimated distinct values inside the closed window (≥ 1 when
        the window overlaps the domain at all)."""
        if self.total == 0:
            return 0.0
        out = 0.0
        for i in range(len(self.counts)):
            overlap = self._bucket_overlap(i, low, high)
            if overlap > 0.0 and self.counts[i]:
                out += self.distincts[i] * (overlap / self.counts[i])
        return out

    def interval_mass(
        self, low: Any, high: Any, include_low: bool
    ) -> Tuple[float, float]:
        """(rows, distinct) mass in the half-open interval ``(low, high]``
        (``[low, high]`` when ``include_low``) under a *continuous*
        measure: single-value buckets are point masses assigned by
        membership, multi-value buckets interpolate rows **and**
        distincts by the same ordinal fraction.  Consecutive half-open
        intervals therefore tile the domain with no mass lost or counted
        twice — the invariant :func:`merge_join_rows` sums over.
        """
        rows = 0.0
        distinct = 0.0
        for i in range(len(self.counts)):
            bucket_low, bucket_high = self.lowers[i], self.uppers[i]
            if bucket_high < low or (bucket_high == low and not include_low):
                continue
            if bucket_low > high:
                break
            if bucket_low == bucket_high:  # point bucket: membership
                inside_low = low < bucket_low or (
                    include_low and bucket_low == low
                )
                if inside_low and bucket_low <= high:
                    rows += self.counts[i]
                    distinct += self.distincts[i]
                continue
            lo_ord = _ordinal(bucket_low)
            hi_ord = _ordinal(bucket_high)
            if lo_ord is None or hi_ord is None or hi_ord <= lo_ord:
                rows += self.counts[i] * 0.5
                distinct += self.distincts[i] * 0.5
                continue
            window_lo = max(lo_ord, _ordinal(low))
            window_hi = min(hi_ord, _ordinal(high))
            fraction = (window_hi - window_lo) / (hi_ord - lo_ord)
            fraction = max(0.0, min(1.0, fraction))
            rows += self.counts[i] * fraction
            distinct += self.distincts[i] * fraction
        return rows, distinct


def build_histogram(
    sorted_values: Sequence[Any], buckets: int = DEFAULT_BUCKETS
) -> Optional[EquiDepthHistogram]:
    """Equi-depth histogram over pre-sorted values (None when empty).

    Walks the sorted run once: a bucket closes when it has reached the
    target depth *and* the value changes, so duplicates of one value are
    never split across buckets (their bucket just runs deep — that is the
    heavy-hitter signal the equality estimate reads).
    """
    total = len(sorted_values)
    if total == 0:
        return None
    depth = max(1, -(-total // buckets))  # ceil division
    lowers: List[Any] = []
    uppers: List[Any] = []
    counts: List[int] = []
    distincts: List[int] = []

    def emit(start: int, end: int) -> None:
        chunk = sorted_values[start:end]
        lowers.append(chunk[0])
        uppers.append(chunk[-1])
        counts.append(len(chunk))
        distinct = 1
        for j in range(1, len(chunk)):
            if chunk[j] != chunk[j - 1]:
                distinct += 1
        distincts.append(distinct)

    start = 0
    while start < total:
        end = min(start + depth, total)
        boundary = sorted_values[end - 1]
        run_start = bisect_left(sorted_values, boundary, start, end)
        run_end = bisect_right(sorted_values, boundary, end - 1, total)
        if run_end - run_start >= depth and run_start > start:
            # The boundary value alone fills a bucket: close the current
            # bucket *before* it so the heavy hitter gets a single-value
            # bucket with an exact count instead of diluting its
            # neighbors' rows-per-distinct.
            emit(start, run_start)
            start = run_start
            continue
        # Otherwise extend over the boundary value's duplicates — a
        # value never splits across buckets.
        emit(start, run_end)
        start = run_end
    return EquiDepthHistogram(
        tuple(lowers), tuple(uppers), tuple(counts), tuple(distincts), total
    )


def _stable_hash(value: Any) -> int:
    """64-bit content hash, stable across processes and Python runs
    (``hash()`` is salted for strings; sketches must be comparable
    between a fork-spawned worker and the parent)."""
    digest = blake2b(repr(value).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


_HASH_SPACE = float(1 << 64)


@dataclass(frozen=True)
class KMVSketch:
    """k-minimum-values distinct sketch: the ``k`` smallest 64-bit hashes
    of the value set, sorted ascending.  ``exact`` marks the lossless
    case (fewer than ``k`` distinct values — the sketch *is* the hashed
    domain, and intersections are exact)."""

    hashes: Tuple[int, ...]
    k: int = SKETCH_SIZE
    exact: bool = False

    def ndv(self) -> float:
        """Estimated distinct count: exact below k, else (k-1)/kth-value
        (the classical KMV estimator)."""
        if self.exact or len(self.hashes) < self.k:
            return float(len(self.hashes))
        return (self.k - 1) * _HASH_SPACE / float(self.hashes[-1])

    def intersection_ndv(self, other: "KMVSketch") -> float:
        """Estimated ``|A ∩ B|`` — the join estimator's measured overlap.

        Combine both sketches into the union's KMV (the k smallest of the
        merged hash sets), count how many of those the two sides share,
        and scale the union NDV estimate by that Jaccard fraction.  Exact
        whenever both sketches are exact.
        """
        if not self.hashes or not other.hashes:
            return 0.0
        mine, theirs = set(self.hashes), set(other.hashes)
        if self.exact and other.exact:
            return float(len(mine & theirs))
        k = min(self.k, other.k)
        union_smallest = sorted(mine | theirs)[:k]
        shared = sum(1 for h in union_smallest if h in mine and h in theirs)
        if not union_smallest:
            return 0.0
        jaccard = shared / len(union_smallest)
        union = KMVSketch(tuple(union_smallest), k, exact=False)
        if len(union_smallest) < k:
            return float(shared)
        return jaccard * union.ndv()


def build_sketch(values: Sequence[Any], k: int = SKETCH_SIZE) -> KMVSketch:
    """Sketch a column's value set (hash once per *distinct* value)."""
    hashes = {_stable_hash(value) for value in set(values)}
    if len(hashes) <= k:
        return KMVSketch(tuple(sorted(hashes)), k, exact=True)
    return KMVSketch(tuple(sorted(hashes)[:k]), k, exact=False)


def merge_join_rows(
    left_rows: float,
    right_rows: float,
    left_hist: EquiDepthHistogram,
    right_hist: EquiDepthHistogram,
) -> float:
    """Interleaved-merge equi-join estimate for OD-ordered join keys.

    Both histograms' bucket boundaries are merged into one ordered
    sequence of intervals; each interval contributes containment locally
    (``l_i · r_i / max(ndv_l_i, ndv_r_i)``), scaled so the bucket row
    masses reproduce the actual input cardinalities.  Intervals covered
    by only one side contribute nothing — disjoint or partially
    overlapping key domains, which global containment cannot see, fall
    out exactly.
    """
    if left_hist.total == 0 or right_hist.total == 0:
        return 0.0
    try:
        boundaries = sorted(
            set(left_hist.lowers)
            | set(left_hist.uppers)
            | set(right_hist.lowers)
            | set(right_hist.uppers)
        )
        left_scale = left_rows / left_hist.total
        right_scale = right_rows / right_hist.total
        rows = 0.0
        previous = None
        for boundary in boundaries:
            # Half-open intervals (prev, b] — the first is the point
            # [b0, b0] — tile the merged domain, so every row's mass is
            # counted exactly once (interval_mass's invariant).
            low = boundary if previous is None else previous
            include_low = previous is None
            previous = boundary
            l_rows, l_ndv = left_hist.interval_mass(low, boundary, include_low)
            r_rows, r_ndv = right_hist.interval_mass(low, boundary, include_low)
            if l_rows <= 0.0 or r_rows <= 0.0:
                continue
            rows += (
                (l_rows * left_scale)
                * (r_rows * right_scale)
                / max(l_ndv, r_ndv, 1.0)
            )
    except TypeError:  # incomparable domains (e.g. str keys vs int keys)
        return -1.0  # sentinel: caller falls back to the next model
    return rows

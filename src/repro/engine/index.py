"""Sorted (B-tree-like) indexes with range scans and min/max probes.

Backed by a sorted array + binary search — the access-pattern equivalent of
a B-tree for an in-memory engine.  Two operations matter to the paper's
rewrites:

* ``range_scan`` — drives index-satisfied ``ORDER BY``/``GROUP BY`` (the
  Example 1 plan) and the fact-table side of the date rewrite;
* ``probe_min`` / ``probe_max`` — the *two probes into the date dimension*
  of Section 2.3 that translate a natural-date range into a surrogate-key
  range.
"""
from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from .table import Table

__all__ = ["SortedIndex"]

_NEG_INF = object()
_POS_INF = object()


class SortedIndex:
    """A sorted-array index over one or more key columns."""

    def __init__(
        self,
        name: str,
        table: Table,
        key_columns: Sequence[str],
        clustered: bool = False,
    ) -> None:
        self.name = name
        self.table = table
        self.key_columns: Tuple[str, ...] = tuple(
            table.schema.resolve(column) for column in key_columns
        )
        self.clustered = clustered
        self._positions = tuple(
            table.schema.position(column) for column in self.key_columns
        )
        self._entries: List[Tuple[tuple, int]] = []
        self._keys: List[tuple] = []
        self._built_row_count = -1

    # ------------------------------------------------------------------
    def build(self) -> "SortedIndex":
        """(Re)build from the table's current rows."""
        self._entries = sorted(
            (tuple(row[i] for i in self._positions), rowid)
            for rowid, row in enumerate(self.table.rows)
        )
        self._keys = [entry[0] for entry in self._entries]
        self._built_row_count = len(self.table.rows)
        return self

    def _ensure_built(self) -> None:
        if self._built_row_count != len(self.table.rows):
            self.build()

    def __len__(self) -> int:
        self._ensure_built()
        return len(self._entries)

    # ------------------------------------------------------------------
    # Probes and scans
    # ------------------------------------------------------------------
    def range_positions(
        self,
        low: Optional[tuple] = None,
        high: Optional[tuple] = None,
    ) -> Tuple[int, int]:
        """Entry positions ``[start, stop)`` whose key-prefix lies in
        ``low ≤ key ≤ high`` — the seam partitioned index scans slice."""
        self._ensure_built()
        keys = self._keys
        start = 0
        stop = len(keys)
        if low is not None:
            start = bisect.bisect_left(keys, tuple(low))
        if high is not None:
            # Append a maximal sentinel so prefix bounds include all
            # extensions of the bound value.
            stop = bisect.bisect_right(keys, tuple(high) + (_Top(),))
        return start, max(start, stop)

    def scan_positions(
        self, start: int, stop: int, reverse: bool = False
    ) -> Iterator[tuple]:
        """Yield table rows for the entry positions ``[start, stop)`` in
        key order (reversed when asked).  Iterates in place — no slice
        copy of the entry array per scan."""
        self._ensure_built()
        entries = self._entries
        rows = self.table.rows
        indices = range(start, stop)
        if reverse:
            indices = reversed(indices)
        for position in indices:
            yield rows[entries[position][1]]

    def range_scan(
        self,
        low: Optional[tuple] = None,
        high: Optional[tuple] = None,
        reverse: bool = False,
    ) -> Iterator[tuple]:
        """Yield table rows with ``low ≤ key-prefix ≤ high`` in key order.

        ``low``/``high`` are tuples over a *prefix* of the key columns;
        ``None`` leaves that end unbounded.  The scan is inclusive at both
        ends, matching SQL ``BETWEEN``.
        """
        start, stop = self.range_positions(low, high)
        yield from self.scan_positions(start, stop, reverse)

    def probe_min(
        self, low: tuple, value_column: str
    ) -> Optional[Any]:
        """Smallest ``value_column`` among rows with key-prefix ≥ ``low``.

        With ``value_column`` monotone in the key (an OD!), this is the
        first qualifying entry — O(log n), the Section 2.3 "probe".
        """
        self._ensure_built()
        keys = self._keys
        start = bisect.bisect_left(keys, tuple(low))
        if start >= len(self._entries):
            return None
        position = self.table.schema.position(
            self.table.schema.resolve(value_column)
        )
        return self.table.rows[self._entries[start][1]][position]

    def probe_max(
        self, high: tuple, value_column: str
    ) -> Optional[Any]:
        """Largest ``value_column`` among rows with key-prefix ≤ ``high``."""
        self._ensure_built()
        keys = self._keys
        stop = bisect.bisect_right(keys, tuple(high) + (_Top(),))
        if stop == 0:
            return None
        position = self.table.schema.position(
            self.table.schema.resolve(value_column)
        )
        return self.table.rows[self._entries[stop - 1][1]][position]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "clustered" if self.clustered else "secondary"
        return (
            f"SortedIndex({self.name!r} ON {self.table.name}"
            f"({', '.join(self.key_columns)}), {kind})"
        )


class _Top:
    """Compares greater than every value — sentinel for inclusive prefix
    upper bounds."""

    def __lt__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return True

"""Logical query plans and the AST → logical binder.

The logical layer is deliberately thin: a tree of relational operations with
*raw* (possibly unqualified) column references.  Name resolution happens at
physical planning time against real schemas; rewrite rules (the OD
optimizations) operate on this tree.
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

from .expr import Col, Expr
from .operators.base import AggSpec
from .sql.ast import AggCall, SelectStatement

__all__ = [
    "LogicalScan",
    "LogicalJoin",
    "LogicalFilter",
    "LogicalAggregate",
    "LogicalProject",
    "LogicalDistinct",
    "LogicalSort",
    "LogicalLimit",
    "LogicalNode",
    "BindError",
    "bind",
]


class BindError(ValueError):
    """The statement cannot be bound to a logical plan."""


@dataclass(frozen=True)
class LogicalScan:
    table: str
    alias: str

    def children(self) -> tuple:
        return ()

    def describe(self) -> str:
        return f"Scan {self.table} AS {self.alias}"


@dataclass(frozen=True)
class LogicalJoin:
    left: "LogicalNode"
    right: "LogicalNode"
    left_columns: Tuple[str, ...]
    right_columns: Tuple[str, ...]

    def children(self) -> tuple:
        return (self.left, self.right)

    def describe(self) -> str:
        condition = " AND ".join(
            f"{l} = {r}" for l, r in zip(self.left_columns, self.right_columns)
        )
        return f"Join ON {condition}"


@dataclass(frozen=True)
class LogicalFilter:
    child: "LogicalNode"
    predicate: Expr

    def children(self) -> tuple:
        return (self.child,)

    def describe(self) -> str:
        return f"Filter {self.predicate.render()}"


@dataclass(frozen=True)
class LogicalAggregate:
    child: "LogicalNode"
    group_columns: Tuple[str, ...]
    aggregates: Tuple[AggSpec, ...]
    #: True for the below-the-join stage introduced by eager aggregation
    #: (repro.optimizer.rewrite_pack); the binder never sets it, so plan
    #: fingerprints (computed on bound trees) are unaffected.
    partial: bool = False

    def children(self) -> tuple:
        return (self.child,)

    def describe(self) -> str:
        parts = list(self.group_columns) + [
            f"{spec.render()} AS {spec.name}" for spec in self.aggregates
        ]
        stage = "PartialAggregate" if self.partial else "Aggregate"
        return f"{stage} [{', '.join(parts)}]"


@dataclass(frozen=True)
class LogicalProject:
    child: "LogicalNode"
    exprs: Optional[Tuple[Expr, ...]]  # None == SELECT *
    names: Optional[Tuple[str, ...]]

    def children(self) -> tuple:
        return (self.child,)

    def describe(self) -> str:
        if self.exprs is None:
            return "Project *"
        parts = ", ".join(
            f"{expr.render()} AS {name}" if expr.render() != name else name
            for expr, name in zip(self.exprs, self.names)
        )
        return f"Project {parts}"


@dataclass(frozen=True)
class LogicalDistinct:
    child: "LogicalNode"

    def children(self) -> tuple:
        return (self.child,)

    def describe(self) -> str:
        return "Distinct"


@dataclass(frozen=True)
class LogicalSort:
    child: "LogicalNode"
    keys: Tuple[str, ...]

    def children(self) -> tuple:
        return (self.child,)

    def describe(self) -> str:
        return f"Sort [{', '.join(self.keys)}]"


@dataclass(frozen=True)
class LogicalLimit:
    child: "LogicalNode"
    count: int

    def children(self) -> tuple:
        return (self.child,)

    def describe(self) -> str:
        return f"Limit {self.count}"


LogicalNode = Union[
    LogicalScan,
    LogicalJoin,
    LogicalFilter,
    LogicalAggregate,
    LogicalProject,
    LogicalDistinct,
    LogicalSort,
    LogicalLimit,
]


def explain_logical(node: LogicalNode, indent: int = 0) -> str:
    """Pretty-print a logical tree."""
    lines = ["  " * indent + "-> " + node.describe()]
    for child in node.children():
        lines.append(explain_logical(child, indent + 1))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Binder
# ----------------------------------------------------------------------
def _lift_aggregates(expr: Expr, specs: List[AggSpec], counter: List[int]) -> Expr:
    """Replace AggCall nodes inside a HAVING predicate by references to
    (possibly new, hidden) aggregate outputs."""
    from .expr import Arith, Between, BoolOp, Cmp, InList, Not

    if isinstance(expr, AggCall):
        rendered = expr.render()
        for spec in specs:
            if spec.func == expr.func and (
                (spec.expr is None and expr.arg is None)
                or (
                    spec.expr is not None
                    and expr.arg is not None
                    and spec.expr.render() == expr.arg.render()
                )
            ):
                return Col(spec.name)
        counter[0] += 1
        name = f"_having_{counter[0]}"
        specs.append(AggSpec(expr.func, expr.arg, name))
        return Col(name)
    if isinstance(expr, Cmp):
        return Cmp(
            expr.op,
            _lift_aggregates(expr.left, specs, counter),
            _lift_aggregates(expr.right, specs, counter),
        )
    if isinstance(expr, Arith):
        return Arith(
            expr.op,
            _lift_aggregates(expr.left, specs, counter),
            _lift_aggregates(expr.right, specs, counter),
        )
    if isinstance(expr, BoolOp):
        return BoolOp(
            expr.op, [_lift_aggregates(o, specs, counter) for o in expr.operands]
        )
    if isinstance(expr, Not):
        return Not(_lift_aggregates(expr.operand, specs, counter))
    if isinstance(expr, Between):
        return Between(
            _lift_aggregates(expr.operand, specs, counter),
            _lift_aggregates(expr.low, specs, counter),
            _lift_aggregates(expr.high, specs, counter),
        )
    if isinstance(expr, InList):
        return InList(_lift_aggregates(expr.operand, specs, counter), expr.values)
    return expr


def bind(statement: SelectStatement) -> LogicalNode:
    """Lower a parsed SELECT into a logical plan.

    Aggregate calls in the select list are lifted into a
    :class:`LogicalAggregate`; non-aggregate select items in a grouped query
    must be grouping columns (checked at physical planning, where schemas
    are known).  A HAVING predicate becomes a filter over the aggregate's
    output, with its aggregate calls lifted to (hidden) aggregate columns.
    """
    node: LogicalNode = LogicalScan(statement.table.table, statement.table.alias)
    for join in statement.joins:
        node = LogicalJoin(
            node,
            LogicalScan(join.table.table, join.table.alias),
            join.left_columns,
            join.right_columns,
        )
    if statement.where is not None:
        node = LogicalFilter(node, statement.where)

    agg_specs: List[AggSpec] = []
    select_exprs: List[Expr] = []
    select_names: List[str] = []
    star = False
    has_aggs = any(isinstance(item.expr, AggCall) for item in statement.items)
    grouped = bool(statement.group_by) or has_aggs or statement.having is not None

    counter = 0
    for item in statement.items:
        if item.expr is None:
            if grouped:
                raise BindError("SELECT * cannot be combined with GROUP BY")
            star = True
            continue
        if isinstance(item.expr, AggCall):
            counter += 1
            default = f"{item.expr.func.lower()}_{counter}"
            name = item.alias or default
            agg_specs.append(AggSpec(item.expr.func, item.expr.arg, name))
            select_exprs.append(Col(name))
            select_names.append(name)
        else:
            name = item.alias or item.expr.render()
            select_exprs.append(item.expr)
            select_names.append(name)

    if grouped:
        having = statement.having
        if having is not None:
            having = _lift_aggregates(having, agg_specs, [counter])
        node = LogicalAggregate(node, statement.group_by, tuple(agg_specs))
        if having is not None:
            node = LogicalFilter(node, having)

    if star:
        node = LogicalProject(node, None, None)
    else:
        node = LogicalProject(node, tuple(select_exprs), tuple(select_names))

    if statement.distinct:
        node = LogicalDistinct(node)
    if statement.order_by:
        node = LogicalSort(node, tuple(item.column for item in statement.order_by))
    if statement.limit is not None:
        node = LogicalLimit(node, statement.limit)
    return node

"""Physical operators for the mini engine (iterator model + metrics)."""
from .aggregate import (
    HashAggregate,
    PartialHashAggregate,
    PartialStreamAggregate,
    StreamAggregate,
)
from .base import AggSpec, Metrics, Operator
from .basic import Filter, HashDistinct, Limit, Project, SortedDistinct
from .joins import HashJoin, MergeJoin, NestedLoopJoin
from .scans import IndexScan, SeqScan, qualified_schema
from .sort import Sort
from .topn import TopN

__all__ = [
    "Operator",
    "Metrics",
    "AggSpec",
    "SeqScan",
    "IndexScan",
    "qualified_schema",
    "Filter",
    "Project",
    "Limit",
    "HashDistinct",
    "SortedDistinct",
    "Sort",
    "TopN",
    "HashAggregate",
    "StreamAggregate",
    "PartialHashAggregate",
    "PartialStreamAggregate",
    "HashJoin",
    "MergeJoin",
    "NestedLoopJoin",
]

"""Aggregation: hash-based and stream (sort-based) group-by.

The paper's Example 1 turns on exactly this choice: a group-by over a
stream already ordered compatibly with the grouping columns runs *on the
fly* (:class:`StreamAggregate` — group boundaries are found in the stream),
while an unordered input needs a partitioning operation
(:class:`HashAggregate`) or an explicit sort.
"""
from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from ..schema import Column, Schema
from ..types import DataType
from .base import AggSpec, Metrics, Operator
from .basic import _infer_dtype

__all__ = ["HashAggregate", "StreamAggregate"]


def _output_schema(
    child: Operator, group_columns: Tuple[str, ...], aggregates: Tuple[AggSpec, ...]
) -> Schema:
    columns: List[Column] = []
    for name in group_columns:
        resolved = child.schema.resolve(name)
        columns.append(Column(resolved, child.schema.dtype_of(resolved)))
    for spec in aggregates:
        if spec.func == "COUNT":
            dtype = DataType.INT
        elif spec.expr is not None and spec.func in ("MIN", "MAX", "SUM"):
            dtype = _infer_dtype(spec.expr, child.schema)
        else:
            dtype = DataType.FLOAT
        columns.append(Column(spec.name, dtype))
    return Schema(columns)


class _AggregateBase(Operator):
    def __init__(
        self,
        child: Operator,
        group_columns: Sequence[str],
        aggregates: Sequence[AggSpec],
    ) -> None:
        self.child = child
        self.group_columns: Tuple[str, ...] = tuple(
            child.schema.resolve(column) for column in group_columns
        )
        self.aggregates: Tuple[AggSpec, ...] = tuple(aggregates)
        self.schema = _output_schema(child, self.group_columns, self.aggregates)
        self._group_positions = tuple(
            child.schema.position(column) for column in self.group_columns
        )
        self._agg_fns = [
            spec.expr.compile_against(child.schema) if spec.expr is not None else None
            for spec in self.aggregates
        ]

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def _key(self, row: tuple) -> tuple:
        return tuple(row[i] for i in self._group_positions)

    def _fresh_states(self):
        return [spec.make_state() for spec in self.aggregates]

    def _update(self, states, row) -> None:
        for state, fn in zip(states, self._agg_fns):
            state.update(fn(row) if fn is not None else 1)

    def _emit(self, key: tuple, states) -> tuple:
        return key + tuple(state.result() for state in states)

    def label(self) -> str:
        parts = list(self.group_columns) + [
            f"{spec.render()} AS {spec.name}" for spec in self.aggregates
        ]
        return f"{type(self).__name__}({', '.join(parts)})"


class HashAggregate(_AggregateBase):
    """Group-by via a hash partition; output order is unspecified.

    (We emit groups in first-seen order, but the operator *advertises* no
    ordering — downstream consumers must not rely on it.)
    """

    ordering: Tuple[str, ...] = ()

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        groups: Dict[tuple, list] = {}
        for row in self.child.execute(metrics):
            metrics.add("hash_build_rows")
            key = self._key(row)
            states = groups.get(key)
            if states is None:
                states = self._fresh_states()
                groups[key] = states
            self._update(states, row)
        if not groups and not self.group_columns:
            # SQL semantics: a global aggregate over zero rows yields one row
            # (COUNT 0, SUM/MIN/MAX of nothing).
            yield self._emit((), self._fresh_states())
            return
        for key, states in groups.items():
            yield self._emit(key, states)


class StreamAggregate(_AggregateBase):
    """Group-by over a stream ordered compatibly with the grouping columns.

    Emits a group whenever the grouping key changes — no hash table, no
    sort, O(1) memory.  **Precondition** (the optimizer's obligation, via
    order properties + ODs): equal grouping keys arrive contiguously.
    Output ordering: the input ordering survives to the prefix made of
    grouping columns.
    """

    def __init__(self, child, group_columns, aggregates) -> None:
        super().__init__(child, group_columns, aggregates)
        # OrderSpec.restrict: the input order survives up to the prefix
        # made of grouping columns.
        self.ordering = tuple(child.provides().restrict(self.group_columns))

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        current_key = None
        states = None
        for row in self.child.execute(metrics):
            key = self._key(row)
            if states is None:
                current_key, states = key, self._fresh_states()
            elif key != current_key:
                yield self._emit(current_key, states)
                current_key, states = key, self._fresh_states()
            self._update(states, row)
        if states is not None:
            yield self._emit(current_key, states)
        elif not self.group_columns:
            # SQL semantics for a global aggregate over zero rows.
            yield self._emit((), self._fresh_states())

"""Aggregation: hash-based and stream (sort-based) group-by.

The paper's Example 1 turns on exactly this choice: a group-by over a
stream already ordered compatibly with the grouping columns runs *on the
fly* (:class:`StreamAggregate` — group boundaries are found in the stream),
while an unordered input needs a partitioning operation
(:class:`HashAggregate`) or an explicit sort.

Both also have vectorized paths: :class:`HashAggregate` folds whole
batches into per-aggregate accumulator dicts (``Counter`` for the shared
row counts — also the first-seen emission order — plus one dict per
SUM/AVG/MIN/MAX), :class:`StreamAggregate` splits each batch into
contiguous key runs and folds each run in one ``update_many`` step.  Both
reproduce the row path's results bit-for-bit (same per-group fold order,
same float associativity).
"""
from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..batch import DEFAULT_BATCH_SIZE, ColumnBatch
from ..expr import vectorized_kernel
from ..schema import Column, Schema
from ..types import DataType
from .base import AggSpec, Metrics, Operator
from .basic import _infer_dtype

__all__ = [
    "HashAggregate",
    "StreamAggregate",
    "PartialHashAggregate",
    "PartialStreamAggregate",
]


def _output_schema(
    child: Operator, group_columns: Tuple[str, ...], aggregates: Tuple[AggSpec, ...]
) -> Schema:
    columns: List[Column] = []
    for name in group_columns:
        resolved = child.schema.resolve(name)
        columns.append(Column(resolved, child.schema.dtype_of(resolved)))
    for spec in aggregates:
        if spec.func == "COUNT":
            dtype = DataType.INT
        elif spec.expr is not None and spec.func in ("MIN", "MAX", "SUM"):
            dtype = _infer_dtype(spec.expr, child.schema)
        else:
            dtype = DataType.FLOAT
        columns.append(Column(spec.name, dtype))
    return Schema(columns)


class _AggregateBase(Operator):
    """Aggregates are not partition-transparent (``partition_kind`` stays
    ``None``): a two-phase partial/final split would re-associate float
    SUM/AVG folds — ``(a+b)+(c+d)`` is not bit-identical to
    ``((a+b)+c)+d`` — and HashAggregate's first-seen emission order is a
    whole-stream fact.  Exchange placement therefore parallelizes the
    *input* chain and keeps the fold serial, preserving the exact
    bit-for-bit results the differential harness demands."""

    def __init__(
        self,
        child: Operator,
        group_columns: Sequence[str],
        aggregates: Sequence[AggSpec],
    ) -> None:
        self.child = child
        self.group_columns: Tuple[str, ...] = tuple(
            child.schema.resolve(column) for column in group_columns
        )
        self.aggregates: Tuple[AggSpec, ...] = tuple(aggregates)
        self.schema = _output_schema(child, self.group_columns, self.aggregates)
        self._group_positions = tuple(
            child.schema.position(column) for column in self.group_columns
        )
        self._agg_fns = [
            spec.expr.compile_against(child.schema) if spec.expr is not None else None
            for spec in self.aggregates
        ]
        self._agg_kernels: Optional[list] = None  # compiled on first batch

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def _kernels(self) -> list:
        """Vectorized argument evaluators, one per aggregate (``None``
        for ``COUNT(*)``)."""
        kernels = self._agg_kernels
        if kernels is None:
            child_schema = self.child.schema
            kernels = self._agg_kernels = [
                vectorized_kernel(spec.expr, child_schema)
                if spec.expr is not None
                else None
                for spec in self.aggregates
            ]
        return kernels

    def _batch_keys(self, batch: ColumnBatch):
        """The grouping-key vector for one batch: the bare column for a
        single grouping column, row tuples otherwise."""
        positions = self._group_positions
        if len(positions) == 1:
            return batch.columns[positions[0]]
        return list(zip(*(batch.columns[p] for p in positions)))

    def _global_batches(
        self, metrics: Metrics, batch_size: int, counter: Optional[str]
    ) -> Iterator[ColumnBatch]:
        """The no-grouping-columns case shared by both aggregates: every
        row lands in one group, which SQL emits even over zero rows."""
        kernels = self._kernels()
        states = self._fresh_states()
        for batch in self.child.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            length = len(batch)
            if counter is not None:
                metrics.add(counter, length)
            for state, kernel in zip(states, kernels):
                state.update_many(
                    kernel(batch.columns, length) if kernel is not None else None,
                    length,
                )
        yield ColumnBatch.from_rows(self.schema, [self._emit((), states)])

    def _key(self, row: tuple) -> tuple:
        return tuple(row[i] for i in self._group_positions)

    def _fresh_states(self):
        return [spec.make_state() for spec in self.aggregates]

    def _update(self, states, row) -> None:
        for state, fn in zip(states, self._agg_fns):
            state.update(fn(row) if fn is not None else 1)

    def _emit(self, key: tuple, states) -> tuple:
        return key + tuple(state.result() for state in states)

    def label(self) -> str:
        parts = list(self.group_columns) + [
            f"{spec.render()} AS {spec.name}" for spec in self.aggregates
        ]
        return f"{type(self).__name__}({', '.join(parts)})"

    def trace_args(self) -> dict:
        return {
            "group_by": ", ".join(self.group_columns),
            "aggs": ", ".join(spec.render() for spec in self.aggregates),
        }


class HashAggregate(_AggregateBase):
    """Group-by via a hash partition; output order is unspecified.

    (We emit groups in first-seen order, but the operator *advertises* no
    ordering — downstream consumers must not rely on it.)
    """

    ordering: Tuple[str, ...] = ()

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        groups: Dict[tuple, list] = {}
        for row in self.child.execute(metrics):
            metrics.add("hash_build_rows")
            key = self._key(row)
            states = groups.get(key)
            if states is None:
                states = self._fresh_states()
                groups[key] = states
            self._update(states, row)
        if not groups and not self.group_columns:
            # SQL semantics: a global aggregate over zero rows yields one row
            # (COUNT 0, SUM/MIN/MAX of nothing).
            yield self._emit((), self._fresh_states())
            return
        for key, states in groups.items():
            yield self._emit(key, states)

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Fold batches into per-aggregate accumulator dicts.

        The shared ``Counter`` of group row counts serves COUNT and AVG
        *and* fixes the emission order (dicts keep first-insertion order,
        so iteration reproduces the row path's first-seen group order);
        SUM/AVG accumulate per key in row order, keeping float results
        bit-identical to the incremental row-mode states.
        """
        if not self.group_columns:
            yield from self._global_batches(metrics, batch_size, "hash_build_rows")
            return
        kernels = self._kernels()
        single = len(self._group_positions) == 1
        counts: Counter = Counter()
        # per-aggregate accumulators (COUNT/AVG share ``counts``)
        folds: List[tuple] = [
            (spec.func, kernel, defaultdict(int) if spec.func in ("SUM", "AVG") else {})
            for spec, kernel in zip(self.aggregates, kernels)
        ]
        for batch in self.child.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            length = len(batch)
            metrics.add("hash_build_rows", length)
            keys = self._batch_keys(batch)
            counts.update(keys)
            for func, kernel, accumulator in folds:
                if func == "COUNT":
                    continue
                values = kernel(batch.columns, length)
                if func in ("SUM", "AVG"):
                    for key, value in zip(keys, values):
                        accumulator[key] += value
                elif func == "MIN":
                    get = accumulator.get
                    for key, value in zip(keys, values):
                        current = get(key)
                        if current is None or value < current:
                            accumulator[key] = value
                else:  # MAX
                    get = accumulator.get
                    for key, value in zip(keys, values):
                        current = get(key)
                        if current is None or value > current:
                            accumulator[key] = value

        out: List[tuple] = []
        schema = self.schema
        for key in counts:
            results = []
            for func, _, accumulator in folds:
                if func == "COUNT":
                    results.append(counts[key])
                elif func == "SUM":
                    # SQL: SUM of zero rows is NULL — never let the
                    # defaultdict fabricate an int 0 for an uncounted key.
                    results.append(accumulator[key] if counts[key] else None)
                elif func == "AVG":
                    results.append(accumulator[key] / counts[key])
                else:
                    results.append(accumulator[key])
            out.append(((key,) if single else key) + tuple(results))
            if len(out) >= batch_size:
                yield ColumnBatch.from_rows(schema, out)
                out = []
        if out:
            yield ColumnBatch.from_rows(schema, out)


class StreamAggregate(_AggregateBase):
    """Group-by over a stream ordered compatibly with the grouping columns.

    Emits a group whenever the grouping key changes — no hash table, no
    sort, O(1) memory.  **Precondition** (the optimizer's obligation, via
    order properties + ODs): equal grouping keys arrive contiguously.
    Output ordering: the input ordering survives to the prefix made of
    grouping columns.
    """

    def __init__(self, child, group_columns, aggregates) -> None:
        super().__init__(child, group_columns, aggregates)
        # OrderSpec.restrict: the input order survives up to the prefix
        # made of grouping columns.
        self.ordering = tuple(child.provides().restrict(self.group_columns))

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        current_key = None
        states = None
        for row in self.child.execute(metrics):
            key = self._key(row)
            if states is None:
                current_key, states = key, self._fresh_states()
            elif key != current_key:
                yield self._emit(current_key, states)
                current_key, states = key, self._fresh_states()
            self._update(states, row)
        if states is not None:
            yield self._emit(current_key, states)
        elif not self.group_columns:
            # SQL semantics for a global aggregate over zero rows.
            yield self._emit((), self._fresh_states())

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Split each batch into contiguous key runs and fold each run in
        one ``update_many`` step (bit-identical to the per-row fold).  A
        run spanning a batch boundary keeps accumulating into the carried
        states — the operator's contiguity precondition guarantees the key
        never reappears later."""
        if not self.group_columns:
            yield from self._global_batches(metrics, batch_size, None)
            return
        kernels = self._kernels()
        single = len(self._group_positions) == 1
        current_key = None
        states = None
        out: List[tuple] = []
        schema = self.schema
        for batch in self.child.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            length = len(batch)
            if not length:
                continue
            keys = self._batch_keys(batch)
            vectors = [
                kernel(batch.columns, length) if kernel is not None else None
                for kernel in kernels
            ]
            start = 0
            while start < length:
                key = keys[start]
                stop = start + 1
                while stop < length and keys[stop] == key:
                    stop += 1
                if states is None:
                    current_key, states = key, self._fresh_states()
                elif key != current_key:
                    out.append(
                        self._emit(
                            (current_key,) if single else current_key, states
                        )
                    )
                    current_key, states = key, self._fresh_states()
                for state, vector in zip(states, vectors):
                    state.update_many(
                        vector[start:stop] if vector is not None else None,
                        stop - start,
                    )
                start = stop
            while len(out) >= batch_size:
                yield ColumnBatch.from_rows(schema, out[:batch_size])
                del out[:batch_size]
        if states is not None:
            out.append(self._emit((current_key,) if single else current_key, states))
        if out:
            yield ColumnBatch.from_rows(schema, out)


class PartialHashAggregate(HashAggregate):
    """A rewrite-introduced partial fold placed *below* a join (eager
    aggregation).  Execution is exactly :class:`HashAggregate` — the split
    into partial + final stages is the logical rewrite's responsibility
    (`repro.optimizer.rewrite_pack`), which only fires for decomposable
    aggregates (COUNT/SUM/MIN/MAX) with integer-typed SUM arguments so the
    recombined results are value-identical to the unrewritten fold.  The
    subclass exists so EXPLAIN trees and tests can tell the stages apart."""


class PartialStreamAggregate(StreamAggregate):
    """Streaming variant of :class:`PartialHashAggregate` — chosen by the
    planner when the partial group columns are provably ordered (the same
    order-property reasoning that picks :class:`StreamAggregate`)."""

"""Operator framework: the iterator model with work accounting.

Every physical operator exposes

* ``schema`` — its output :class:`~repro.engine.schema.Schema`;
* ``ordering`` — the attribute list its output stream is *guaranteed* sorted
  by (Simmen-style order property; the currency of all the paper's rewrites),
  derived per operator from the input's spec via the
  :class:`~repro.optimizer.properties.OrderSpec` algebra and exposed to the
  planner as :meth:`Operator.provides`;
* ``execute(metrics)`` — a generator of rows, charging its work to the
  shared :class:`Metrics`;
* ``execute_batches(metrics, batch_size)`` — the vectorized mode: a
  generator of :class:`~repro.engine.batch.ColumnBatch` chunks, charging
  the *same counter totals* per batch (with row counts) so ``work`` stays
  comparable across modes;
* ``explain_lines()`` — the pretty plan tree.

``Metrics`` totals are what the benchmark harness compares across plans:
the OD rewrites show up as sorts and joins that simply never run.
"""
from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..batch import DEFAULT_BATCH_SIZE, ColumnBatch, batches_from_rows
from ..expr import Expr
from ..schema import Schema

__all__ = ["Metrics", "Operator", "AggSpec", "order_spec"]

#: Memoized :class:`~repro.optimizer.properties.OrderSpec` class — imported
#: on first use (never at module import) so the engine layer has no
#: import-time dependency on the optimizer package (which itself imports
#: the engine's operators), without paying the import-machinery lookup on
#: every ``provides()`` call.
_ORDER_SPEC_CLS = None


def order_spec(columns: Sequence[str] = ()) -> "Any":
    """Build an :class:`~repro.optimizer.properties.OrderSpec`."""
    global _ORDER_SPEC_CLS
    if _ORDER_SPEC_CLS is None:
        from ...optimizer.properties import OrderSpec

        _ORDER_SPEC_CLS = OrderSpec
    return _ORDER_SPEC_CLS(columns)


@dataclass
class Metrics:
    """Work counters shared by all operators of one execution.

    ``token`` is the execution's optional
    :class:`~repro.engine.errors.CancelToken`: operators call
    :meth:`check_cancel` once per batch (and per ~1k rows in row-mode
    scans) so deadlines and consumer-side cancellation land
    cooperatively.  It is *not* a counter — parity comparisons look only
    at :attr:`counters`, and worker-side Metrics never carry one (the
    consumer enforces deadlines while pumping).
    """

    counters: Dict[str, int] = field(default_factory=dict)
    token: Optional[Any] = None
    #: Optional :class:`~repro.obs.tracer.Tracer` (duck-typed — the engine
    #: never imports :mod:`repro.obs`).  ``None`` means tracing is off and
    #: the operator wrappers return the raw stream untouched.
    tracer: Optional[Any] = None
    #: Revision stamp for the :attr:`work` cache — bumped by every
    #: :meth:`add` so repeated ``work`` reads (EXPLAIN ANALYZE, snapshots)
    #: don't recompute the weighted sum against unchanged counters.
    _rev: int = field(default=0, init=False, repr=False, compare=False)
    _work_rev: int = field(default=-1, init=False, repr=False, compare=False)
    _work_cache: float = field(default=0.0, init=False, repr=False, compare=False)

    def add(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount
        self._rev += 1

    def check_cancel(self) -> None:
        """Raise the typed timeout/cancel error if the token says stop."""
        token = self.token
        if token is not None:
            token.check()

    def get(self, key: str) -> int:
        return self.counters.get(key, 0)

    @property
    def work(self) -> float:
        """A single scalar summary: rows touched, with sorts and probes
        weighted as in :mod:`repro.engine.cost`.  Cached against the
        counter revision — counters only change through :meth:`add`."""
        if self._work_rev == self._rev:
            return self._work_cache
        total = 0.0
        total += self.get("rows_scanned")
        total += 4.0 * self.get("index_probes")
        total += 1.5 * (self.get("hash_build_rows") + self.get("hash_probe_rows"))
        sort_rows = self.get("sort_rows")
        if sort_rows > 1:
            total += 1.2 * sort_rows * math.log2(sort_rows)
        self._work_cache = total
        self._work_rev = self._rev
        return total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"Metrics({inner}, work={self.work:.0f})"


def _traced(fn: Callable, mode: str) -> Callable:
    """Wrap an ``execute``/``execute_batches`` method for span capture.

    Pay-as-you-go contract: with no tracer on the ``Metrics`` the wrapper
    returns the raw stream — one attribute read and one ``is None`` test
    per *stream creation* (never per row/batch), so the disabled-tracer
    overhead is unmeasurable next to execution itself.
    """

    def wrapper(self, metrics, *args, **kwargs):
        stream = fn(self, metrics, *args, **kwargs)
        tracer = metrics.tracer
        if tracer is None:
            return stream
        return tracer.wrap_stream(self, stream, mode)

    wrapper._obs_traced = True
    wrapper.__wrapped__ = fn
    wrapper.__name__ = getattr(fn, "__name__", mode)
    wrapper.__doc__ = fn.__doc__
    return wrapper


class Operator:
    """Base class for physical operators."""

    def __init_subclass__(cls, **kwargs) -> None:
        """Install trace wrappers on every subclass's own execution
        methods — one hook instead of editing every operator module's
        hot loops (which stay byte-for-byte untouched)."""
        super().__init_subclass__(**kwargs)
        for name, mode in (("execute", "row"), ("execute_batches", "batch")):
            fn = cls.__dict__.get(name)
            if fn is not None and not getattr(fn, "_obs_traced", False):
                setattr(cls, name, _traced(fn, mode))

    #: Output schema; set by subclasses.
    schema: Schema
    #: Guaranteed output ordering (exact column names, ascending).  Each
    #: subclass *declares* this from its input's spec — the planner reads
    #: it back via :meth:`provides` instead of re-deriving it.
    ordering: Tuple[str, ...] = ()
    #: How this operator participates in partitioned (parallel) execution
    #: — the hook :func:`repro.engine.parallel.insert_exchanges` reads:
    #:
    #: * ``"source"`` — a leaf that can split itself into contiguous
    #:   partitions (implements :meth:`partition_clone`);
    #: * ``"transparent"`` — a unary operator that preserves per-row
    #:   independence and relative order, so it can be cloned above each
    #:   partition (implements :meth:`partition_through`);
    #: * ``"barrier"`` — parallelism must not be introduced anywhere in
    #:   this operator's subtree (``Limit``: early termination);
    #: * ``None`` — not partitionable itself; exchange placement recurses
    #:   into the children instead.
    partition_kind: Optional[str] = None

    def provides(self) -> "Any":
        """The :class:`~repro.optimizer.properties.OrderSpec` this
        operator's output stream is guaranteed sorted by."""
        return order_spec(self.ordering)

    # ------------------------------------------------------------------
    # Partitioned-execution hooks (see :mod:`repro.engine.parallel`)
    # ------------------------------------------------------------------
    def partition_clone(self, index: int, count: int) -> "Optional[Operator]":
        """``"source"`` hook: this operator, restricted to its ``index``-th
        of ``count`` contiguous partitions.  The partition streams must
        concatenate (in index order) to exactly this operator's stream,
        each must honor the declared :attr:`ordering`, and their metrics
        charges must *sum* to this operator's (per-execute charges belong
        to partition 0 alone)."""
        return None

    def partition_through(self, child: "Operator") -> "Optional[Operator]":
        """``"transparent"`` hook: rebuild this unary operator over a
        partition of its child.  Sound only for operators that decide each
        row independently and preserve relative order — then clone streams
        concatenate to the serial stream and charges stay row-linear."""
        return None

    def replace_child(self, old: "Operator", new: "Operator") -> None:
        """Rewire one direct child in place (physical transforms such as
        exchange placement).  Sound only when ``new`` has the same schema
        and ordering as ``old`` — parents precompile against the child
        schema at construction."""
        for name, value in vars(self).items():
            if value is old:
                setattr(self, name, new)
                return
        raise ValueError(f"{self.label()}: {old.label()} is not a child")

    def prepare_parallel(self) -> None:
        """Build lazily-cached shared state (columnar views, index arrays,
        compiled kernels) *before* worker threads start pulling, so the
        caches are written single-threaded.  Default: recurse."""
        for child in self.children():
            child.prepare_parallel()

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        raise NotImplementedError

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Vectorized execution: yield :class:`ColumnBatch` chunks.

        The batch stream carries the same :attr:`ordering` guarantee as
        the row stream (batches in stream order, rows in order within
        each batch) and charges the same counter *totals* to ``metrics``.
        This default adapts the row path (exact metrics parity by
        construction); operators with columnar fast paths override it.
        """
        for batch in batches_from_rows(
            self.schema, self.execute(metrics), batch_size
        ):
            metrics.check_cancel()
            yield batch

    def children(self) -> Sequence["Operator"]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def trace_args(self) -> Dict[str, Any]:
        """Extra key/values stamped into this operator's trace spans.

        Must be cheap and static (called once per stream creation when
        tracing); default is nothing."""
        return {}

    def explain_lines(self, indent: int = 0) -> List[str]:
        lines = ["  " * indent + "-> " + self.label()]
        for child in self.children():
            lines.extend(child.explain_lines(indent + 1))
        return lines

    def explain(self) -> str:
        """The full plan tree as text."""
        return "\n".join(self.explain_lines())

    def run(
        self, token: Optional[Any] = None, tracer: Optional[Any] = None
    ) -> "tuple[List[tuple], Metrics]":
        """Execute to completion, returning (rows, metrics).  ``token``
        is an optional :class:`~repro.engine.errors.CancelToken` enforced
        cooperatively throughout; ``tracer`` an optional
        :class:`~repro.obs.tracer.Tracer` capturing per-operator spans."""
        if tracer is not None:
            tracer.register_plan(self)
        metrics = Metrics(token=token, tracer=tracer)
        rows = list(self.execute(metrics))
        return rows, metrics

    def run_batches(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        token: Optional[Any] = None,
        tracer: Optional[Any] = None,
    ) -> "tuple[List[tuple], Metrics]":
        """Execute in vectorized mode to completion, flattening batches
        back to row tuples — bit-identical to :meth:`run`."""
        if tracer is not None:
            tracer.register_plan(self)
        metrics = Metrics(token=token, tracer=tracer)
        rows: List[tuple] = []
        for batch in self.execute_batches(metrics, batch_size):
            rows.extend(batch.rows())
        return rows, metrics


# The base row→batch adapter is Operator's own method, so the subclass
# hook never sees it — wrap it once here.  Subclasses overriding
# ``execute_batches`` get their own wrapper from ``__init_subclass__``.
Operator.execute_batches = _traced(Operator.__dict__["execute_batches"], "batch")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate in a group-by: ``func(expr) AS name``.

    ``func`` ∈ {COUNT, SUM, AVG, MIN, MAX}; ``expr`` is ``None`` for
    ``COUNT(*)``.
    """

    func: str
    expr: Optional[Expr]
    name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "func", self.func.upper())
        if self.func not in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
            raise ValueError(f"unsupported aggregate {self.func!r}")
        if self.expr is None and self.func != "COUNT":
            raise ValueError(f"{self.func} requires an argument")

    def make_state(self) -> "_AggState":
        return _AggState(self.func)

    def render(self) -> str:
        arg = "*" if self.expr is None else self.expr.render()
        return f"{self.func}({arg})"


class _AggState:
    """Incremental aggregate accumulator."""

    __slots__ = ("func", "count", "total", "minimum", "maximum")

    def __init__(self, func: str) -> None:
        self.func = func
        self.count = 0
        self.total: Any = 0
        self.minimum: Any = None
        self.maximum: Any = None

    def update(self, value: Any) -> None:
        self.count += 1
        if self.func in ("SUM", "AVG"):
            self.total += value
        elif self.func == "MIN":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif self.func == "MAX":
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def update_many(self, values: Optional[Sequence[Any]], count: int) -> None:
        """Fold ``count`` rows in one step (``values`` is the evaluated
        argument vector, ``None`` for ``COUNT(*)``).

        Bit-identical to ``count`` sequential :meth:`update` calls:
        ``sum(values, start)`` adds left-to-right from the running total
        (same float associativity), and min/max comparisons keep the
        earlier element on ties exactly as the incremental loop does.
        """
        if not count:
            return
        self.count += count
        if values is None:
            return
        if self.func in ("SUM", "AVG"):
            self.total = sum(values, self.total)
        elif self.func == "MIN":
            smallest = min(values)
            if self.minimum is None or smallest < self.minimum:
                self.minimum = smallest
        elif self.func == "MAX":
            largest = max(values)
            if self.maximum is None or largest > self.maximum:
                self.maximum = largest

    def result(self) -> Any:
        if self.func == "COUNT":
            return self.count
        if self.func == "SUM":
            # SQL: SUM over zero rows is NULL, not 0 — ``total`` starts at
            # the int 0 only as an accumulator identity, never a result.
            return self.total if self.count else None
        if self.func == "AVG":
            return self.total / self.count if self.count else None
        if self.func == "MIN":
            return self.minimum
        return self.maximum

"""Streaming operators: Filter, Project, Limit, Distinct.

Each documents how it transforms the *order property* of its input — the
bookkeeping that lets the optimizer know when a downstream sort is
unnecessary — and provides both a row-at-a-time ``execute`` and a
vectorized ``execute_batches`` (Filter/Project evaluate expressions
through the fused kernels of :mod:`repro.engine.expr`).
"""
from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from ..batch import DEFAULT_BATCH_SIZE, ColumnBatch
from ..expr import Col, Expr, vectorized_kernel
from ..schema import Column, Schema
from ..types import DataType
from .base import Metrics, Operator

__all__ = ["Filter", "Project", "Limit", "HashDistinct", "SortedDistinct"]


class Filter(Operator):
    """Predicate filter; preserves input ordering.

    Partition-transparent: the predicate decides each row independently
    and survivors keep their relative order, so a clone above each
    contiguous partition concatenates to the serial stream with
    row-linear (``rows_filtered``) charges that sum exactly.
    """

    partition_kind = "transparent"

    def __init__(self, child: Operator, predicate: Expr) -> None:
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self.ordering = child.ordering  # order-preserving: same spec as input
        self._compiled = predicate.compile_against(child.schema)
        self._kernel = None  # vectorized predicate, compiled on first batch

    def partition_through(self, child: Operator) -> "Filter":
        return Filter(child, self.predicate)

    def prepare_parallel(self) -> None:
        if self._kernel is None:
            self._kernel = vectorized_kernel(self.predicate, self.child.schema)
        self.child.prepare_parallel()

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        compiled = self._compiled
        for row in self.child.execute(metrics):
            metrics.add("rows_filtered")
            if compiled(row):
                yield row

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """One kernel call builds the selection mask for a whole batch;
        surviving rows keep their relative (stream) order."""
        kernel = self._kernel
        if kernel is None:
            kernel = self._kernel = vectorized_kernel(
                self.predicate, self.child.schema
            )
        for batch in self.child.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            length = len(batch)
            metrics.add("rows_filtered", length)
            out = batch.filter(kernel(batch.columns, length))
            if len(out):
                yield out

    def label(self) -> str:
        return f"Filter({self.predicate.render()})"

    def trace_args(self) -> dict:
        return {"predicate": self.predicate.render()}

    # Picklable for process-backend shipping: the compiled row closure
    # and vectorized kernel are code objects (unpicklable) *derived from*
    # the predicate — ship the constructor args, recompile in the worker.
    def __getstate__(self):
        return (self.child, self.predicate)

    def __setstate__(self, state):
        child, predicate = state
        self.__init__(child, predicate)


class Project(Operator):
    """Compute output expressions (projection / renaming).

    Ordering propagation: the output is ordered by the longest prefix of the
    input ordering whose columns survive as pass-through ``Col`` outputs
    (renamed accordingly).

    Partition-transparent: output expressions are pure row-wise functions,
    so a clone above each contiguous partition concatenates to the serial
    stream (Project charges no counters at all).
    """

    partition_kind = "transparent"

    def __init__(
        self,
        child: Operator,
        exprs: Sequence[Expr],
        names: Sequence[str],
    ) -> None:
        if len(exprs) != len(names):
            raise ValueError("Project: exprs/names length mismatch")
        self.child = child
        self.exprs = tuple(exprs)
        self.names = tuple(names)
        self.schema = Schema(
            Column(name, _infer_dtype(expr, child.schema))
            for name, expr in zip(self.names, self.exprs)
        )
        self._compiled = [expr.compile_against(child.schema) for expr in self.exprs]
        self._kernels = None  # vectorized outputs, compiled on first batch
        self.ordering = self._propagate_ordering()

    def partition_through(self, child: Operator) -> "Project":
        return Project(child, self.exprs, self.names)

    def prepare_parallel(self) -> None:
        if self._kernels is None:
            child_schema = self.child.schema
            self._kernels = [
                vectorized_kernel(expr, child_schema) for expr in self.exprs
            ]
        self.child.prepare_parallel()

    def _propagate_ordering(self) -> Tuple[str, ...]:
        rename: dict = {}
        for expr, name in zip(self.exprs, self.names):
            if isinstance(expr, Col):
                resolved = self.child.schema.resolve(expr.name)
                rename.setdefault(resolved, name)
        # OrderSpec.rename: the longest surviving prefix, renamed; ordering
        # beyond a dropped column is lost.
        return tuple(self.child.provides().rename(rename))

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        compiled = self._compiled
        for row in self.child.execute(metrics):
            yield tuple(fn(row) for fn in compiled)

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """One kernel call per output column per batch (pass-through
        columns are shared, not copied)."""
        kernels = self._kernels
        if kernels is None:
            child_schema = self.child.schema
            kernels = self._kernels = [
                vectorized_kernel(expr, child_schema) for expr in self.exprs
            ]
        schema = self.schema
        for batch in self.child.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            length = len(batch)
            if not length:
                continue
            columns = batch.columns
            yield ColumnBatch(
                schema, [kernel(columns, length) for kernel in kernels], length
            )

    def label(self) -> str:
        parts = ", ".join(
            f"{expr.render()} AS {name}" if expr.render() != name else name
            for expr, name in zip(self.exprs, self.names)
        )
        return f"Project({parts})"

    def trace_args(self) -> dict:
        return {"names": ", ".join(self.names)}

    # Picklable for process-backend shipping: compiled closures/kernels
    # are derived state — ship the constructor args, recompile in the
    # worker (expressions themselves are frozen dataclasses, picklable).
    def __getstate__(self):
        return (self.child, self.exprs, self.names)

    def __setstate__(self, state):
        child, exprs, names = state
        self.__init__(child, exprs, names)


def _infer_dtype(expr: Expr, schema: Schema) -> DataType:
    """Best-effort output typing; falls back to FLOAT for computed values."""
    if isinstance(expr, Col):
        return schema.dtype_of(expr.name)
    from ..expr import Func, Lit

    if isinstance(expr, Lit):
        import datetime

        if isinstance(expr.value, bool):
            return DataType.BOOL
        if isinstance(expr.value, int):
            return DataType.INT
        if isinstance(expr.value, float):
            return DataType.FLOAT
        if isinstance(expr.value, datetime.date):
            return DataType.DATE
        return DataType.STR
    if isinstance(expr, Func) and expr.name in (
        "YEAR",
        "QUARTER",
        "MONTH",
        "DAY",
        "DAY_OF_YEAR",
        "WEEK",
        "LENGTH",
    ):
        return DataType.INT
    return DataType.FLOAT


class Limit(Operator):
    """First ``n`` rows; preserves ordering.

    Deliberately has **no native batch path**: the base-class adapter runs
    the subtree in row mode.  Limit is the one operator that stops pulling
    its child early, and a columnar child would charge whole batches of
    scan work the row path never does — the adapter keeps early-
    termination (and therefore metrics parity between modes) exact, and a
    LIMIT plan's output is bounded anyway.

    For the same reason Limit is a parallelism **barrier**: exchange
    placement never descends into its subtree — eagerly drained partitions
    would charge scan work the early-terminating serial path never does.
    """

    partition_kind = "barrier"

    def __init__(self, child: Operator, count: int) -> None:
        self.child = child
        self.count = count
        self.schema = child.schema
        self.ordering = child.ordering  # order-preserving: same spec as input

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        emitted = 0
        for row in self.child.execute(metrics):
            if emitted >= self.count:
                break
            emitted += 1
            yield row

    def label(self) -> str:
        return f"Limit({self.count})"


class HashDistinct(Operator):
    """Duplicate elimination via hashing; destroys ordering.

    Not partition-transparent (``partition_kind`` stays ``None``): which
    duplicate survives depends on cross-partition state (the first
    occurrence in the *whole* stream), so exchange placement parallelizes
    below it, never through it.
    """

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.schema = child.schema
        self.ordering = ()

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        seen: set = set()
        for row in self.child.execute(metrics):
            metrics.add("hash_probe_rows")
            if row not in seen:
                seen.add(row)
                yield row

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        seen: set = set()
        add = seen.add
        schema = self.schema
        for batch in self.child.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            metrics.add("hash_probe_rows", len(batch))
            out: List[tuple] = []
            append = out.append
            for row in batch.rows():
                if row not in seen:
                    add(row)
                    append(row)
            if out:
                yield ColumnBatch.from_rows(schema, out)

    def label(self) -> str:
        return "HashDistinct"


class SortedDistinct(Operator):
    """Duplicate elimination over a sorted stream — no hash table needed.

    Requires the input ordered by (at least) all output columns; valid when
    the optimizer can prove it via order properties, exactly the "distinct
    is exchangeable with group-by" observation of Section 2.3.

    Not partition-transparent: run suppression carries state across rows
    (a run spanning a partition boundary would emit twice), so exchange
    placement parallelizes below it, never through it.
    """

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.schema = child.schema
        self.ordering = child.ordering  # order-preserving: same spec as input

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        previous: Optional[tuple] = None
        for row in self.child.execute(metrics):
            if row != previous:
                yield row
                previous = row

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        previous: Optional[tuple] = None  # carried across batch boundaries
        schema = self.schema
        for batch in self.child.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            out: List[tuple] = []
            append = out.append
            for row in batch.rows():
                if row != previous:
                    append(row)
                    previous = row
            if out:
                yield ColumnBatch.from_rows(schema, out)

    def label(self) -> str:
        return "SortedDistinct"

"""Join operators: hash join, sort-merge join, nested loops.

The Section 2.3 date rewrite's payoff is a :class:`HashJoin` (fact ⋈
date_dim) that disappears entirely; the sort-merge join is where "a sort on
input can be removed" when ODs prove an existing stream order equivalent to
the required one ([17]'s motivation).
"""
from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from ..schema import Schema
from .base import Metrics, Operator

__all__ = ["HashJoin", "MergeJoin", "NestedLoopJoin"]


class _JoinBase(Operator):
    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
    ) -> None:
        if len(left_keys) != len(right_keys):
            raise ValueError("join key lists must have equal length")
        self.left = left
        self.right = right
        self.left_keys = tuple(left.schema.resolve(k) for k in left_keys)
        self.right_keys = tuple(right.schema.resolve(k) for k in right_keys)
        self.schema = left.schema.concat(right.schema)
        self._left_positions = tuple(
            left.schema.position(k) for k in self.left_keys
        )
        self._right_positions = tuple(
            right.schema.position(k) for k in self.right_keys
        )

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def label(self) -> str:
        condition = " AND ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"{type(self).__name__}({condition})"


class HashJoin(_JoinBase):
    """Equi-join: build a hash table on the right input, probe with the left.

    Preserves the probe (left) side's ordering — each probe row's matches
    are emitted contiguously in probe order.
    """

    def __init__(self, left, right, left_keys, right_keys) -> None:
        super().__init__(left, right, left_keys, right_keys)
        self.ordering = left.ordering  # preserves the probe side's spec

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        table: Dict[tuple, List[tuple]] = {}
        for row in self.right.execute(metrics):
            metrics.add("hash_build_rows")
            key = tuple(row[i] for i in self._right_positions)
            table.setdefault(key, []).append(row)
        for row in self.left.execute(metrics):
            metrics.add("hash_probe_rows")
            key = tuple(row[i] for i in self._left_positions)
            for match in table.get(key, ()):
                metrics.add("join_rows")
                yield row + match


class MergeJoin(_JoinBase):
    """Sort-merge join.  **Precondition**: both inputs ordered by their join
    keys (the optimizer inserts Sorts, or — with ODs — proves them away).

    Output ordering: the left input's ordering.
    """

    def __init__(self, left, right, left_keys, right_keys) -> None:
        super().__init__(left, right, left_keys, right_keys)
        self.ordering = left.ordering  # preserves the probe side's spec

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        left_rows = list(self.left.execute(metrics))
        right_rows = list(self.right.execute(metrics))
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            metrics.add("merge_steps")
            left_key = tuple(left_rows[i][p] for p in self._left_positions)
            right_key = tuple(right_rows[j][p] for p in self._right_positions)
            if left_key < right_key:
                i += 1
            elif left_key > right_key:
                j += 1
            else:
                # gather the right-side run for this key
                j_end = j
                while j_end < len(right_rows) and tuple(
                    right_rows[j_end][p] for p in self._right_positions
                ) == right_key:
                    j_end += 1
                while i < len(left_rows) and tuple(
                    left_rows[i][p] for p in self._left_positions
                ) == left_key:
                    for k in range(j, j_end):
                        metrics.add("join_rows")
                        yield left_rows[i] + right_rows[k]
                    i += 1
                j = j_end


class NestedLoopJoin(_JoinBase):
    """Tuple-at-a-time nested loops (any predicate via key equality here);
    kept as the baseline everything else beats.  Preserves outer ordering."""

    def __init__(self, left, right, left_keys, right_keys) -> None:
        super().__init__(left, right, left_keys, right_keys)
        self.ordering = left.ordering  # preserves the probe side's spec

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        right_rows = list(self.right.execute(metrics))
        for row in self.left.execute(metrics):
            for other in right_rows:
                metrics.add("nl_comparisons")
                if tuple(row[i] for i in self._left_positions) == tuple(
                    other[i] for i in self._right_positions
                ):
                    metrics.add("join_rows")
                    yield row + other

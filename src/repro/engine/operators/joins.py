"""Join operators: hash join, sort-merge join, nested loops.

The Section 2.3 date rewrite's payoff is a :class:`HashJoin` (fact ⋈
date_dim) that disappears entirely; the sort-merge join is where "a sort on
input can be removed" when ODs prove an existing stream order equivalent to
the required one ([17]'s motivation).
"""
from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from ..batch import DEFAULT_BATCH_SIZE, ColumnBatch
from ..schema import Schema
from .base import Metrics, Operator

__all__ = ["HashJoin", "MergeJoin", "NestedLoopJoin"]


class _JoinBase(Operator):
    """Joins are not partition-transparent (``partition_kind`` stays
    ``None``): they combine two streams, so exchange placement recurses
    into each side instead — either input may itself be a parallelized
    chain, since all three joins drain their inputs wholesale in batch
    mode.  (Partitioning the *probe* loop against a shared built table is
    the natural next step; it needs a build-once barrier the current
    exchange does not model.)"""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
    ) -> None:
        if len(left_keys) != len(right_keys):
            raise ValueError("join key lists must have equal length")
        self.left = left
        self.right = right
        self.left_keys = tuple(left.schema.resolve(k) for k in left_keys)
        self.right_keys = tuple(right.schema.resolve(k) for k in right_keys)
        self.schema = left.schema.concat(right.schema)
        self._left_positions = tuple(
            left.schema.position(k) for k in self.left_keys
        )
        self._right_positions = tuple(
            right.schema.position(k) for k in self.right_keys
        )

    def children(self) -> Sequence[Operator]:
        return (self.left, self.right)

    def _materialize(self, side: Operator, metrics: Metrics, batch_size: int):
        """All of one input's rows via its batch path (both merge and
        nested-loop joins consume a side wholesale)."""
        rows: List[tuple] = []
        for batch in side.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            rows.extend(batch.rows())
        return rows

    def _emit_batches(self, rows: List[tuple], batch_size: int):
        schema = self.schema
        for start in range(0, len(rows), batch_size):
            yield ColumnBatch.from_rows(schema, rows[start:start + batch_size])

    def label(self) -> str:
        condition = " AND ".join(
            f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"{type(self).__name__}({condition})"

    def trace_args(self) -> dict:
        return {
            "keys": " AND ".join(
                f"{l} = {r}" for l, r in zip(self.left_keys, self.right_keys)
            )
        }


class HashJoin(_JoinBase):
    """Equi-join: build a hash table on the right input, probe with the left.

    Preserves the probe (left) side's ordering — each probe row's matches
    are emitted contiguously in probe order.
    """

    def __init__(self, left, right, left_keys, right_keys) -> None:
        super().__init__(left, right, left_keys, right_keys)
        self.ordering = left.ordering  # preserves the probe side's spec

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        table: Dict[tuple, List[tuple]] = {}
        for row in self.right.execute(metrics):
            metrics.add("hash_build_rows")
            key = tuple(row[i] for i in self._right_positions)
            table.setdefault(key, []).append(row)
        for row in self.left.execute(metrics):
            metrics.add("hash_probe_rows")
            key = tuple(row[i] for i in self._left_positions)
            for match in table.get(key, ()):
                metrics.add("join_rows")
                yield row + match

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Build from right batches, probe left batch-wise.  Single-column
        joins (every date rewrite's shape) key on the bare value instead
        of a 1-tuple.  Probe order — and therefore the declared left
        ordering — is preserved; counters charge per batch."""
        single = len(self._right_positions) == 1
        table: Dict = {}
        setdefault = table.setdefault
        for batch in self.right.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            metrics.add("hash_build_rows", len(batch))
            if single:
                position = self._right_positions[0]
                for row in batch.rows():
                    setdefault(row[position], []).append(row)
            else:
                positions = self._right_positions
                for row in batch.rows():
                    setdefault(tuple(row[i] for i in positions), []).append(row)

        get = table.get
        out: List[tuple] = []
        for batch in self.left.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            metrics.add("hash_probe_rows", len(batch))
            produced = 0
            if single:
                position = self._left_positions[0]
                for row in batch.rows():
                    matches = get(row[position])
                    if matches:
                        produced += len(matches)
                        for match in matches:
                            out.append(row + match)
            else:
                positions = self._left_positions
                for row in batch.rows():
                    matches = get(tuple(row[i] for i in positions))
                    if matches:
                        produced += len(matches)
                        for match in matches:
                            out.append(row + match)
            if produced:
                metrics.add("join_rows", produced)
            while len(out) >= batch_size:
                yield ColumnBatch.from_rows(self.schema, out[:batch_size])
                del out[:batch_size]
        if out:
            yield ColumnBatch.from_rows(self.schema, out)


class MergeJoin(_JoinBase):
    """Sort-merge join.  **Precondition**: both inputs ordered by their join
    keys (the optimizer inserts Sorts, or — with ODs — proves them away).

    Output ordering: the left input's ordering.
    """

    def __init__(self, left, right, left_keys, right_keys) -> None:
        super().__init__(left, right, left_keys, right_keys)
        self.ordering = left.ordering  # preserves the probe side's spec

    def _merge(
        self,
        left_rows: List[tuple],
        right_rows: List[tuple],
        metrics: Metrics,
        batched: bool,
    ) -> Iterator[tuple]:
        """The two-pointer merge shared by both execution modes.

        ``batched=False`` charges ``merge_steps``/``join_rows`` one at a
        time as the row path always has (so an early-stopping consumer
        sees partial counts); ``batched=True`` accumulates and charges
        the totals once at exhaustion — same totals, one dict op.
        """
        steps = joined = 0
        i = j = 0
        while i < len(left_rows) and j < len(right_rows):
            if batched:
                steps += 1
            else:
                metrics.add("merge_steps")
            left_key = tuple(left_rows[i][p] for p in self._left_positions)
            right_key = tuple(right_rows[j][p] for p in self._right_positions)
            if left_key < right_key:
                i += 1
            elif left_key > right_key:
                j += 1
            else:
                # gather the right-side run for this key
                j_end = j
                while j_end < len(right_rows) and tuple(
                    right_rows[j_end][p] for p in self._right_positions
                ) == right_key:
                    j_end += 1
                while i < len(left_rows) and tuple(
                    left_rows[i][p] for p in self._left_positions
                ) == left_key:
                    for k in range(j, j_end):
                        if batched:
                            joined += 1
                        else:
                            metrics.add("join_rows")
                        yield left_rows[i] + right_rows[k]
                    i += 1
                j = j_end
        if steps:
            metrics.add("merge_steps", steps)
        if joined:
            metrics.add("join_rows", joined)

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        left_rows = list(self.left.execute(metrics))
        right_rows = list(self.right.execute(metrics))
        yield from self._merge(left_rows, right_rows, metrics, batched=False)

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """The identical merge over inputs materialized batch-wise;
        counters are charged once with the totals the row path
        accumulates one at a time."""
        left_rows = self._materialize(self.left, metrics, batch_size)
        right_rows = self._materialize(self.right, metrics, batch_size)
        out = list(self._merge(left_rows, right_rows, metrics, batched=True))
        yield from self._emit_batches(out, batch_size)


class NestedLoopJoin(_JoinBase):
    """Tuple-at-a-time nested loops (any predicate via key equality here);
    kept as the baseline everything else beats.  Preserves outer ordering."""

    def __init__(self, left, right, left_keys, right_keys) -> None:
        super().__init__(left, right, left_keys, right_keys)
        self.ordering = left.ordering  # preserves the probe side's spec

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        right_rows = list(self.right.execute(metrics))
        for row in self.left.execute(metrics):
            for other in right_rows:
                metrics.add("nl_comparisons")
                if tuple(row[i] for i in self._left_positions) == tuple(
                    other[i] for i in self._right_positions
                ):
                    metrics.add("join_rows")
                    yield row + other

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        right_rows = self._materialize(self.right, metrics, batch_size)
        right_keys = [
            tuple(other[i] for i in self._right_positions) for other in right_rows
        ]
        out: List[tuple] = []
        for batch in self.left.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            produced = 0
            for row in batch.rows():
                left_key = tuple(row[i] for i in self._left_positions)
                for other_key, other in zip(right_keys, right_rows):
                    if left_key == other_key:
                        out.append(row + other)
                        produced += 1
            if right_rows:  # row path never touches the counter otherwise
                metrics.add("nl_comparisons", len(batch) * len(right_rows))
            if produced:
                metrics.add("join_rows", produced)
            while len(out) >= batch_size:
                yield ColumnBatch.from_rows(self.schema, out[:batch_size])
                del out[:batch_size]
        if out:
            yield ColumnBatch.from_rows(self.schema, out)

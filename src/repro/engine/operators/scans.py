"""Scan operators: sequential scans and index range scans.

Scans introduce table rows into a plan under an *alias*: output columns are
named ``alias.column`` so joins never collide and the binder can resolve
unqualified references by suffix.
"""
from __future__ import annotations

from itertools import islice
from typing import Iterator, List, Optional, Tuple

from ..batch import DEFAULT_BATCH_SIZE, ColumnBatch
from ..index import SortedIndex
from ..schema import Column, Schema
from ..table import Table
from .base import Metrics, Operator, order_spec

__all__ = ["SeqScan", "IndexScan", "qualified_schema"]


def qualified_schema(table: Table, alias: str) -> Schema:
    """The table's schema with every column qualified by the alias."""
    return Schema(
        Column(f"{alias}.{column.name}", column.dtype) for column in table.schema
    )


class SeqScan(Operator):
    """Full sequential scan.  No ordering guarantee."""

    def __init__(self, table: Table, alias: Optional[str] = None) -> None:
        self.table = table
        self.alias = alias or table.name
        self.schema = qualified_schema(table, self.alias)
        self.ordering = ()

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        for row in self.table.rows:
            metrics.add("rows_scanned")
            yield row

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Slice the table's cached columnar view; ``rows_scanned`` is
        charged once per batch with the batch length (same total as the
        per-row charges of the row path)."""
        columns = self.table.columnar()
        total = len(self.table.rows)
        schema = self.schema
        for start in range(0, total, batch_size):
            stop = min(start + batch_size, total)
            metrics.add("rows_scanned", stop - start)
            yield ColumnBatch(
                schema, [column[start:stop] for column in columns], stop - start
            )

    def label(self) -> str:
        return f"SeqScan({self.table.name} AS {self.alias})"


class IndexScan(Operator):
    """Sorted range scan over a :class:`~repro.engine.index.SortedIndex`.

    Output is guaranteed ordered by the (qualified) index key columns — the
    order property every OD rewrite trades on.  ``low``/``high`` are
    inclusive key-prefix bounds.
    """

    def __init__(
        self,
        index: SortedIndex,
        alias: Optional[str] = None,
        low: Optional[tuple] = None,
        high: Optional[tuple] = None,
    ) -> None:
        self.index = index
        self.table = index.table
        self.alias = alias or index.table.name
        self.low = low
        self.high = high
        self.schema = qualified_schema(index.table, self.alias)
        self.ordering = tuple(
            order_spec(f"{self.alias}.{column}" for column in index.key_columns)
        )

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        metrics.add("index_probes")
        for row in self.index.range_scan(self.low, self.high):
            metrics.add("rows_scanned")
            yield row

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Chunk the key-ordered range scan and transpose each chunk;
        one ``index_probes`` plus per-batch ``rows_scanned`` charges, the
        same totals as the row path.  Key order carries batch-to-batch."""
        metrics.add("index_probes")
        scan = self.index.range_scan(self.low, self.high)
        schema = self.schema
        while True:
            chunk = list(islice(scan, batch_size))
            if not chunk:
                return
            metrics.add("rows_scanned", len(chunk))
            yield ColumnBatch(schema, list(zip(*chunk)), len(chunk))

    def label(self) -> str:
        bounds = ""
        if self.low is not None or self.high is not None:
            bounds = f" [{self.low} .. {self.high}]"
        return (
            f"IndexScan({self.index.name} ON {self.table.name} AS "
            f"{self.alias}{bounds})"
        )

"""Scan operators: sequential scans and index range scans.

Scans introduce table rows into a plan under an *alias*: output columns are
named ``alias.column`` so joins never collide and the binder can resolve
unqualified references by suffix.
"""
from __future__ import annotations

from itertools import islice
from typing import Iterator, List, Optional, Tuple

from ..batch import DEFAULT_BATCH_SIZE, ColumnBatch
from ..index import SortedIndex
from ..schema import Column, Schema
from ..table import Table
from .base import Metrics, Operator, order_spec

__all__ = ["SeqScan", "IndexScan", "ShippedScan", "qualified_schema"]


def qualified_schema(table: Table, alias: str) -> Schema:
    """The table's schema with every column qualified by the alias."""
    return Schema(
        Column(f"{alias}.{column.name}", column.dtype) for column in table.schema
    )


class SeqScan(Operator):
    """Full sequential scan.  No ordering guarantee.

    A partitionable source: partition ``i`` of ``k`` is the contiguous row
    range ``[i*N//k, (i+1)*N//k)``, resolved against the table's row count
    at *execution* time (plans never bake in a length the epoch clock
    would have to guard).
    """

    partition_kind = "source"

    def __init__(
        self,
        table: Table,
        alias: Optional[str] = None,
        partition: Optional[tuple] = None,
    ) -> None:
        self.table = table
        self.alias = alias or table.name
        self.schema = qualified_schema(table, self.alias)
        self.ordering = ()
        self.partition = partition  # (index, count) or None

    def partition_clone(self, index: int, count: int) -> "SeqScan":
        return SeqScan(self.table, self.alias, partition=(index, count))

    def prepare_parallel(self) -> None:
        self.table.columnar()  # build the shared view before threads race

    def _bounds(self) -> "tuple[int, int]":
        total = len(self.table.rows)
        if self.partition is None:
            return 0, total
        index, count = self.partition
        return (index * total) // count, ((index + 1) * total) // count

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        if self.partition is None:
            rows = self.table.rows
        else:
            start, stop = self._bounds()
            rows = self.table.rows[start:stop]
        for position, row in enumerate(rows):
            if not position & 1023:  # cooperative cancel, ~per-1k rows
                metrics.check_cancel()
            metrics.add("rows_scanned")
            yield row

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Slice the table's cached columnar view; ``rows_scanned`` is
        charged once per batch with the batch length (same total as the
        per-row charges of the row path — and partition totals sum to the
        unpartitioned scan's)."""
        columns = self.table.columnar()
        first, last = self._bounds()
        schema = self.schema
        for start in range(first, last, batch_size):
            stop = min(start + batch_size, last)
            metrics.check_cancel()
            metrics.add("rows_scanned", stop - start)
            yield ColumnBatch(
                schema, [column[start:stop] for column in columns], stop - start
            )

    def label(self) -> str:
        suffix = ""
        if self.partition is not None:
            suffix = f" [part {self.partition[0] + 1}/{self.partition[1]}]"
        return f"SeqScan({self.table.name} AS {self.alias}{suffix})"

    def trace_args(self) -> dict:
        return {"table": self.table.name, "alias": self.alias}

    def __reduce__(self):
        """Pickling ships the scan to a worker process.

        When the target pool *inherited* this table through ``fork`` (the
        ship-token context says so), ship only a registry token — the
        worker rebuilds a normal ``SeqScan`` over the object it already
        holds, zero data copied.  Otherwise materialize: resolve the
        partition bounds now (pickling happens at execution start, so
        these are execution-time bounds) and ship the column slices as a
        :class:`ShippedScan` with no ``Table`` back-pointer.
        """
        from ..parallel import active_ship_tokens

        token = ("table", id(self.table))
        if token in active_ship_tokens():
            return (_rebuild_seq_scan, (token, self.alias, self.partition))
        start, stop = self._bounds()
        columns = self.table.columnar()
        return (
            ShippedScan,
            (
                self.schema,
                [list(column[start:stop]) for column in columns],
                stop - start,
                (),
                False,
            ),
        )


class IndexScan(Operator):
    """Sorted range scan over a :class:`~repro.engine.index.SortedIndex`.

    Output is guaranteed ordered by the (qualified) index key columns — the
    order property every OD rewrite trades on.  ``low``/``high`` are
    inclusive key-prefix bounds.

    A partitionable source: the matched entry range splits into ``k``
    contiguous position slices (each sorted by the key, slices in key
    order — the shape :class:`~repro.engine.parallel.MergeExchange`
    reassembles).  The per-execute ``index_probes`` charge belongs to
    partition 0 alone so partition totals equal the serial scan's.
    """

    partition_kind = "source"

    def __init__(
        self,
        index: SortedIndex,
        alias: Optional[str] = None,
        low: Optional[tuple] = None,
        high: Optional[tuple] = None,
        partition: Optional[tuple] = None,
    ) -> None:
        self.index = index
        self.table = index.table
        self.alias = alias or index.table.name
        self.low = low
        self.high = high
        self.schema = qualified_schema(index.table, self.alias)
        self.ordering = tuple(
            order_spec(f"{self.alias}.{column}" for column in index.key_columns)
        )
        self.partition = partition  # (index, count) or None

    def partition_clone(self, index: int, count: int) -> "IndexScan":
        return IndexScan(
            self.index, self.alias, self.low, self.high, partition=(index, count)
        )

    def prepare_parallel(self) -> None:
        len(self.index)  # force the sorted-array build before threads race

    def _position_bounds(self) -> "tuple[int, int]":
        start, stop = self.index.range_positions(self.low, self.high)
        if self.partition is None:
            return start, stop
        index, count = self.partition
        width = max(0, stop - start)
        return start + (index * width) // count, start + ((index + 1) * width) // count

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        if self.partition is None or self.partition[0] == 0:
            metrics.add("index_probes")
        start, stop = self._position_bounds()
        for position, row in enumerate(self.index.scan_positions(start, stop)):
            if not position & 1023:  # cooperative cancel, ~per-1k rows
                metrics.check_cancel()
            metrics.add("rows_scanned")
            yield row

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Chunk the key-ordered range scan and transpose each chunk;
        one ``index_probes`` plus per-batch ``rows_scanned`` charges, the
        same totals as the row path.  Key order carries batch-to-batch."""
        if self.partition is None or self.partition[0] == 0:
            metrics.add("index_probes")
        start, stop = self._position_bounds()
        scan = self.index.scan_positions(start, stop)
        schema = self.schema
        while True:
            metrics.check_cancel()
            chunk = list(islice(scan, batch_size))
            if not chunk:
                return
            metrics.add("rows_scanned", len(chunk))
            yield ColumnBatch(schema, list(zip(*chunk)), len(chunk))

    def label(self) -> str:
        bounds = ""
        if self.low is not None or self.high is not None:
            bounds = f" [{self.low} .. {self.high}]"
        suffix = ""
        if self.partition is not None:
            suffix = f" [part {self.partition[0] + 1}/{self.partition[1]}]"
        return (
            f"IndexScan({self.index.name} ON {self.table.name} AS "
            f"{self.alias}{bounds}{suffix})"
        )

    def trace_args(self) -> dict:
        return {
            "index": self.index.name,
            "table": self.table.name,
            "alias": self.alias,
        }

    def __reduce__(self):
        """Same two shipping modes as :meth:`SeqScan.__reduce__`.

        The materialized form resolves the partition's position bounds
        against the live index and ships the rows of that slice — which
        are in key order, so the declared (qualified) ``OrderSpec``
        travels with them.  The per-execute ``index_probes`` charge stays
        with partition 0 (``charge_probe``) so shipped partition totals
        still sum to the serial scan's.
        """
        from ..parallel import active_ship_tokens

        token = ("index", id(self.index))
        if token in active_ship_tokens():
            return (
                _rebuild_index_scan,
                (token, self.alias, self.low, self.high, self.partition),
            )
        start, stop = self._position_bounds()
        rows = list(self.index.scan_positions(start, stop))
        if rows:
            columns: List[list] = [list(column) for column in zip(*rows)]
        else:
            columns = [[] for _ in self.schema]
        charge_probe = self.partition is None or self.partition[0] == 0
        return (
            ShippedScan,
            (self.schema, columns, len(rows), tuple(self.ordering), charge_probe),
        )


def _rebuild_seq_scan(token, alias, partition) -> SeqScan:
    """Worker-side: rebuild a ``SeqScan`` over the fork-inherited table."""
    from ..parallel import shipped_object

    table = shipped_object(token)
    if table is None:  # pragma: no cover - epoch-keyed restarts prevent this
        raise RuntimeError("shipped table missing from worker registry (stale pool?)")
    return SeqScan(table, alias, partition=partition)


def _rebuild_index_scan(token, alias, low, high, partition) -> IndexScan:
    """Worker-side: rebuild an ``IndexScan`` over the fork-inherited index."""
    from ..parallel import shipped_object

    index = shipped_object(token)
    if index is None:  # pragma: no cover - epoch-keyed restarts prevent this
        raise RuntimeError("shipped index missing from worker registry (stale pool?)")
    return IndexScan(index, alias, low, high, partition=partition)


class ShippedScan(Operator):
    """A scan materialized for shipping to another process.

    Holds plain column lists plus the (qualified) schema — no ``Table``
    or ``SortedIndex`` back-pointers, so pickling it costs exactly its
    data.  Metrics parity with the scan it replaced: ``rows_scanned``
    per row/batch, and ``index_probes`` once when ``charge_probe`` (the
    shipped form of "partition 0 owns the per-execute probe charge").
    ``ordering`` is the declared :class:`OrderSpec` the source scan
    guaranteed — an index partition's slice is in key order, so the
    guarantee survives the wire.
    """

    def __init__(
        self,
        schema: Schema,
        columns: List[list],
        length: int,
        ordering: Tuple[str, ...] = (),
        charge_probe: bool = False,
    ) -> None:
        self.schema = schema
        self.columns = columns
        self.length = length
        self.ordering = tuple(ordering)
        self.charge_probe = charge_probe

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        if self.charge_probe:
            metrics.add("index_probes")
        for position, row in enumerate(zip(*self.columns)):
            if not position & 1023:  # cooperative cancel, ~per-1k rows
                metrics.check_cancel()
            metrics.add("rows_scanned")
            yield row

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        if self.charge_probe:
            metrics.add("index_probes")
        schema = self.schema
        for start in range(0, self.length, batch_size):
            stop = min(start + batch_size, self.length)
            metrics.check_cancel()
            metrics.add("rows_scanned", stop - start)
            yield ColumnBatch(
                schema, [column[start:stop] for column in self.columns], stop - start
            )

    def label(self) -> str:
        return f"ShippedScan({self.length} rows x {len(self.columns)} cols)"

    def trace_args(self) -> dict:
        return {"length": self.length, "cols": len(self.columns)}

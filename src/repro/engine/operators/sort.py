"""The Sort operator — the operator the paper's rewrites exist to remove.

Sorting is "at the heart of many database operations" (Section 5) and is
the expensive step OD reasoning eliminates: every benchmark in this
reproduction ultimately compares plans with and without a Sort node.
"""
from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from ..batch import DEFAULT_BATCH_SIZE, ColumnBatch
from .base import Metrics, Operator, order_spec

__all__ = ["Sort"]


class Sort(Operator):
    """Full materializing sort on the given (qualified) columns, ascending.

    Charges ``sort_rows`` (and one ``sorts`` event) to the metrics; the
    shared :class:`~repro.engine.operators.base.Metrics.work` summary
    weights these at ``n·log2(n)``.

    Not partition-transparent (``partition_kind`` stays ``None``): a
    per-partition sort would charge K ``sorts`` events where the serial
    plan charges one, breaking counter parity — and the whole point of
    the paper is that provable orders make the Sort disappear, at which
    point the chain below *is* parallelizable and the merge-exchange
    preserves its order for free.  Exchange placement parallelizes the
    input chain instead."""

    def __init__(self, child: Operator, keys: Sequence[str]) -> None:
        self.child = child
        self.keys: Tuple[str, ...] = tuple(
            child.schema.resolve(key) for key in keys
        )
        self.schema = child.schema
        # A Sort is the order *enforcer*: it provides exactly its keys.
        self.ordering = tuple(order_spec(self.keys))
        self._positions = tuple(self.schema.position(key) for key in self.keys)

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        rows = list(self.child.execute(metrics))
        metrics.add("sorts")
        metrics.add("sort_rows", len(rows))
        positions = self._positions
        rows.sort(key=lambda row: tuple(row[i] for i in positions))
        for row in rows:
            yield row

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Materialize the child's batches, run the identical stable sort
        (same key, same input order → same output), re-emit in chunks."""
        rows: List[tuple] = []
        for batch in self.child.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            rows.extend(batch.rows())
        metrics.add("sorts")
        metrics.add("sort_rows", len(rows))
        positions = self._positions
        rows.sort(key=lambda row: tuple(row[i] for i in positions))
        schema = self.schema
        for start in range(0, len(rows), batch_size):
            yield ColumnBatch.from_rows(schema, rows[start:start + batch_size])

    def label(self) -> str:
        return f"Sort({', '.join(self.keys)})"

    def trace_args(self) -> dict:
        return {"keys": ", ".join(self.keys)}

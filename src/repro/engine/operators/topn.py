"""Top-N: fused Sort + Limit via a bounded heap.

When a plan needs ``ORDER BY k LIMIT n`` and no existing order satisfies
``k``, a full sort is wasteful: a size-``n`` heap does O(N log n) work and
O(n) memory.  The OD story still applies first — if the order *is*
satisfied, the planner emits plain ``Limit`` and even the heap disappears —
so TopN is the fallback the rewrites compete against.
"""
from __future__ import annotations

import heapq
from typing import Iterator, List, Sequence, Tuple

from ..batch import DEFAULT_BATCH_SIZE, ColumnBatch
from .base import Metrics, Operator, order_spec

__all__ = ["TopN"]


class TopN(Operator):
    """The ``n`` smallest rows by the given (qualified) key columns.

    Output is emitted in key order.  Ties are broken by input arrival order
    (stable, matching what ``Sort`` + ``Limit`` would produce).

    Not partition-transparent (``partition_kind`` stays ``None``): like
    ``Sort`` it charges a single ``sorts`` event, and its stable tiebreak
    is a whole-stream arrival fact.  Unlike ``Limit`` it is no *barrier*
    — TopN drains its child completely (no early termination), so the
    input chain below it parallelizes safely."""

    def __init__(self, child: Operator, keys: Sequence[str], count: int) -> None:
        if count < 0:
            raise ValueError("TopN count must be non-negative")
        self.child = child
        self.keys: Tuple[str, ...] = tuple(
            child.schema.resolve(key) for key in keys
        )
        self.count = count
        self.schema = child.schema
        # Like Sort, TopN enforces (a bounded prefix of) its key order.
        self.ordering = tuple(order_spec(self.keys))
        self._positions = tuple(self.schema.position(key) for key in self.keys)

    def children(self) -> Sequence[Operator]:
        return (self.child,)

    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        if self.count == 0:
            # still drain nothing: no need to touch the child at all
            return
        positions = self._positions
        # max-heap of the current best n: store negated comparison wrapper
        heap: List[tuple] = []
        for arrival, row in enumerate(self.child.execute(metrics)):
            metrics.add("topn_rows")
            key = tuple(row[i] for i in positions)
            entry = (_Reverse((key, arrival)), row)
            if len(heap) < self.count:
                heapq.heappush(heap, entry)
            elif (key, arrival) < heap[0][0].value:
                heapq.heapreplace(heap, entry)
        metrics.add("sorts")
        metrics.add("sort_rows", len(heap))  # only the heap contents sort
        ordered = sorted(heap, key=lambda entry: entry[0].value)
        for _, row in ordered:
            yield row

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """The same bounded heap fed batch-wise; arrival order (the
        stable tiebreak) is counted globally across batches."""
        if self.count == 0:
            # as in the row path: no need to touch the child at all
            return
        positions = self._positions
        heap: List[tuple] = []
        arrival = 0
        for batch in self.child.execute_batches(metrics, batch_size):
            metrics.check_cancel()
            metrics.add("topn_rows", len(batch))
            for row in batch.rows():
                key = tuple(row[i] for i in positions)
                entry = (_Reverse((key, arrival)), row)
                if len(heap) < self.count:
                    heapq.heappush(heap, entry)
                elif (key, arrival) < heap[0][0].value:
                    heapq.heapreplace(heap, entry)
                arrival += 1
        metrics.add("sorts")
        metrics.add("sort_rows", len(heap))  # only the heap contents sort
        ordered = sorted(heap, key=lambda entry: entry[0].value)
        rows = [row for _, row in ordered]
        schema = self.schema
        for start in range(0, len(rows), batch_size):
            yield ColumnBatch.from_rows(schema, rows[start:start + batch_size])

    def label(self) -> str:
        return f"TopN({', '.join(self.keys)}; {self.count})"

    def trace_args(self) -> dict:
        return {"keys": ", ".join(self.keys), "count": self.count}


class _Reverse:
    """Inverts comparison so heapq's min-heap acts as a max-heap."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "_Reverse") -> bool:
        return other.value < self.value

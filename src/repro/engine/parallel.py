"""Parallel batch execution: partitioned pipelines + order-preserving exchanges.

The :class:`~repro.engine.batch.ColumnBatch` stream of PR 3 is the natural
*exchange granule* for parallelism: a partitionable leaf (a scan) is split
into contiguous partitions, the order/row-preserving chain above it
(filters, projections) is cloned per partition, the per-partition pipelines
run on a thread pool (with a deterministic single-threaded fallback), and a
single **exchange** operator reassembles the partition streams into one
batch stream for the serial remainder of the plan.

Two exchange kinds, chosen by the planner from the physical property the
subtree already declares (see
:func:`repro.optimizer.properties.exchange_kind`):

* :class:`MergeExchange` — when the subtree declares a non-empty
  :class:`~repro.optimizer.properties.OrderSpec`: a k-way merge on the
  ordering prefix interleaves the per-partition streams **without ever
  introducing a sort** — the parallel form of the paper's whole program
  (orders you can prove, you never re-establish).  The merge is stable
  across partitions (ties go to the lower partition index), so over the
  contiguous partitions the planner builds it reproduces the serial stream
  bit-for-bit.
* :class:`UnionExchange` — when the subtree declares no ordering: the
  cheaper exchange, emitting partition streams in partition-index order
  (deterministic; over contiguous partitions this *is* the serial stream).

The execution contract — enforced query-by-query in the mode-matrix
differential (``tests/harness/test_differential.py``) and property-tested
in ``tests/engine/test_parallel.py``:

* **bit-identical rows**: a parallel execution emits exactly the serial
  batch path's rows in exactly the serial order, at every worker count;
* **counter-identical metrics**: every partition charges a private
  :class:`~repro.engine.operators.base.Metrics`, merged into the shared
  one in partition order; per-execute charges (an ``index_probes`` probe)
  are charged by partition 0 only, so totals equal the serial path's
  exactly — exchanges themselves charge nothing, because the serial plan
  has no exchange;
* **determinism**: results never depend on thread scheduling — partitions
  are fixed at plan time, drained to completion, and reassembled in a
  fixed order.

``LIMIT`` subtrees are never parallelized (``partition_kind ==
"barrier"``): Limit stops pulling its child early, and an eager partition
drain would charge scan work the serial path never does.

Scheduling note: partitions are materialized (each worker drains its
pipeline to a list of batches) rather than streamed through bounded
queues — the same memory regime as ``Sort``/``MergeJoin``, with no
abandoned-consumer deadlock risk.  Morsel-style streaming exchange and a
process-pool backend are the ROADMAP follow-ons.
"""
from __future__ import annotations

import heapq
import os
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from itertools import islice
from typing import Iterator, List, Optional, Sequence, Tuple

from .batch import DEFAULT_BATCH_SIZE, ColumnBatch
from .operators.base import Metrics, Operator

__all__ = [
    "Exchange",
    "UnionExchange",
    "MergeExchange",
    "partitionable",
    "partition_pipeline",
    "insert_exchanges",
    "host_capability",
]


def host_capability() -> dict:
    """Can threads on this host actually run Python code in parallel?

    CPython threads only execute bytecode concurrently on a free-threaded
    build (PEP 703) with more than one core available; everywhere else the
    worker pool buys architecture, not speedup.  The benchmark baseline
    records this (``parallel_capable`` in ``extra_info``) and the
    bench/regression gates key their speedup-vs-overhead bars on it — one
    definition, shared, so the two gates can never disagree.
    """
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    return {
        "cpus": cpus,
        "gil_enabled": gil_enabled,
        "parallel_capable": cpus >= 2 and not gil_enabled,
    }


#: One process-wide worker pool, created lazily on the first threaded
#: drain and reused by every exchange — spawning a pool per execution
#: would put OS thread creation on the warm-query path, and a pool per
#: cached plan would accumulate idle threads across the plan cache.
#: Safe to share: exchanges never nest (placement stops at the first
#: partitionable chain), and each drain submits, joins *all* futures,
#: then merges counters — so concurrent executions just interleave tasks.
#: ``workers`` chooses the partition count; concurrency is additionally
#: bounded by the pool size.
_SHARED_POOL: Optional[ThreadPoolExecutor] = None
_SHARED_POOL_LOCK = threading.Lock()


def _shared_pool() -> ThreadPoolExecutor:
    global _SHARED_POOL
    if _SHARED_POOL is None:
        with _SHARED_POOL_LOCK:
            if _SHARED_POOL is None:
                _SHARED_POOL = ThreadPoolExecutor(
                    max_workers=max(4, host_capability()["cpus"]),
                    thread_name_prefix="repro-exchange",
                )
    return _SHARED_POOL


# ----------------------------------------------------------------------
# Partitionable-chain analysis (reads the hooks each operator declares)
# ----------------------------------------------------------------------
def partitionable(op: Operator) -> bool:
    """Is this subtree a partitionable chain — a ``"source"`` leaf under
    zero or more ``"transparent"`` (order/row-preserving unary) operators?"""
    while True:
        kind = op.partition_kind
        if kind == "source":
            return True
        if kind == "transparent":
            op = op.child  # type: ignore[attr-defined]
            continue
        return False


def partition_pipeline(op: Operator, index: int, count: int) -> Operator:
    """Clone a partitionable chain for one partition: the source becomes
    its ``index``-of-``count`` contiguous slice, the transparent operators
    above are rebuilt over the slice."""
    kind = op.partition_kind
    if kind == "source":
        clone = op.partition_clone(index, count)
        if clone is None:  # pragma: no cover - hook contract violation
            raise TypeError(f"{op.label()} declares 'source' but returned no clone")
        return clone
    if kind == "transparent":
        child = partition_pipeline(op.child, index, count)  # type: ignore[attr-defined]
        clone = op.partition_through(child)
        if clone is None:  # pragma: no cover - hook contract violation
            raise TypeError(f"{op.label()} declares 'transparent' but returned no clone")
        return clone
    raise TypeError(f"{op.label()} is not part of a partitionable chain")


# ----------------------------------------------------------------------
# Exchange operators
# ----------------------------------------------------------------------
class Exchange(Operator):
    """Base exchange: run per-partition pipelines, reassemble one stream.

    ``partitions`` are the per-partition operator trees (each with the
    same schema, and each individually honoring the declared ordering).
    ``subtree`` — when built by the planner — is the serial chain the
    partitions were cloned from: it is what ``children()`` exposes for
    EXPLAIN, and what row-mode ``execute`` runs (the deterministic serial
    fallback, with exactly the serial plan's counters).
    """

    #: "merge" or "union" — also the EXPLAIN vocabulary.
    kind = "exchange"

    def __init__(
        self,
        partitions: Sequence[Operator],
        workers: Optional[int] = None,
        subtree: Optional[Operator] = None,
    ) -> None:
        partitions = list(partitions)
        if not partitions:
            raise ValueError("an exchange needs at least one partition")
        if workers is None:
            workers = len(partitions)
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.partitions: List[Operator] = partitions
        self.workers = workers
        self.subtree = subtree
        template = subtree if subtree is not None else partitions[0]
        self.schema = template.schema
        self.ordering = tuple(template.ordering)

    # ------------------------------------------------------------------
    def children(self) -> Sequence[Operator]:
        if self.subtree is not None:
            return (self.subtree,)
        return tuple(self.partitions)

    def label(self) -> str:
        return f"{type(self).__name__}({len(self.partitions)} partitions)"

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        """Row mode: the deterministic serial fallback.

        A planner-built exchange simply runs the serial subtree it
        replaced — bit- and counter-identical to the unparallelized plan
        by construction.  A bare exchange (test seam) drains its
        partitions inline instead.
        """
        if self.subtree is not None:
            yield from self.subtree.execute(metrics)
            return
        for batch in self.execute_batches(metrics):
            yield from batch.rows()

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        results = self._drain_partitions(metrics, batch_size)
        yield from self._emit(results, batch_size)

    def _drain_partitions(
        self, metrics: Metrics, batch_size: int
    ) -> List[List[ColumnBatch]]:
        """Run every partition to completion; merge counters in partition
        order (deterministic regardless of thread scheduling)."""
        for partition in self.partitions:
            partition.prepare_parallel()
        locals_: List[Metrics] = [Metrics() for _ in self.partitions]
        if self.workers <= 1 or len(self.partitions) <= 1:
            # Deterministic single-threaded fallback: same partitions,
            # same order, no pool.
            results = [
                list(partition.execute_batches(local, batch_size))
                for partition, local in zip(self.partitions, locals_)
            ]
        else:
            pool = _shared_pool()
            futures = [
                pool.submit(_drain_one, partition, local, batch_size)
                for partition, local in zip(self.partitions, locals_)
            ]
            results = [future.result() for future in futures]
        for local in locals_:
            for key, value in local.counters.items():
                metrics.add(key, value)
        return results

    def _emit(
        self, results: List[List[ColumnBatch]], batch_size: int
    ) -> Iterator[ColumnBatch]:
        raise NotImplementedError


def _drain_one(
    partition: Operator, metrics: Metrics, batch_size: int
) -> List[ColumnBatch]:
    return list(partition.execute_batches(metrics, batch_size))


class UnionExchange(Exchange):
    """Order-insensitive exchange: emit partition streams in partition
    order.  Over the contiguous partitions the planner builds, the
    concatenation *is* the serial stream, so the choice of union over
    merge is purely a cost call — no ordering obligation exists."""

    kind = "union"

    def __init__(self, partitions, workers=None, subtree=None) -> None:
        super().__init__(partitions, workers, subtree)
        # Concatenation makes no ordering promise: even if the partitions
        # are individually sorted, their ranges may interleave.  Never
        # advertise an OrderSpec this operator does not enforce — that is
        # the soundness contract every provides() consumer trusts.  (The
        # planner only picks union for empty specs anyway.)
        self.ordering = ()

    def _emit(
        self, results: List[List[ColumnBatch]], batch_size: int
    ) -> Iterator[ColumnBatch]:
        for batches in results:
            for batch in batches:
                if len(batch):
                    yield batch


class MergeExchange(Exchange):
    """Order-preserving exchange: k-way merge on the declared ordering.

    Each partition stream must individually honor ``keys`` (the chain's
    declared :class:`~repro.optimizer.properties.OrderSpec`); the merge
    interleaves them into one conforming stream without sorting anything.
    Ties across partitions resolve to the lower partition index
    (``heapq.merge`` is stable by input position), which over contiguous
    partitions reproduces the serial stream's arrival order exactly.

    Fast path: when the partition boundary keys do not interleave (the
    common case for contiguous range partitions), the merge degenerates
    to concatenation and is emitted as such — the heap only runs when
    streams genuinely overlap (e.g. the randomly-partitioned instances of
    the property tests).
    """

    kind = "merge"

    def __init__(
        self,
        partitions: Sequence[Operator],
        workers: Optional[int] = None,
        subtree: Optional[Operator] = None,
        keys: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(partitions, workers, subtree)
        if keys is None:
            keys = self.ordering
        self.keys: Tuple[str, ...] = tuple(keys)
        if not self.keys:
            raise ValueError("MergeExchange needs a non-empty ordering")
        self._positions = tuple(self.schema.position(key) for key in self.keys)

    def label(self) -> str:
        return (
            f"MergeExchange({len(self.partitions)} partitions "
            f"on [{', '.join(self.keys)}])"
        )

    def _key(self, row: tuple) -> tuple:
        positions = self._positions
        return tuple(row[p] for p in positions)

    def _boundaries_disjoint(self, results: List[List[ColumnBatch]]) -> bool:
        """True when partition key ranges touch only at boundaries in
        partition order — then concatenation equals the stable merge."""
        previous_last = None
        for batches in results:
            if not any(len(batch) for batch in batches):
                continue
            first = next(batch for batch in batches if len(batch))
            last = next(batch for batch in reversed(batches) if len(batch))
            positions = self._positions
            first_key = tuple(first.columns[p][0] for p in positions)
            if previous_last is not None and first_key < previous_last:
                return False
            previous_last = tuple(last.columns[p][-1] for p in positions)
        return True

    def _emit(
        self, results: List[List[ColumnBatch]], batch_size: int
    ) -> Iterator[ColumnBatch]:
        if self._boundaries_disjoint(results):
            for batches in results:
                for batch in batches:
                    if len(batch):
                        yield batch
            return
        streams = [
            _rows_of(batches) for batches in results if any(len(b) for b in batches)
        ]
        merged = heapq.merge(*streams, key=self._key)
        schema = self.schema
        while True:
            chunk = list(islice(merged, batch_size))
            if not chunk:
                return
            yield ColumnBatch.from_rows(schema, chunk)


def _rows_of(batches: List[ColumnBatch]) -> Iterator[tuple]:
    for batch in batches:
        yield from batch.rows()


# ----------------------------------------------------------------------
# Exchange placement (called by the planner when ``workers`` is set)
# ----------------------------------------------------------------------
def insert_exchanges(root: Operator, workers: int, info=None) -> Operator:
    """Wrap every maximal partitionable chain of a physical plan in an
    exchange of ``workers`` contiguous partitions.

    The exchange kind is decided by the chain's *declared* order property
    (:func:`repro.optimizer.properties.exchange_kind`): a non-empty
    :class:`~repro.optimizer.properties.OrderSpec` demands a
    :class:`MergeExchange` keyed on it, the empty spec takes the cheaper
    :class:`UnionExchange`.  ``LIMIT`` subtrees are left serial (their
    ``partition_kind`` is ``"barrier"`` — exact early-termination parity).
    ``info`` — a :class:`~repro.optimizer.planner.PlanInfo` — receives one
    ``exchanges`` record per placement for EXPLAIN reporting.
    """
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    return _place(root, workers, info)


def _place(op: Operator, workers: int, info) -> Operator:
    if op.partition_kind == "barrier":
        return op
    if partitionable(op):
        return _make_exchange(op, workers, info)
    for child in tuple(op.children()):
        replacement = _place(child, workers, info)
        if replacement is not child:
            op.replace_child(child, replacement)
    return op


def _make_exchange(subtree: Operator, workers: int, info) -> Exchange:
    # Lazy import: the engine layer must not depend on the optimizer
    # package at import time (the optimizer imports the engine's
    # operators) — same rule as ``operators.base.order_spec``.
    from ..optimizer.properties import exchange_kind

    spec = subtree.provides()
    partitions = [
        partition_pipeline(subtree, index, workers) for index in range(workers)
    ]
    if exchange_kind(spec) == "merge":
        exchange: Exchange = MergeExchange(
            partitions, workers=workers, subtree=subtree, keys=tuple(spec)
        )
    else:
        exchange = UnionExchange(partitions, workers=workers, subtree=subtree)
    if info is not None:
        info.exchanges.append(
            (exchange.kind, len(partitions), tuple(spec), subtree.label())
        )
    return exchange

"""Parallel batch execution: partitioned pipelines + order-preserving
exchanges over pluggable backends.

The :class:`~repro.engine.batch.ColumnBatch` stream of PR 3 is the natural
*exchange granule* for parallelism: a partitionable leaf (a scan) is split
into contiguous partitions, the order/row-preserving chain above it
(filters, projections) is cloned per partition, the per-partition pipelines
run on an :class:`ExchangeBackend`, and a single **exchange** operator
reassembles the partition morsel streams into one batch stream for the
serial remainder of the plan.

Three backends (``Database.execute(..., workers=K, backend=...)``):

* ``inline`` — no pool at all: partitions run lazily on the calling
  thread, in partition order for union and interleaved on demand for
  merge.  The deterministic floor every other backend is compared against.
* ``thread`` — the shared :class:`ThreadPoolExecutor`.  Each partition
  streams its batches through a per-partition queue as it produces them.
  Real speedup only on free-threaded builds (PEP 703); on the stock GIL
  it buys architecture, not parallelism.
* ``process`` — true multicore: partition chains are *pickled* and shipped
  to a persistent pool of worker processes, which stream
  ``ColumnBatch`` columns back through one bounded result queue in
  **morsels** of ~:data:`MORSEL_ROWS` rows.  Workers pull partition tasks
  from a shared task queue (work stealing: whichever worker frees first
  takes the next partition) and a parent-side demultiplexer reassembles
  the streams deterministically — completion order never leaks into
  results or counters.

Process-backend shipping, in detail:

* Under the ``fork`` start method (the Linux default; override with
  ``REPRO_START_METHOD``) the pool's workers inherit the parent's memory,
  so scans don't ship data at all: a :meth:`__reduce__` hook replaces the
  ``Table``/``SortedIndex`` reference with a *token* into the module's
  ship registry, and the forked worker rebuilds a normal scan around the
  object it already has.  Staleness is governed by the catalog epoch
  (:mod:`repro.engine.epoch`): any mutation since the pool forked
  restarts it, so a worker can never scan a pre-mutation memory image.
* Under ``spawn`` (pinned in CI for portability) — or for objects the
  current fork image doesn't hold — scans materialize their resolved
  partition slice into a picklable ``ShippedScan`` (plain column lists +
  schema, no ``Table`` back-pointers).  Execution-time bounds are
  preserved either way: pickling happens at execution start, and the
  token path re-resolves bounds in the worker.
* Serialization is accounted *outside* query :class:`Metrics` (parity!):
  each exchange records ``exchange_stats`` — shipped chain bytes, morsel
  count/bytes, rows shipped — for the backend that actually ran.

Two exchange kinds, chosen by the planner from the physical property the
subtree already declares (see
:func:`repro.optimizer.properties.exchange_kind`):

* :class:`MergeExchange` — when the subtree declares a non-empty
  :class:`~repro.optimizer.properties.OrderSpec`.  Planner-built
  exchanges are ``contiguous``: the ``partition_clone`` contract says the
  partition streams concatenate (in index order) to exactly the serial
  stream, which honors the declared order — so the "merge" is a
  streaming concatenation, no heap, no sort.  Test-built exchanges over
  genuinely interleaving partitions use a streaming stable k-way
  ``heapq.merge`` (ties to the lower partition index).
* :class:`UnionExchange` — when the subtree declares no ordering: emit
  partition streams in partition-index order (deterministic; over
  contiguous partitions this *is* the serial stream).

The execution contract — enforced query-by-query in the mode-matrix
differential (``tests/harness/test_differential.py``, including its
process-backend leg) and property-tested in
``tests/engine/test_parallel.py``:

* **bit-identical rows**: a parallel execution emits exactly the serial
  batch path's rows in exactly the serial order, at every worker count,
  on every backend;
* **counter-identical metrics**: every partition charges a private
  :class:`~repro.engine.operators.base.Metrics`, merged into the shared
  one in partition-index order *after* the streams drain — regardless of
  completion order; per-execute charges (an ``index_probes`` probe) are
  charged by partition 0 only, so totals equal the serial path's
  exactly — exchanges themselves charge nothing, because the serial plan
  has no exchange;
* **determinism**: results never depend on thread or process scheduling —
  partitions are fixed at plan time, drained to completion, and
  reassembled in a fixed order.

Placement is **cost-gated**: :func:`insert_exchanges` skips chains whose
source scans fewer than ``min_rows`` estimated rows (the planner passes
:data:`PARALLEL_MIN_ROWS`, fed by epoch-keyed
:class:`~repro.engine.stats.TableStats` row counts), so dimension-table
scans never pay exchange overhead.  ``LIMIT`` subtrees are never
parallelized (``partition_kind == "barrier"``): Limit stops pulling its
child early, and an eager partition drain would charge scan work the
serial path never does.
"""
from __future__ import annotations

import os
import heapq
import pickle
import queue as queue_module
import sys
import threading
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from itertools import islice
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .batch import DEFAULT_BATCH_SIZE, ColumnBatch
from .epoch import current_epoch
from .operators.base import Metrics, Operator

__all__ = [
    "Exchange",
    "UnionExchange",
    "MergeExchange",
    "ExchangeBackend",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "MORSEL_ROWS",
    "PARALLEL_MIN_ROWS",
    "partitionable",
    "partition_pipeline",
    "insert_exchanges",
    "host_capability",
    "shutdown_process_pool",
]

#: The recognized backend names, in cost order.
BACKENDS: Tuple[str, ...] = ("inline", "thread", "process")

#: What ``workers=K`` selects when no ``backend=`` is given — threads, the
#: PR 4 behaviour (bounded overhead everywhere, speedup on free-threaded
#: builds).
DEFAULT_BACKEND = "thread"

#: Target morsel size (rows) for process-backend result streaming: big
#: enough to amortize one pickle + queue hop over thousands of rows, small
#: enough that the parent overlaps reassembly with worker production.
#: Override with ``REPRO_MORSEL_ROWS``.
MORSEL_ROWS = max(1, int(os.environ.get("REPRO_MORSEL_ROWS", "16384")))

#: Placement gate: chains whose source scans fewer estimated rows than
#: this plan serial (exchange overhead would dominate — the snowflake
#: dimension tables are the motivating case).  Chosen between the test
#: workloads' dimension tables (≤ a few hundred rows) and their fact
#: tables (thousands+).  Override with ``REPRO_PARALLEL_MIN_ROWS``.
PARALLEL_MIN_ROWS = max(0, int(os.environ.get("REPRO_PARALLEL_MIN_ROWS", "1024")))

#: Process-pool result-queue bound (messages in flight): backpressure so
#: fast workers never buffer unbounded morsels in the queue itself.
_RESULT_QUEUE_DEPTH = 16

#: Seconds between liveness checks while waiting on the result queue.
_PULL_TIMEOUT = 2.0


def _resolve_start_method() -> str:
    """``REPRO_START_METHOD`` if set, else ``fork`` where available
    (Linux: cheap workers that inherit table memory), else ``spawn``."""
    import multiprocessing

    method = os.environ.get("REPRO_START_METHOD", "").strip()
    if method:
        return method
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def host_capability() -> dict:
    """Can this host actually run Python code in parallel — and how?

    * ``parallel_capable`` — the **thread** backend scales: a free-threaded
      build (PEP 703) with more than one core.
    * ``process_capable`` — the **process** backend scales: more than one
      core (the GIL is per-process, so a stock build is fine).
    * ``start_method`` — how worker processes would be created here.

    The benchmark baseline records all of this in ``extra_info`` and the
    bench/regression gates key their speedup-vs-overhead bars on it — one
    definition, shared, so the gates can never disagree.
    """
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    return {
        "cpus": cpus,
        "gil_enabled": gil_enabled,
        "parallel_capable": cpus >= 2 and not gil_enabled,
        "process_capable": cpus >= 2,
        "start_method": _resolve_start_method(),
    }


# ----------------------------------------------------------------------
# Partitionable-chain analysis (reads the hooks each operator declares)
# ----------------------------------------------------------------------
def partitionable(op: Operator) -> bool:
    """Is this subtree a partitionable chain — a ``"source"`` leaf under
    zero or more ``"transparent"`` (order/row-preserving unary) operators?"""
    while True:
        kind = op.partition_kind
        if kind == "source":
            return True
        if kind == "transparent":
            op = op.child  # type: ignore[attr-defined]
            continue
        return False


def partition_pipeline(op: Operator, index: int, count: int) -> Operator:
    """Clone a partitionable chain for one partition: the source becomes
    its ``index``-of-``count`` contiguous slice, the transparent operators
    above are rebuilt over the slice."""
    kind = op.partition_kind
    if kind == "source":
        clone = op.partition_clone(index, count)
        if clone is None:  # pragma: no cover - hook contract violation
            raise TypeError(f"{op.label()} declares 'source' but returned no clone")
        return clone
    if kind == "transparent":
        child = partition_pipeline(op.child, index, count)  # type: ignore[attr-defined]
        clone = op.partition_through(child)
        if clone is None:  # pragma: no cover - hook contract violation
            raise TypeError(f"{op.label()} declares 'transparent' but returned no clone")
        return clone
    raise TypeError(f"{op.label()} is not part of a partitionable chain")


# ----------------------------------------------------------------------
# Ship registry: fork-inherited zero-copy scan shipping
# ----------------------------------------------------------------------
#: token -> live Table / SortedIndex.  Strong references, LRU-bounded:
#: an entry both (a) lets a forked worker find the object it inherited
#: and (b) pins the object so its ``id`` can never be reused while any
#: pool snapshot still maps the token to it.
_SHIP_REGISTRY: "OrderedDict[tuple, object]" = OrderedDict()
_SHIP_REGISTRY_CAP = 64

#: Tokens that may be shipped by reference *right now* — set (on this
#: thread) only while the process backend pickles chains destined for a
#: fork pool whose snapshot holds them.  Everywhere else (unit-test
#: round-trips, spawn pools) scans materialize their columns instead.
_ACTIVE_SHIP_TOKENS: frozenset = frozenset()


def active_ship_tokens() -> frozenset:
    """The tokens scans may currently ship by registry reference."""
    return _ACTIVE_SHIP_TOKENS


def shipped_object(token: tuple):
    """Worker-side registry lookup (inherited through ``fork``)."""
    return _SHIP_REGISTRY.get(token)


def _register_shippable(token: tuple, obj) -> None:
    """Pin an object in the registry and force its lazy caches (columnar
    view / sorted index array) so a subsequent fork inherits them built."""
    if token[0] == "table":
        obj.columnar()
    else:
        len(obj)  # SortedIndex: force the sorted-array build
    _SHIP_REGISTRY[token] = obj
    _SHIP_REGISTRY.move_to_end(token)
    while len(_SHIP_REGISTRY) > _SHIP_REGISTRY_CAP:
        _SHIP_REGISTRY.popitem(last=False)


def _collect_shippable(op: Operator) -> List[Tuple[tuple, object]]:
    """(token, object) pairs for every scan leaf in the subtree.  An
    ``IndexScan`` registers its index (which owns the table)."""
    out: List[Tuple[tuple, object]] = []
    seen = set()
    stack = [op]
    while stack:
        node = stack.pop()
        index = getattr(node, "index", None)
        table = getattr(node, "table", None)
        if index is not None:
            token: Optional[tuple] = ("index", id(index))
            obj: object = index
        elif table is not None:
            token = ("table", id(table))
            obj = table
        else:
            token = None
            obj = None
        if token is not None and token not in seen:
            seen.add(token)
            out.append((token, obj))
        stack.extend(node.children())
    return out


class _ShipContext:
    """Context manager installing the ship-by-reference token set."""

    def __init__(self, tokens: frozenset) -> None:
        self.tokens = tokens
        self._previous: frozenset = frozenset()

    def __enter__(self) -> "_ShipContext":
        global _ACTIVE_SHIP_TOKENS
        self._previous = _ACTIVE_SHIP_TOKENS
        _ACTIVE_SHIP_TOKENS = self.tokens
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE_SHIP_TOKENS
        _ACTIVE_SHIP_TOKENS = self._previous


# ----------------------------------------------------------------------
# Partition streams: the unit every backend hands back
# ----------------------------------------------------------------------
class _InlineStream:
    """A partition executed lazily on the calling thread."""

    def __init__(self, partition: Operator, batch_size: int) -> None:
        self._metrics = Metrics()
        self._generator = partition.execute_batches(self._metrics, batch_size)
        self._done = False

    @property
    def counters(self) -> Dict[str, int]:
        return self._metrics.counters

    def __iter__(self) -> Iterator[ColumnBatch]:
        for batch in self._generator:
            yield batch
        self._done = True

    def close(self) -> None:
        """Drain to completion so counters always total the serial run's."""
        if not self._done:
            for _ in self._generator:
                pass
            self._done = True


class _QueueStream:
    """A partition producing into a (per-partition) thread-safe queue."""

    def __init__(self) -> None:
        self.queue: "queue_module.SimpleQueue" = queue_module.SimpleQueue()
        self.counters: Dict[str, int] = {}
        self._done = False
        self._error: Optional[str] = None

    def __iter__(self) -> Iterator[ColumnBatch]:
        while True:
            if self._done:
                return
            kind, payload = self.queue.get()
            if kind == "m":
                yield payload
            elif kind == "d":
                self.counters = payload
                self._done = True
                return
            else:  # "e"
                self._done = True
                self._error = payload
                raise RuntimeError(f"exchange worker failed: {payload}")

    def close(self) -> None:
        for _ in self:
            pass
        if self._error is not None:
            raise RuntimeError(f"exchange worker failed: {self._error}")


def _produce_to_queue(
    partition: Operator, stream: _QueueStream, batch_size: int
) -> None:
    metrics = Metrics()
    try:
        for batch in partition.execute_batches(metrics, batch_size):
            if len(batch):
                stream.queue.put(("m", batch))
        stream.queue.put(("d", metrics.counters))
    except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
        stream.queue.put(("e", f"{type(exc).__name__}: {exc}"))


class _BackendRun:
    """What a backend hands the exchange: per-partition streams, a
    ``close()`` that drains everything, and serialization stats."""

    def __init__(self, streams: Sequence, stats: Optional[dict] = None) -> None:
        self.streams = list(streams)
        self.stats = stats if stats is not None else {}

    def close(self) -> None:
        for stream in self.streams:
            stream.close()


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class ExchangeBackend:
    """How partition pipelines actually execute.

    ``run`` starts every partition and returns a :class:`_BackendRun`
    whose streams yield :class:`ColumnBatch` morsels; after a stream is
    exhausted (or the run is closed) its ``counters`` hold the
    partition's private :class:`Metrics` totals.  The exchange merges
    those in partition-index order — never completion order.
    """

    name = "?"

    def run(self, partitions: Sequence[Operator], batch_size: int) -> _BackendRun:
        raise NotImplementedError


class InlineBackend(ExchangeBackend):
    """No pool: lazy, single-threaded, the deterministic floor."""

    name = "inline"

    def run(self, partitions, batch_size):
        for partition in partitions:
            partition.prepare_parallel()
        return _BackendRun(
            [_InlineStream(partition, batch_size) for partition in partitions],
            {"backend": "inline"},
        )


#: One process-wide thread pool, created lazily on the first threaded
#: drain and reused by every exchange — spawning a pool per execution
#: would put OS thread creation on the warm-query path.  Safe to share:
#: per-partition queues are unbounded, so producers never block and every
#: submitted task runs to completion regardless of interleaving (a
#: *bounded* queue on a shared fixed-size pool could deadlock when two
#: exchanges stream concurrently, e.g. under a merge join).
_SHARED_POOL: Optional[ThreadPoolExecutor] = None
_SHARED_POOL_LOCK = threading.Lock()


def _shared_pool() -> ThreadPoolExecutor:
    global _SHARED_POOL
    if _SHARED_POOL is None:
        with _SHARED_POOL_LOCK:
            if _SHARED_POOL is None:
                _SHARED_POOL = ThreadPoolExecutor(
                    max_workers=max(4, host_capability()["cpus"]),
                    thread_name_prefix="repro-exchange",
                )
    return _SHARED_POOL


class ThreadBackend(ExchangeBackend):
    """The shared thread pool; each partition streams batches through its
    own queue as it produces them (no whole-partition materialization)."""

    name = "thread"

    def run(self, partitions, batch_size):
        for partition in partitions:
            partition.prepare_parallel()  # build shared caches single-threaded
        streams = [_QueueStream() for _ in partitions]
        pool = _shared_pool()
        for partition, stream in zip(partitions, streams):
            pool.submit(_produce_to_queue, partition, stream, batch_size)
        return _BackendRun(streams, {"backend": "thread"})


# ----------------------------------------------------------------------
# The process backend: persistent worker pool + morsel demultiplexer
# ----------------------------------------------------------------------
def _process_worker(tasks, results) -> None:  # pragma: no cover - child process
    """Worker main loop: pull (partition) tasks until the ``None`` pill.

    Each task is a pre-pickled operator chain; results stream back as
    pre-pickled morsels so serialization failures raise *here*, visibly,
    instead of vanishing in a queue feeder thread.
    """
    while True:
        task = tasks.get()
        if task is None:
            return
        index, blob, batch_size, morsel_rows = task
        metrics = Metrics()
        try:
            op = pickle.loads(blob)
            pending: List[tuple] = []
            pending_rows = 0
            for batch in op.execute_batches(metrics, batch_size):
                length = len(batch)
                if not length:
                    continue
                pending.append((batch.columns, length))
                pending_rows += length
                if pending_rows >= morsel_rows:
                    payload = pickle.dumps(pending, pickle.HIGHEST_PROTOCOL)
                    results.put(("m", index, payload, pending_rows))
                    pending = []
                    pending_rows = 0
            if pending:
                payload = pickle.dumps(pending, pickle.HIGHEST_PROTOCOL)
                results.put(("m", index, payload, pending_rows))
            results.put(("d", index, metrics.counters, None))
        except BaseException as exc:  # noqa: BLE001 - relayed to the parent
            try:
                results.put(("e", index, f"{type(exc).__name__}: {exc}", None))
            except Exception:
                return


class _ProcessPool:
    """A persistent pool of daemon worker processes.

    ``snapshot`` maps ship tokens to the objects the workers inherited at
    fork time (empty under spawn); ``fork_epoch`` is the catalog epoch
    then.  Any epoch movement restarts the pool — the same staleness rule
    the plan cache and ``Database.stats`` obey — so workers can never
    scan a pre-mutation memory image.
    """

    def __init__(self, size: int, method: str) -> None:
        import multiprocessing

        context = multiprocessing.get_context(method)
        self.method = method
        self.size = size
        self.tasks = context.Queue()
        self.results = context.Queue(maxsize=_RESULT_QUEUE_DEPTH)
        self.fork_epoch = current_epoch()
        self.snapshot: Dict[tuple, object] = (
            dict(_SHIP_REGISTRY) if method == "fork" else {}
        )
        self.broken = False
        self.processes = [
            context.Process(
                target=_process_worker,
                args=(self.tasks, self.results),
                daemon=True,
                name=f"repro-exchange-{i}",
            )
            for i in range(size)
        ]
        for process in self.processes:
            process.start()

    def alive(self) -> bool:
        return all(process.is_alive() for process in self.processes)

    def shutdown(self) -> None:
        for process in self.processes:
            process.terminate()
        for process in self.processes:
            process.join(timeout=2.0)
        for q in (self.tasks, self.results):
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass


_PROCESS_POOL: Optional[_ProcessPool] = None
#: Serializes process-backend runs: the pool has one result queue, so one
#: streaming run owns it at a time.  A *nested* run on the same thread
#: (two exchanges pulled interleaved, e.g. under a merge join) falls back
#: to the inline backend instead of deadlocking on the lock.
_PROCESS_RUN_LOCK = threading.Lock()
_PROCESS_RUN_OWNER: Optional[int] = None


def shutdown_process_pool() -> None:
    """Tear down the persistent process pool (tests; start-method swaps)."""
    global _PROCESS_POOL
    with _SHARED_POOL_LOCK:
        if _PROCESS_POOL is not None:
            _PROCESS_POOL.shutdown()
            _PROCESS_POOL = None


def _ensure_process_pool(needed: Sequence[Tuple[tuple, object]]) -> _ProcessPool:
    """The live pool, restarted when its memory image went stale.

    Restart conditions: no pool yet, a worker died, the configured start
    method changed, or — fork pools only — the catalog epoch moved or a
    needed object was never part of the fork image.  Registration happens
    *before* the (re)fork so the children inherit every needed object
    with its caches built.
    """
    global _PROCESS_POOL
    method = _resolve_start_method()
    for token, obj in needed:
        if _SHIP_REGISTRY.get(token) is not obj:
            _register_shippable(token, obj)
    pool = _PROCESS_POOL
    stale = (
        pool is None
        or pool.broken
        or pool.method != method
        or not pool.alive()
        or (
            pool.method == "fork"
            and (
                pool.fork_epoch != current_epoch()
                or any(pool.snapshot.get(token) is not obj for token, obj in needed)
            )
        )
    )
    if stale:
        if pool is not None:
            pool.shutdown()
        pool = _ProcessPool(max(4, host_capability()["cpus"]), method)
        _PROCESS_POOL = pool
    return pool


class _ProcessRun(_BackendRun):
    """Demultiplexer for one process-backend execution.

    Workers tag every message with its partition index; the parent
    buffers out-of-order morsels per partition so consumers (union in
    partition order, merge interleaved) see deterministic streams no
    matter which worker finished first.
    """

    def __init__(self, pool, partitions, blobs, batch_size) -> None:
        self.pool = pool
        self.partitions = list(partitions)
        count = len(self.partitions)
        self.buffers: List[deque] = [deque() for _ in range(count)]
        self.done = [False] * count
        self.partition_counters: List[Dict[str, int]] = [{} for _ in range(count)]
        self.error: Optional[str] = None
        self.finished = False
        stats = {
            "backend": "process",
            "start_method": pool.method,
            "chain_bytes": sum(len(blob) for blob in blobs),
            "morsel_bytes": 0,
            "morsels": 0,
            "rows_shipped": 0,
            "token_shipped_chains": 0,
        }
        super().__init__([_ProcessStream(self, i) for i in range(count)], stats)
        # Work stealing: partitions go into one shared task queue; each of
        # the pool's workers pulls the next one the moment it frees up.
        for index, blob in enumerate(blobs):
            pool.tasks.put((index, blob, batch_size, MORSEL_ROWS))

    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Receive one message, with worker-liveness checks."""
        if self.error is not None:
            raise RuntimeError(f"process exchange worker failed: {self.error}")
        while True:
            try:
                message = self.pool.results.get(timeout=_PULL_TIMEOUT)
                break
            except queue_module.Empty:
                if not self.pool.alive():
                    self.pool.broken = True
                    self._release()
                    raise RuntimeError(
                        "process exchange worker died unexpectedly"
                    ) from None
        kind, index, payload, extra = message
        if kind == "m":
            self.stats["morsel_bytes"] += len(payload)
            self.stats["morsels"] += 1
            self.stats["rows_shipped"] += extra
            schema = self.partitions[index].schema
            for columns, length in pickle.loads(payload):
                self.buffers[index].append(ColumnBatch(schema, columns, length))
        elif kind == "d":
            self.partition_counters[index] = payload
            self.done[index] = True
            self._maybe_finish()
        else:  # "e"
            self.done[index] = True
            self.error = payload
            self._maybe_finish()
            raise RuntimeError(f"process exchange worker failed: {payload}")

    def _maybe_finish(self) -> None:
        if all(self.done):
            self._release()

    def _release(self) -> None:
        global _PROCESS_RUN_OWNER
        if not self.finished:
            self.finished = True
            _PROCESS_RUN_OWNER = None
            _PROCESS_RUN_LOCK.release()

    def close(self) -> None:
        """Drain every partition to completion and release the run lock.

        Best-effort on the error path: a dead worker already surfaced (or
        will never send more), so force-release and mark the pool for
        restart rather than wait forever.
        """
        try:
            while not all(self.done):
                self.pump()
        except BaseException:
            self.pool.broken = True
            self._release()
            raise
        finally:
            self._release()


class _ProcessStream:
    def __init__(self, run: _ProcessRun, index: int) -> None:
        self.run = run
        self.index = index

    @property
    def counters(self) -> Dict[str, int]:
        return self.run.partition_counters[self.index]

    def __iter__(self) -> Iterator[ColumnBatch]:
        buffer = self.run.buffers[self.index]
        while True:
            if buffer:
                yield buffer.popleft()
            elif self.run.done[self.index]:
                return
            else:
                self.run.pump()

    def close(self) -> None:
        # Per-stream close defers to the run: counters require *every*
        # partition drained, and the run lock must release exactly once.
        self.run.close()


class ProcessBackend(ExchangeBackend):
    """True multicore: pickled chains out, morsel streams back."""

    name = "process"

    def run(self, partitions, batch_size):
        global _PROCESS_RUN_OWNER
        me = threading.get_ident()
        if _PROCESS_RUN_OWNER == me:
            # Nested run on this thread (two exchanges pulled interleaved,
            # e.g. both inputs of a merge join): the result queue is owned
            # by the outer run, so run this one inline — deterministic,
            # bit-identical, just not process-parallel.
            return InlineBackend().run(partitions, batch_size)
        _PROCESS_RUN_LOCK.acquire()
        _PROCESS_RUN_OWNER = me
        try:
            needed = _collect_shippable(partitions[0])
            pool = _ensure_process_pool(needed)
            tokens = frozenset(
                token for token, obj in needed if pool.snapshot.get(token) is obj
            )
            with _ShipContext(tokens):
                blobs = [
                    pickle.dumps(partition, pickle.HIGHEST_PROTOCOL)
                    for partition in partitions
                ]
            run = _ProcessRun(pool, partitions, blobs, batch_size)
            run.stats["token_shipped_chains"] = len(tokens)
            return run
        except BaseException:
            _PROCESS_RUN_OWNER = None
            _PROCESS_RUN_LOCK.release()
            raise


_BACKEND_INSTANCES: Dict[str, ExchangeBackend] = {
    "inline": InlineBackend(),
    "thread": ThreadBackend(),
    "process": ProcessBackend(),
}


def get_backend(name: str) -> ExchangeBackend:
    try:
        return _BACKEND_INSTANCES[name]
    except KeyError:
        raise ValueError(
            f"unknown exchange backend {name!r} (expected one of {BACKENDS})"
        ) from None


# ----------------------------------------------------------------------
# Exchange operators
# ----------------------------------------------------------------------
class Exchange(Operator):
    """Base exchange: run per-partition pipelines, reassemble one stream.

    ``partitions`` are the per-partition operator trees (each with the
    same schema, and each individually honoring the declared ordering).
    ``subtree`` — when built by the planner — is the serial chain the
    partitions were cloned from: it is what ``children()`` exposes for
    EXPLAIN, and what row-mode ``execute`` runs (the deterministic serial
    fallback, with exactly the serial plan's counters).  ``backend``
    names the :class:`ExchangeBackend` batch execution drains through
    (``workers <= 1`` or a single partition always degrades to inline).
    """

    #: "merge" or "union" — also the EXPLAIN vocabulary.
    kind = "exchange"

    def __init__(
        self,
        partitions: Sequence[Operator],
        workers: Optional[int] = None,
        subtree: Optional[Operator] = None,
        backend: Optional[str] = None,
        contiguous: bool = False,
    ) -> None:
        partitions = list(partitions)
        if not partitions:
            raise ValueError("an exchange needs at least one partition")
        if workers is None:
            workers = len(partitions)
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.partitions: List[Operator] = partitions
        self.workers = workers
        self.subtree = subtree
        self.backend = backend if backend is not None else DEFAULT_BACKEND
        get_backend(self.backend)  # validate eagerly
        #: Planner-built exchanges are contiguous: the partition_clone
        #: contract guarantees the streams concatenate (in index order)
        #: to the serial stream.
        self.contiguous = contiguous
        #: Serialization accounting for the most recent batch execution
        #: (kept out of query Metrics — the serial plan ships nothing, and
        #: counter parity is the differential harness's contract).
        self.exchange_stats: dict = {}
        template = subtree if subtree is not None else partitions[0]
        self.schema = template.schema
        self.ordering = tuple(template.ordering)

    # ------------------------------------------------------------------
    def children(self) -> Sequence[Operator]:
        if self.subtree is not None:
            return (self.subtree,)
        return tuple(self.partitions)

    def label(self) -> str:
        return f"{type(self).__name__}({len(self.partitions)} partitions)"

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        """Row mode: the deterministic serial fallback.

        A planner-built exchange simply runs the serial subtree it
        replaced — bit- and counter-identical to the unparallelized plan
        by construction.  A bare exchange (test seam) drains its
        partitions through the batch path instead.
        """
        if self.subtree is not None:
            yield from self.subtree.execute(metrics)
            return
        for batch in self.execute_batches(metrics):
            yield from batch.rows()

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        if self.workers <= 1 or len(self.partitions) <= 1:
            backend = get_backend("inline")
        else:
            backend = get_backend(self.backend)
        run = backend.run(self.partitions, batch_size)
        try:
            yield from self._emit_streams(run.streams, batch_size)
        finally:
            run.close()
            # Deterministic counter merge: partition-index order, after
            # every stream drained — completion order never matters.
            for stream in run.streams:
                for key, value in stream.counters.items():
                    metrics.add(key, value)
            self.exchange_stats = run.stats

    def _emit_streams(
        self, streams: Sequence, batch_size: int
    ) -> Iterator[ColumnBatch]:
        raise NotImplementedError


class UnionExchange(Exchange):
    """Order-insensitive exchange: emit partition streams in partition
    order.  Over the contiguous partitions the planner builds, the
    concatenation *is* the serial stream, so the choice of union over
    merge is purely a cost call — no ordering obligation exists."""

    kind = "union"

    def __init__(
        self, partitions, workers=None, subtree=None, backend=None, contiguous=False
    ) -> None:
        super().__init__(partitions, workers, subtree, backend, contiguous)
        # Concatenation makes no ordering promise: even if the partitions
        # are individually sorted, their ranges may interleave.  Never
        # advertise an OrderSpec this operator does not enforce — that is
        # the soundness contract every provides() consumer trusts.  (The
        # planner only picks union for empty specs anyway.)
        self.ordering = ()

    def _emit_streams(self, streams, batch_size):
        for stream in streams:
            for batch in stream:
                if len(batch):
                    yield batch


class MergeExchange(Exchange):
    """Order-preserving exchange: reassemble on the declared ordering.

    Each partition stream must individually honor ``keys`` (the chain's
    declared :class:`~repro.optimizer.properties.OrderSpec`).

    * ``contiguous`` (planner-built): the ``partition_clone`` contract
      guarantees concatenation in partition order *is* the serial stream
      — which honors the declared order — so emission is a streaming
      concat: no heap, no materialization, no sort.
    * otherwise (the randomly-partitioned property-test instances): a
      streaming stable k-way ``heapq.merge`` interleaves the morsel
      streams without sorting anything; ties across partitions resolve
      to the lower partition index (``heapq.merge`` is stable by input
      position).
    """

    kind = "merge"

    def __init__(
        self,
        partitions: Sequence[Operator],
        workers: Optional[int] = None,
        subtree: Optional[Operator] = None,
        backend: Optional[str] = None,
        contiguous: bool = False,
        keys: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(partitions, workers, subtree, backend, contiguous)
        if keys is None:
            keys = self.ordering
        self.keys: Tuple[str, ...] = tuple(keys)
        if not self.keys:
            raise ValueError("MergeExchange needs a non-empty ordering")
        self._positions = tuple(self.schema.position(key) for key in self.keys)

    def label(self) -> str:
        return (
            f"MergeExchange({len(self.partitions)} partitions "
            f"on [{', '.join(self.keys)}])"
        )

    def _key(self, row: tuple) -> tuple:
        positions = self._positions
        return tuple(row[p] for p in positions)

    def _emit_streams(self, streams, batch_size):
        if self.contiguous:
            for stream in streams:
                for batch in stream:
                    if len(batch):
                        yield batch
            return
        merged = heapq.merge(
            *(_rows_of_stream(stream) for stream in streams), key=self._key
        )
        schema = self.schema
        while True:
            chunk = list(islice(merged, batch_size))
            if not chunk:
                return
            yield ColumnBatch.from_rows(schema, chunk)


def _rows_of_stream(stream) -> Iterator[tuple]:
    for batch in stream:
        yield from batch.rows()


# ----------------------------------------------------------------------
# Exchange placement (called by the planner when ``workers`` is set)
# ----------------------------------------------------------------------
def insert_exchanges(
    root: Operator,
    workers: int,
    info=None,
    backend: Optional[str] = None,
    min_rows: int = 0,
    row_estimator=None,
) -> Operator:
    """Wrap every maximal partitionable chain of a physical plan in an
    exchange of ``workers`` contiguous partitions.

    The exchange kind is decided by the chain's *declared* order property
    (:func:`repro.optimizer.properties.exchange_kind`): a non-empty
    :class:`~repro.optimizer.properties.OrderSpec` demands a
    :class:`MergeExchange` keyed on it, the empty spec takes the cheaper
    :class:`UnionExchange`.  ``LIMIT`` subtrees are left serial (their
    ``partition_kind`` is ``"barrier"`` — exact early-termination parity).

    ``min_rows > 0`` cost-gates placement: a chain whose source scans
    fewer estimated rows stays serial (``row_estimator(table)`` supplies
    the estimate — the planner passes epoch-keyed ``TableStats`` row
    counts — with ``len(table.rows)`` as the fallback; chains with no
    table, e.g. test seams, are never gated).  Direct callers default to
    ``min_rows=0``: placement exactly where asked.

    ``info`` — a :class:`~repro.optimizer.planner.PlanInfo` — receives one
    ``exchanges`` record per placement (and a note per gated skip) for
    EXPLAIN reporting.
    """
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    backend = backend if backend is not None else DEFAULT_BACKEND
    get_backend(backend)  # validate
    return _place(root, workers, info, backend, min_rows, row_estimator)


def _chain_source_rows(op: Operator, row_estimator) -> Optional[int]:
    """Estimated rows the chain's source scan reads (None: no estimate)."""
    node = op
    while node.partition_kind == "transparent":
        node = node.child  # type: ignore[attr-defined]
    table = getattr(node, "table", None)
    if table is None:
        return None
    if row_estimator is not None:
        try:
            estimate = row_estimator(table)
        except (KeyError, ValueError, AttributeError):
            estimate = None
        if estimate is not None:
            return int(estimate)
    return len(table.rows)


def _place(op: Operator, workers: int, info, backend, min_rows, row_estimator) -> Operator:
    if op.partition_kind == "barrier":
        return op
    if partitionable(op):
        if min_rows > 0:
            rows = _chain_source_rows(op, row_estimator)
            if rows is not None and rows < min_rows:
                if info is not None:
                    info.notes.append(
                        f"exchange skipped over {op.label()}: ≈{rows} rows "
                        f"< min-rows gate {min_rows}"
                    )
                return op
        return _make_exchange(op, workers, info, backend)
    for child in tuple(op.children()):
        replacement = _place(child, workers, info, backend, min_rows, row_estimator)
        if replacement is not child:
            op.replace_child(child, replacement)
    return op


def _make_exchange(subtree: Operator, workers: int, info, backend) -> Exchange:
    # Lazy import: the engine layer must not depend on the optimizer
    # package at import time (the optimizer imports the engine's
    # operators) — same rule as ``operators.base.order_spec``.
    from ..optimizer.properties import exchange_kind

    spec = subtree.provides()
    partitions = [
        partition_pipeline(subtree, index, workers) for index in range(workers)
    ]
    if exchange_kind(spec) == "merge":
        exchange: Exchange = MergeExchange(
            partitions,
            workers=workers,
            subtree=subtree,
            backend=backend,
            contiguous=True,
            keys=tuple(spec),
        )
    else:
        exchange = UnionExchange(
            partitions,
            workers=workers,
            subtree=subtree,
            backend=backend,
            contiguous=True,
        )
    if info is not None:
        info.exchanges.append(
            (exchange.kind, len(partitions), tuple(spec), subtree.label())
        )
    return exchange

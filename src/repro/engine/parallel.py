"""Parallel batch execution: partitioned pipelines + order-preserving
exchanges over pluggable, fault-tolerant backends.

The :class:`~repro.engine.batch.ColumnBatch` stream of PR 3 is the natural
*exchange granule* for parallelism: a partitionable leaf (a scan) is split
into contiguous partitions, the order/row-preserving chain above it
(filters, projections) is cloned per partition, the per-partition pipelines
run on an :class:`ExchangeBackend`, and a single **exchange** operator
reassembles the partition morsel streams into one batch stream for the
serial remainder of the plan.

Three backends (``Database.execute(..., workers=K, backend=...)``):

* ``inline`` — no pool at all: partitions run lazily on the calling
  thread, in partition order for union and interleaved on demand for
  merge.  The deterministic floor every other backend is compared against.
* ``thread`` — the shared :class:`ThreadPoolExecutor`.  Each partition
  streams its batches through a bounded per-partition channel.  Real
  speedup only on free-threaded builds (PEP 703); on the stock GIL it
  buys architecture, not parallelism.
* ``process`` — true multicore: partition chains are *pickled* and shipped
  to a persistent pool of worker processes, which stream
  ``ColumnBatch`` columns back through one bounded result queue in
  **morsels** of ~:data:`MORSEL_ROWS` rows.  Workers pull partition tasks
  from a shared task queue (work stealing: whichever worker frees first
  takes the next partition) and a parent-side demultiplexer reassembles
  the streams deterministically — completion order never leaks into
  results or counters.

Fault tolerance (the thread and process backends *recover*; inline is
the floor they degrade to):

* **Release-on-completion**: the consumer sees a partition's batches
  only after its terminal "done" message arrives.  A failed attempt's
  partial output is discarded wholesale and the retry re-produces the
  partition from scratch — partitions are deterministic, so recovered
  runs stay bit- and counter-identical to serial, and consumers can
  never observe duplicated or torn streams.
* **Attempt tags**: every worker message carries the attempt number it
  belongs to; messages from superseded attempts are discarded, so a
  re-dispatched partition racing a not-actually-dead original is
  harmless.
* **Retry, then degrade**: a failed partition attempt (worker death,
  in-kernel exception, dropped result stream) is re-enqueued with capped
  exponential backoff up to :data:`RETRY_LIMIT` times
  (``REPRO_RETRY_LIMIT``, default 2); past that, the partition walks the
  degradation ladder — ``process`` → ``thread`` → ``inline`` — re-running
  *only the failed partition*.  When even inline fails, the typed
  :class:`~repro.engine.errors.ExecutionFailed` carries the first
  worker-side traceback.  Recovery accounting (``retries``,
  ``degraded_partitions``, ``degraded_to``) lives in
  ``Exchange.exchange_stats``, never in query :class:`Metrics` — the
  parity invariant survives every recovery path.
* **Deadlines/cancellation**: the consumer-side pump checks the
  execution's :class:`~repro.engine.errors.CancelToken` between morsels;
  on timeout the run *aborts* (producers unblocked, pool marked for
  restart) instead of draining, and the next query gets a healthy pool.
  Workers never see the token — no cross-process signalling needed.
* **Deterministic fault injection**: producers call the
  :mod:`repro.engine.faults` seam before emitting each batch, so the
  chaos harness can replay kills/raises/delays/drops on a fixed
  schedule (``REPRO_FAULTS``).  With no plans active the seam is one
  falsy check.

Process-backend shipping, in detail:

* Under the ``fork`` start method (the Linux default; override with
  ``REPRO_START_METHOD``) the pool's workers inherit the parent's memory,
  so scans don't ship data at all: a :meth:`__reduce__` hook replaces the
  ``Table``/``SortedIndex`` reference with a *token* into the module's
  ship registry, and the forked worker rebuilds a normal scan around the
  object it already has.  Staleness is governed by the catalog epoch
  (:mod:`repro.engine.epoch`): any mutation since the pool forked
  restarts it, so a worker can never scan a pre-mutation memory image.
* Under ``spawn`` (pinned in CI for portability) — or for objects the
  current fork image doesn't hold — scans materialize their resolved
  partition slice into a picklable ``ShippedScan`` (plain column lists +
  schema, no ``Table`` back-pointers).  Execution-time bounds are
  preserved either way: pickling happens at execution start, and the
  token path re-resolves bounds in the worker.
* Serialization is accounted *outside* query :class:`Metrics` (parity!):
  each exchange records ``exchange_stats`` — shipped chain bytes, morsel
  count/bytes, rows shipped — for the backend that actually ran.

Two exchange kinds, chosen by the planner from the physical property the
subtree already declares (see
:func:`repro.optimizer.properties.exchange_kind`):

* :class:`MergeExchange` — when the subtree declares a non-empty
  :class:`~repro.optimizer.properties.OrderSpec`.  Planner-built
  exchanges are ``contiguous``: the ``partition_clone`` contract says the
  partition streams concatenate (in index order) to exactly the serial
  stream, which honors the declared order — so the "merge" is a
  streaming concatenation, no heap, no sort.  Test-built exchanges over
  genuinely interleaving partitions use a streaming stable k-way
  ``heapq.merge`` (ties to the lower partition index).
* :class:`UnionExchange` — when the subtree declares no ordering: emit
  partition streams in partition-index order (deterministic; over
  contiguous partitions this *is* the serial stream).

The execution contract — enforced query-by-query in the mode-matrix
differential (``tests/harness/test_differential.py``, including its
process-backend and chaos legs) and property-tested in
``tests/engine/test_parallel.py``:

* **bit-identical rows**: a parallel execution emits exactly the serial
  batch path's rows in exactly the serial order, at every worker count,
  on every backend — *including recovered runs*;
* **counter-identical metrics**: every partition charges a private
  :class:`~repro.engine.operators.base.Metrics`, merged into the shared
  one in partition-index order *after* the streams drain — regardless of
  completion order; per-execute charges (an ``index_probes`` probe) are
  charged by partition 0 only, so totals equal the serial path's
  exactly — exchanges themselves charge nothing, because the serial plan
  has no exchange;
* **determinism**: results never depend on thread or process scheduling —
  partitions are fixed at plan time, drained to completion, and
  reassembled in a fixed order.

Placement is **cost-gated**: :func:`insert_exchanges` skips chains whose
source scans fewer than ``min_rows`` estimated rows (the planner passes
:data:`PARALLEL_MIN_ROWS`, fed by epoch-keyed
:class:`~repro.engine.stats.TableStats` row counts), so dimension-table
scans never pay exchange overhead.  ``LIMIT`` subtrees are never
parallelized (``partition_kind == "barrier"``): Limit stops pulling its
child early, and an eager partition drain would charge scan work the
serial path never does.
"""
from __future__ import annotations

import atexit
import os
import heapq
import pickle
import queue as queue_module
import sys
import threading
import time
import traceback
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from itertools import islice
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from . import faults as faults_mod
from .batch import DEFAULT_BATCH_SIZE, ColumnBatch
from .epoch import current_epoch
from .errors import ExecutionFailed, QueryError
from .operators.base import Metrics, Operator

__all__ = [
    "Exchange",
    "UnionExchange",
    "MergeExchange",
    "ExchangeBackend",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "MORSEL_ROWS",
    "PARALLEL_MIN_ROWS",
    "RETRY_LIMIT",
    "partitionable",
    "partition_pipeline",
    "insert_exchanges",
    "host_capability",
    "shutdown_process_pool",
]

#: The recognized backend names, in cost order.
BACKENDS: Tuple[str, ...] = ("inline", "thread", "process")

#: What ``workers=K`` selects when no ``backend=`` is given — threads, the
#: PR 4 behaviour (bounded overhead everywhere, speedup on free-threaded
#: builds).
DEFAULT_BACKEND = "thread"

#: Target morsel size (rows) for process-backend result streaming: big
#: enough to amortize one pickle + queue hop over thousands of rows, small
#: enough that the parent overlaps reassembly with worker production.
#: Override with ``REPRO_MORSEL_ROWS``.
MORSEL_ROWS = max(1, int(os.environ.get("REPRO_MORSEL_ROWS", "16384")))

#: Placement gate: chains whose source scans fewer estimated rows than
#: this plan serial (exchange overhead would dominate — the snowflake
#: dimension tables are the motivating case).  Chosen between the test
#: workloads' dimension tables (≤ a few hundred rows) and their fact
#: tables (thousands+).  Override with ``REPRO_PARALLEL_MIN_ROWS``.
PARALLEL_MIN_ROWS = max(0, int(os.environ.get("REPRO_PARALLEL_MIN_ROWS", "1024")))

#: How many times a failed partition attempt is re-enqueued (with capped
#: exponential backoff) before the run degrades backend→backend.
#: Override with ``REPRO_RETRY_LIMIT``.
RETRY_LIMIT = max(0, int(os.environ.get("REPRO_RETRY_LIMIT", "2")))

#: Retry backoff: ``base * 2^(failures-1)`` seconds, capped.  Short on
#: purpose — the failures this engine retries (a dead worker, an
#: injected fault) are not congestion, so the cap keeps recovered-run
#: latency bounded while still spacing genuinely flapping retries out.
RETRY_BACKOFF_S = 0.02
RETRY_BACKOFF_CAP_S = 0.25

#: Process-pool result-queue bound (messages in flight): backpressure so
#: fast workers never buffer unbounded morsels in the queue itself.
_RESULT_QUEUE_DEPTH = 16

#: Thread-backend per-partition channel bound (messages in flight): the
#: same backpressure for thread producers.  Bounded queues need the
#: consumer-close contract below — see :class:`_Channel`.
_STREAM_QUEUE_DEPTH = 64

#: Seconds between worker-liveness checks while the process-backend
#: consumer waits on the result queue.  Short: it is also the detection
#: latency for a killed worker.
_PULL_TIMEOUT = 0.25

#: Seconds a producer/consumer waits on a channel before re-checking the
#: closed/finished flags (thread backend).
_CHANNEL_POLL = 0.05


def _resolve_start_method() -> str:
    """``REPRO_START_METHOD`` if set, else ``fork`` where available
    (Linux: cheap workers that inherit table memory), else ``spawn``."""
    import multiprocessing

    method = os.environ.get("REPRO_START_METHOD", "").strip()
    if method:
        return method
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def host_capability() -> dict:
    """Can this host actually run Python code in parallel — and how?

    * ``parallel_capable`` — the **thread** backend scales: a free-threaded
      build (PEP 703) with more than one core.
    * ``process_capable`` — the **process** backend scales: more than one
      core (the GIL is per-process, so a stock build is fine).
    * ``start_method`` — how worker processes would be created here.

    The benchmark baseline records all of this in ``extra_info`` and the
    bench/regression gates key their speedup-vs-overhead bars on it — one
    definition, shared, so the gates can never disagree.
    """
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    return {
        "cpus": cpus,
        "gil_enabled": gil_enabled,
        "parallel_capable": cpus >= 2 and not gil_enabled,
        "process_capable": cpus >= 2,
        "start_method": _resolve_start_method(),
    }


# ----------------------------------------------------------------------
# Partitionable-chain analysis (reads the hooks each operator declares)
# ----------------------------------------------------------------------
def partitionable(op: Operator) -> bool:
    """Is this subtree a partitionable chain — a ``"source"`` leaf under
    zero or more ``"transparent"`` (order/row-preserving unary) operators?"""
    while True:
        kind = op.partition_kind
        if kind == "source":
            return True
        if kind == "transparent":
            op = op.child  # type: ignore[attr-defined]
            continue
        return False


def partition_pipeline(op: Operator, index: int, count: int) -> Operator:
    """Clone a partitionable chain for one partition: the source becomes
    its ``index``-of-``count`` contiguous slice, the transparent operators
    above are rebuilt over the slice."""
    kind = op.partition_kind
    if kind == "source":
        clone = op.partition_clone(index, count)
        if clone is None:  # pragma: no cover - hook contract violation
            raise TypeError(f"{op.label()} declares 'source' but returned no clone")
        return clone
    if kind == "transparent":
        child = partition_pipeline(op.child, index, count)  # type: ignore[attr-defined]
        clone = op.partition_through(child)
        if clone is None:  # pragma: no cover - hook contract violation
            raise TypeError(f"{op.label()} declares 'transparent' but returned no clone")
        return clone
    raise TypeError(f"{op.label()} is not part of a partitionable chain")


# ----------------------------------------------------------------------
# Ship registry: fork-inherited zero-copy scan shipping
# ----------------------------------------------------------------------
#: token -> live Table / SortedIndex.  Strong references, LRU-bounded:
#: an entry both (a) lets a forked worker find the object it inherited
#: and (b) pins the object so its ``id`` can never be reused while any
#: pool snapshot still maps the token to it.
_SHIP_REGISTRY: "OrderedDict[tuple, object]" = OrderedDict()
_SHIP_REGISTRY_CAP = 64

#: Tokens that may be shipped by reference *right now* — set (on this
#: thread) only while the process backend pickles chains destined for a
#: fork pool whose snapshot holds them.  Everywhere else (unit-test
#: round-trips, spawn pools) scans materialize their columns instead.
_ACTIVE_SHIP_TOKENS: frozenset = frozenset()


def active_ship_tokens() -> frozenset:
    """The tokens scans may currently ship by registry reference."""
    return _ACTIVE_SHIP_TOKENS


def shipped_object(token: tuple):
    """Worker-side registry lookup (inherited through ``fork``)."""
    return _SHIP_REGISTRY.get(token)


def _register_shippable(token: tuple, obj) -> None:
    """Pin an object in the registry and force its lazy caches (columnar
    view / sorted index array) so a subsequent fork inherits them built."""
    if token[0] == "table":
        obj.columnar()
    else:
        len(obj)  # SortedIndex: force the sorted-array build
    _SHIP_REGISTRY[token] = obj
    _SHIP_REGISTRY.move_to_end(token)
    while len(_SHIP_REGISTRY) > _SHIP_REGISTRY_CAP:
        _SHIP_REGISTRY.popitem(last=False)


def _collect_shippable(op: Operator) -> List[Tuple[tuple, object]]:
    """(token, object) pairs for every scan leaf in the subtree.  An
    ``IndexScan`` registers its index (which owns the table)."""
    out: List[Tuple[tuple, object]] = []
    seen = set()
    stack = [op]
    while stack:
        node = stack.pop()
        index = getattr(node, "index", None)
        table = getattr(node, "table", None)
        if index is not None:
            token: Optional[tuple] = ("index", id(index))
            obj: object = index
        elif table is not None:
            token = ("table", id(table))
            obj = table
        else:
            token = None
            obj = None
        if token is not None and token not in seen:
            seen.add(token)
            out.append((token, obj))
        stack.extend(node.children())
    return out


class _ShipContext:
    """Context manager installing the ship-by-reference token set."""

    def __init__(self, tokens: frozenset) -> None:
        self.tokens = tokens
        self._previous: frozenset = frozenset()

    def __enter__(self) -> "_ShipContext":
        global _ACTIVE_SHIP_TOKENS
        self._previous = _ACTIVE_SHIP_TOKENS
        _ACTIVE_SHIP_TOKENS = self.tokens
        return self

    def __exit__(self, *exc) -> None:
        global _ACTIVE_SHIP_TOKENS
        _ACTIVE_SHIP_TOKENS = self._previous


# ----------------------------------------------------------------------
# Internal recovery plumbing
# ----------------------------------------------------------------------
class _ConsumerClosed(Exception):
    """Producer-side signal: the consumer closed the channel; stop."""


class _AttemptFailed(Exception):
    """One local (degraded-rung) attempt failed, with the relayed
    worker traceback when one exists."""

    def __init__(self, message: str, tb: Optional[str] = None) -> None:
        super().__init__(message)
        self.tb = tb


def _backoff(failures: int) -> None:
    time.sleep(min(RETRY_BACKOFF_S * (2 ** max(0, failures - 1)), RETRY_BACKOFF_CAP_S))


class _Channel:
    """A bounded per-partition message queue with consumer-close semantics
    (the hardened successor of the old unbounded ``_QueueStream``).

    The bound gives thread producers backpressure; backpressure demands
    an early-termination contract, or a consumer that stops mid-stream
    (``Limit`` above an exchange, a timeout, an aborted run) would leave
    its producer blocked on a full queue forever.  The contract:
    producers :meth:`put` in a short-timeout loop re-checking ``closed``;
    the consumer's :meth:`close` raises the flag *and drains pending
    items*, so a blocked producer frees within one poll interval.
    ``producer_finished`` (set in the producer's ``finally``) lets the
    consumer distinguish a silently-dead producer — the dropped-results
    fault — from a slow one.
    """

    __slots__ = ("queue", "closed", "producer_finished")

    def __init__(self, depth: Optional[int] = None) -> None:
        self.queue: "queue_module.Queue" = queue_module.Queue(
            maxsize=depth if depth is not None else _STREAM_QUEUE_DEPTH
        )
        self.closed = False
        self.producer_finished = False

    def put(self, item) -> None:
        """Producer side: block with backpressure, bail when closed."""
        while True:
            if self.closed:
                raise _ConsumerClosed()
            try:
                self.queue.put(item, timeout=_CHANNEL_POLL)
                return
            except queue_module.Full:
                continue

    def close(self) -> None:
        """Consumer side: signal producers to stop, and unblock any
        producer currently waiting on a full queue by draining it."""
        self.closed = True
        try:
            while True:
                self.queue.get_nowait()
        except queue_module.Empty:
            pass


def _local_tracer(partition: Operator):
    """A fresh per-attempt tracer for one partition (lazy import: the
    engine only touches :mod:`repro.obs` when tracing is on)."""
    from ..obs.tracer import Tracer

    tracer = Tracer()
    tracer.register_plan(partition)
    return tracer


def _dump_spans(tracer) -> Optional[list]:
    if tracer is None:
        return None
    tracer.finish()
    return tracer.dump()


def _produce_to_channel(
    partition: Operator,
    channel: _Channel,
    batch_size: int,
    index: int,
    attempt: int,
    plans: Tuple,
    backend: str = "thread",
    trace: bool = False,
) -> None:
    """Thread-side producer for one partition attempt.

    Message protocol: ``("m", batch)`` morsels, then exactly one terminal
    ``("d", (counters, spans))`` or ``("e", (message, traceback))``.  The
    injected drop-results fault ends the stream with *no* terminal
    message — which the consumer detects via ``producer_finished``.

    ``spans`` is the attempt's local trace dump (``None`` untraced):
    spans ride only the terminal message, so a failed or superseded
    attempt's spans vanish with the attempt — exactly the
    release-on-completion rule batches follow.
    """
    tracer = _local_tracer(partition) if trace else None
    metrics = Metrics(tracer=tracer)
    try:
        batch_no = 0
        for batch in partition.execute_batches(metrics, batch_size):
            if plans:
                faults_mod.fire(plans, index, batch_no, attempt, backend)
            batch_no += 1
            if len(batch):
                channel.put(("m", batch))
        channel.put(("d", (metrics.counters, _dump_spans(tracer))))
    except _ConsumerClosed:
        pass
    except faults_mod.DropResults:
        pass  # the injected lost-result-stream fault: finish silently
    except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
        try:
            channel.put(
                ("e", (f"{type(exc).__name__}: {exc}", traceback.format_exc()))
            )
        except _ConsumerClosed:
            pass
    finally:
        channel.producer_finished = True


def _drain_channel(channel: _Channel, buffer: deque, token) -> Tuple[str, object]:
    """Consume one partition channel to its terminal state.

    Returns ``("done", (counters, spans))``, ``("error", (message, traceback))``,
    or ``("dropped", (message, None))`` when the producer finished
    without a terminal message (the lost-result-stream fault).  Checks
    the cancel token between polls so deadlines land while waiting.
    """
    while True:
        if token is not None:
            token.check()
        try:
            kind, payload = channel.queue.get(timeout=_CHANNEL_POLL)
        except queue_module.Empty:
            if channel.producer_finished and channel.queue.empty():
                return (
                    "dropped",
                    ("worker finished without delivering results", None),
                )
            continue
        if kind == "m":
            buffer.append(payload)
        elif kind == "d":
            return ("done", payload)
        else:  # "e"
            return ("error", payload)


def _run_partition_locally(
    partition: Operator,
    batch_size: int,
    index: int,
    attempt: int,
    plans: Tuple,
    token,
    rung: str,
    trace: bool = False,
) -> Tuple[List[ColumnBatch], Dict[str, int], Optional[list]]:
    """One degraded attempt of a single partition on this process.

    ``rung == "thread"``: produce through a fresh channel on the shared
    thread pool (the consumer enforces the token).  ``rung == "inline"``:
    run the partition directly on this thread, token on its Metrics.
    Returns ``(batches, counters, spans)``; raises :class:`_AttemptFailed`
    (or the original exception) on failure.
    """
    partition.prepare_parallel()
    if rung == "thread":
        channel = _Channel()
        _shared_pool().submit(
            _produce_to_channel,
            partition,
            channel,
            batch_size,
            index,
            attempt,
            plans,
            "thread",
            trace,
        )
        buffer: deque = deque()
        try:
            outcome, payload = _drain_channel(channel, buffer, token)
        except BaseException:
            channel.close()
            raise
        if outcome == "done":
            counters, spans = payload  # type: ignore[misc]
            return list(buffer), counters, spans
        message, tb = payload  # type: ignore[misc]
        raise _AttemptFailed(message, tb)
    # inline: the last rung — deterministic, no pool, no queue.
    tracer = _local_tracer(partition) if trace else None
    metrics = Metrics(token=token, tracer=tracer)
    batches: List[ColumnBatch] = []
    batch_no = 0
    for batch in partition.execute_batches(metrics, batch_size):
        if plans:
            faults_mod.fire(plans, index, batch_no, attempt, "inline")
        batch_no += 1
        if len(batch):
            batches.append(batch)
    return batches, metrics.counters, _dump_spans(tracer)


# ----------------------------------------------------------------------
# Partition streams: the unit every backend hands back
# ----------------------------------------------------------------------
class _InlineStream:
    """A partition executed lazily on the calling thread."""

    def __init__(
        self,
        partition: Operator,
        batch_size: int,
        token=None,
        index: int = 0,
        plans: Tuple = (),
        trace: bool = False,
    ) -> None:
        self._tracer = _local_tracer(partition) if trace else None
        self.trace_spans: Optional[list] = None
        self._metrics = Metrics(token=token, tracer=self._tracer)
        self._generator = self._produce(partition, batch_size, index, plans)
        self._done = False

    def _produce(self, partition, batch_size, index, plans):
        try:
            batch_no = 0
            for batch in partition.execute_batches(self._metrics, batch_size):
                if plans:
                    faults_mod.fire(plans, index, batch_no, 0, "inline")
                batch_no += 1
                yield batch
        finally:
            if self._tracer is not None:
                self.trace_spans = _dump_spans(self._tracer)

    @property
    def counters(self) -> Dict[str, int]:
        return self._metrics.counters

    def __iter__(self) -> Iterator[ColumnBatch]:
        for batch in self._generator:
            yield batch
        self._done = True

    def close(self) -> None:
        """Drain to completion so counters always total the serial run's."""
        if not self._done:
            for _ in self._generator:
                pass
            self._done = True

    def abort(self) -> None:
        """Stop without draining (error/timeout/abandonment path)."""
        self._generator.close()
        self._done = True


class _BufferedStream:
    """The consumer's view of one partition on a recovering backend.

    **Release-on-completion**: iteration first drives the run until this
    partition's terminal "done" message arrived, then yields the buffered
    batches.  Failed attempts' partial buffers are discarded wholesale
    before a retry, so the consumer can never see duplicated or torn
    streams — the property that makes retrying mid-stream safe at all.
    """

    def __init__(self, run: "_RecoveringRun", index: int) -> None:
        self.run = run
        self.index = index

    @property
    def counters(self) -> Dict[str, int]:
        return self.run.partition_counters[self.index]

    @property
    def trace_spans(self) -> Optional[list]:
        return self.run.partition_spans[self.index]

    def __iter__(self) -> Iterator[ColumnBatch]:
        self.run.ensure_done(self.index)
        buffer = self.run.buffers[self.index]
        while buffer:
            yield buffer.popleft()

    def close(self) -> None:
        # Per-stream close defers to the run: counters require *every*
        # partition drained (and locks must release exactly once).
        self.run.close()


class _BackendRun:
    """What a backend hands the exchange: per-partition streams, a
    ``close()`` that drains everything, an ``abort()`` that stops
    producers *without* draining, and serialization/recovery stats."""

    def __init__(self, streams: Sequence, stats: Optional[dict] = None) -> None:
        self.streams = list(streams)
        self.stats = stats if stats is not None else {}

    def close(self) -> None:
        for stream in self.streams:
            stream.close()

    def abort(self) -> None:
        for stream in self.streams:
            abort = getattr(stream, "abort", None)
            if abort is not None:
                abort()
            else:
                stream.close()


class _RecoveringRun(_BackendRun):
    """Shared recovery machinery for the thread and process runs.

    Tracks, per partition: the buffered batches of the current attempt,
    the attempt id (stale-message discard + fault-seam gating), the
    failure count, and the first failure's ``(message, traceback)``.
    Subclasses provide :meth:`ensure_done` (make progress until a
    partition completes) and :meth:`_redispatch` (start another attempt
    on the backend's own pool); retry/degradation policy lives here.
    """

    #: The degradation rungs tried, in order, once retries are exhausted.
    ladder: Tuple[str, ...] = ()

    def __init__(self, partitions, batch_size, token, plans, stats, trace=False) -> None:
        self.partitions = list(partitions)
        count = len(self.partitions)
        self.batch_size = batch_size
        self.token = token
        self.plans = plans
        self.trace = trace
        self.buffers: List[deque] = [deque() for _ in range(count)]
        self.done = [False] * count
        self.partition_counters: List[Dict[str, int]] = [{} for _ in range(count)]
        self.partition_spans: List[Optional[list]] = [None] * count
        self.failures = [0] * count
        self.attempt_ids = [0] * count
        self.first_failure: List[Optional[tuple]] = [None] * count
        stats.setdefault("retries", 0)
        stats.setdefault("degraded_partitions", 0)
        stats.setdefault("degraded_to", None)
        super().__init__([_BufferedStream(self, i) for i in range(count)], stats)

    # -- subclass hooks -------------------------------------------------
    def ensure_done(self, index: int) -> None:
        raise NotImplementedError

    def _redispatch(self, index: int) -> None:
        raise NotImplementedError

    # -- policy ---------------------------------------------------------
    def _record_failure(self, index: int, error: tuple) -> None:
        if self.first_failure[index] is None:
            self.first_failure[index] = error

    def _partition_failed(self, index: int, error: tuple) -> None:
        """One attempt failed: discard its output, then retry (capped
        exponential backoff) or walk the degradation ladder."""
        self._record_failure(index, error)
        self.failures[index] += 1
        self.buffers[index].clear()
        self.partition_spans[index] = None
        self.attempt_ids[index] += 1  # supersede in-flight stale messages
        if self.failures[index] <= RETRY_LIMIT:
            self.stats["retries"] += 1
            _backoff(self.failures[index])
            self._redispatch(index)
        else:
            self._degrade(index, error)

    def _degrade(self, index: int, error: tuple) -> None:
        """Re-run just this partition down the backend ladder; raise the
        typed :class:`ExecutionFailed` only when even inline fails."""
        depth = {"thread": 1, "inline": 2}
        for rung in self.ladder:
            self.attempt_ids[index] += 1
            self.buffers[index].clear()
            self.partition_spans[index] = None
            try:
                batches, counters, spans = _run_partition_locally(
                    self.partitions[index],
                    self.batch_size,
                    index,
                    self.attempt_ids[index],
                    self.plans,
                    self.token,
                    rung,
                    self.trace,
                )
            except QueryError:
                raise  # timeouts/cancellation propagate untyped-free
            except _AttemptFailed as exc:
                error = (str(exc), exc.tb)
                self._record_failure(index, error)
                continue
            except BaseException as exc:  # noqa: BLE001 - next rung
                error = (f"{type(exc).__name__}: {exc}", traceback.format_exc())
                self._record_failure(index, error)
                continue
            self.buffers[index].extend(batches)
            self.partition_counters[index] = counters
            self.partition_spans[index] = spans
            self.done[index] = True
            self.stats["degraded_partitions"] += 1
            current = self.stats["degraded_to"]
            if current is None or depth.get(rung, 0) > depth.get(current, 0):
                self.stats["degraded_to"] = rung
            return
        first = self.first_failure[index] or error
        raise ExecutionFailed(
            f"partition {index} failed after {self.failures[index]} attempt(s) "
            f"and degradation through {self.ladder!r}: {first[0]}",
            worker_traceback=first[1],
        )


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class ExchangeBackend:
    """How partition pipelines actually execute.

    ``run`` starts every partition and returns a :class:`_BackendRun`
    whose streams yield :class:`ColumnBatch` morsels; after a stream is
    exhausted (or the run is closed) its ``counters`` hold the
    partition's private :class:`Metrics` totals.  The exchange merges
    those in partition-index order — never completion order.  ``token``
    is the execution's optional :class:`~repro.engine.errors.CancelToken`
    (enforced consumer-side).
    """

    name = "?"

    def run(
        self, partitions: Sequence[Operator], batch_size: int, token=None,
        trace: bool = False,
    ) -> _BackendRun:
        """``trace=True`` runs every partition attempt under a fresh local
        tracer; the winning attempt's span dump is exposed per stream as
        ``trace_spans`` for the exchange to adopt."""
        raise NotImplementedError


class InlineBackend(ExchangeBackend):
    """No pool: lazy, single-threaded, the deterministic floor — and the
    last rung of every degradation ladder."""

    name = "inline"

    def run(self, partitions, batch_size, token=None, trace=False):
        for partition in partitions:
            partition.prepare_parallel()
        plans = faults_mod.resolve(faults_mod.active_plans(), len(partitions))
        return _BackendRun(
            [
                _InlineStream(partition, batch_size, token, index, plans, trace)
                for index, partition in enumerate(partitions)
            ],
            {"backend": "inline"},
        )


#: One process-wide thread pool, created lazily on the first threaded
#: drain and reused by every exchange — spawning a pool per execution
#: would put OS thread creation on the warm-query path.  Channels are
#: *bounded* (backpressure), so a nested/concurrent thread run on one
#: consumer thread could starve the pool; :class:`ThreadBackend` guards
#: that by degrading nested runs to inline (same rule as the process
#: backend's run lock).
_SHARED_POOL: Optional[ThreadPoolExecutor] = None
_SHARED_POOL_LOCK = threading.Lock()

#: Per-thread count of open thread-backend runs (the nested-run guard).
_THREAD_RUN_STATE = threading.local()


def _thread_run_depth() -> int:
    return getattr(_THREAD_RUN_STATE, "depth", 0)


def _shared_pool() -> ThreadPoolExecutor:
    global _SHARED_POOL
    if _SHARED_POOL is None:
        with _SHARED_POOL_LOCK:
            if _SHARED_POOL is None:
                _SHARED_POOL = ThreadPoolExecutor(
                    max_workers=max(4, host_capability()["cpus"]),
                    thread_name_prefix="repro-exchange",
                )
    return _SHARED_POOL


class _ThreadRun(_RecoveringRun):
    """One thread-backend execution: per-partition bounded channels on
    the shared pool, with retry and inline degradation."""

    ladder = ("inline",)

    def __init__(self, partitions, batch_size, token, plans, trace=False) -> None:
        super().__init__(
            partitions, batch_size, token, plans, {"backend": "thread"}, trace
        )
        self.channels: List[Optional[_Channel]] = [None] * len(self.partitions)
        self.finished = False
        _THREAD_RUN_STATE.depth = _thread_run_depth() + 1
        for index in range(len(self.partitions)):
            self._redispatch(index)

    def _redispatch(self, index: int) -> None:
        channel = _Channel()
        self.channels[index] = channel
        _shared_pool().submit(
            _produce_to_channel,
            self.partitions[index],
            channel,
            self.batch_size,
            index,
            self.attempt_ids[index],
            self.plans,
            "thread",
            self.trace,
        )

    def ensure_done(self, index: int) -> None:
        while not self.done[index]:
            outcome, payload = _drain_channel(
                self.channels[index], self.buffers[index], self.token
            )
            if outcome == "done":
                counters, spans = payload  # type: ignore[misc]
                self.partition_counters[index] = counters
                self.partition_spans[index] = spans
                self.done[index] = True
            else:  # "error" or "dropped": one attempt failed
                self._partition_failed(index, payload)  # type: ignore[arg-type]

    def close(self) -> None:
        try:
            for index in range(len(self.partitions)):
                self.ensure_done(index)
        finally:
            self._finish()

    def abort(self) -> None:
        for channel in self.channels:
            if channel is not None:
                channel.close()
        self._finish()

    def _finish(self) -> None:
        if not self.finished:
            self.finished = True
            _THREAD_RUN_STATE.depth = max(0, _thread_run_depth() - 1)


class ThreadBackend(ExchangeBackend):
    """The shared thread pool; each partition streams batches through its
    own bounded channel, released to the consumer on completion."""

    name = "thread"

    def run(self, partitions, batch_size, token=None, trace=False):
        for partition in partitions:
            partition.prepare_parallel()  # build shared caches single-threaded
        if _thread_run_depth():
            # A nested run on this consumer thread (two exchanges pulled
            # interleaved) could starve the bounded channels on the shared
            # fixed-size pool — run it inline instead, like the process
            # backend's nested-run rule.
            return InlineBackend().run(partitions, batch_size, token, trace)
        plans = faults_mod.resolve(faults_mod.active_plans(), len(partitions))
        return _ThreadRun(partitions, batch_size, token, plans, trace)


# ----------------------------------------------------------------------
# The process backend: persistent worker pool + morsel demultiplexer
# ----------------------------------------------------------------------
def _process_worker(tasks, results) -> None:  # pragma: no cover - child process
    """Worker main loop: pull (partition) tasks until the ``None`` pill.

    Each task is a pre-pickled operator chain tagged with its attempt id
    and the active fault plans; results stream back as pre-pickled
    morsels so serialization failures raise *here*, visibly, instead of
    vanishing in a queue feeder thread.  Message protocol (all 5-tuples
    ``(kind, index, attempt, payload, extra)``): ``"s"`` started (payload
    = worker pid, for parent-side failure attribution), ``"m"`` morsel,
    then one terminal ``"d"`` (payload = counters, extra = the attempt's
    trace-span dump or ``None``) or ``"e"`` ((message, traceback)).  A
    kill fault exits before the terminal; a drop fault skips it silently.
    """
    while True:
        task = tasks.get()
        if task is None:
            return
        index, blob, batch_size, morsel_rows, attempt, plans, trace = task
        metrics = Metrics()
        try:
            results.put(("s", index, attempt, os.getpid(), None))
            op = pickle.loads(blob)
            if trace:
                metrics.tracer = _local_tracer(op)
            pending: List[tuple] = []
            pending_rows = 0
            batch_no = 0
            for batch in op.execute_batches(metrics, batch_size):
                if plans:
                    faults_mod.fire(plans, index, batch_no, attempt, "process")
                batch_no += 1
                length = len(batch)
                if not length:
                    continue
                pending.append((batch.columns, length))
                pending_rows += length
                if pending_rows >= morsel_rows:
                    payload = pickle.dumps(pending, pickle.HIGHEST_PROTOCOL)
                    results.put(("m", index, attempt, payload, pending_rows))
                    pending = []
                    pending_rows = 0
            if pending:
                payload = pickle.dumps(pending, pickle.HIGHEST_PROTOCOL)
                results.put(("m", index, attempt, payload, pending_rows))
            results.put(
                ("d", index, attempt, metrics.counters, _dump_spans(metrics.tracer))
            )
        except faults_mod.DropResults:
            continue  # the injected lost-result-stream fault: go silent
        except BaseException as exc:  # noqa: BLE001 - relayed to the parent
            try:
                results.put(
                    (
                        "e",
                        index,
                        attempt,
                        (f"{type(exc).__name__}: {exc}", traceback.format_exc()),
                        None,
                    )
                )
            except Exception:
                return


#: Registered once, on first pool creation: workers are daemons (they die
#: with the parent regardless), but an explicit interpreter-exit shutdown
#: also terminates promptly, joins, and closes the queues' feeder threads
#: — no orphan windows, no noisy atexit races.  (Lifecycle regression:
#: ``tests/engine/test_fault_tolerance.py``.)
_ATEXIT_REGISTERED = False


def _register_pool_atexit() -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        _ATEXIT_REGISTERED = True
        atexit.register(shutdown_process_pool)


class _ProcessPool:
    """A persistent pool of daemon worker processes.

    ``snapshot`` maps ship tokens to the objects the workers inherited at
    fork time (empty under spawn); ``fork_epoch`` is the catalog epoch
    then.  Any epoch movement restarts the pool — the same staleness rule
    the plan cache and ``Database.stats`` obey — so workers can never
    scan a pre-mutation memory image.
    """

    def __init__(self, size: int, method: str) -> None:
        import multiprocessing

        context = multiprocessing.get_context(method)
        self.context = context
        self.method = method
        self.size = size
        self.tasks = context.Queue()
        self.results = context.Queue(maxsize=_RESULT_QUEUE_DEPTH)
        self.fork_epoch = current_epoch()
        self.snapshot: Dict[tuple, object] = (
            dict(_SHIP_REGISTRY) if method == "fork" else {}
        )
        self.broken = False
        self.processes = [
            context.Process(
                target=_process_worker,
                args=(self.tasks, self.results),
                daemon=True,
                name=f"repro-exchange-{i}",
            )
            for i in range(size)
        ]
        for process in self.processes:
            process.start()
        _register_pool_atexit()

    def alive(self) -> bool:
        return all(process.is_alive() for process in self.processes)

    def respawn_dead(self) -> None:
        """Rebuild the pool — fresh queues, a full set of new workers.

        The shared queues cannot survive a worker death: an idle worker
        blocks inside ``tasks.get()`` *holding the queue's reader lock*,
        so a worker killed there leaves the semaphore acquired forever
        and every replacement reader deadlocks behind a corpse.  The only
        safe recovery is wholesale — terminate the survivors too (their
        in-flight work is re-dispatched by the caller), recreate both
        queues, and start a new full complement.

        A ``fork`` respawn re-forks from the *current* parent image; the
        staleness rules of :func:`_ensure_process_pool` guarantee that
        image still matches ``snapshot`` (any epoch movement would have
        restarted the whole pool before this run began), so token lookups
        in the replacement stay valid.
        """
        if all(process.is_alive() for process in self.processes):
            return
        for process in self.processes:
            process.terminate()
        for process in self.processes:
            process.join(timeout=2.0)
        for q in (self.tasks, self.results):
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass
        self.tasks = self.context.Queue()
        self.results = self.context.Queue(maxsize=_RESULT_QUEUE_DEPTH)
        self.processes = [
            self.context.Process(
                target=_process_worker,
                args=(self.tasks, self.results),
                daemon=True,
                name=f"repro-exchange-{i}",
            )
            for i in range(self.size)
        ]
        for process in self.processes:
            process.start()

    def shutdown(self) -> None:
        for process in self.processes:
            process.terminate()
        for process in self.processes:
            process.join(timeout=2.0)
        for q in (self.tasks, self.results):
            try:
                q.cancel_join_thread()
                q.close()
            except Exception:  # pragma: no cover - best-effort cleanup
                pass


_PROCESS_POOL: Optional[_ProcessPool] = None
#: Serializes process-backend runs: the pool has one result queue, so one
#: streaming run owns it at a time.  A *nested* run on the same thread
#: (two exchanges pulled interleaved, e.g. under a merge join) falls back
#: to the inline backend instead of deadlocking on the lock.
_PROCESS_RUN_LOCK = threading.Lock()
_PROCESS_RUN_OWNER: Optional[int] = None


def shutdown_process_pool() -> None:
    """Tear down the persistent process pool (tests; start-method swaps;
    the interpreter-exit hook)."""
    global _PROCESS_POOL
    with _SHARED_POOL_LOCK:
        if _PROCESS_POOL is not None:
            _PROCESS_POOL.shutdown()
            _PROCESS_POOL = None


def _ensure_process_pool(needed: Sequence[Tuple[tuple, object]]) -> _ProcessPool:
    """The live pool, restarted when its memory image went stale.

    Restart conditions: no pool yet, the pool was marked broken, the
    configured start method changed, or — fork pools only — the catalog
    epoch moved or a needed object was never part of the fork image.
    (A merely *dead worker* is no longer a restart condition: the run
    respawns dead workers in place and retries their partitions.)
    Registration happens *before* the (re)fork so the children inherit
    every needed object with its caches built.
    """
    global _PROCESS_POOL
    method = _resolve_start_method()
    for token, obj in needed:
        if _SHIP_REGISTRY.get(token) is not obj:
            _register_shippable(token, obj)
    pool = _PROCESS_POOL
    stale = (
        pool is None
        or pool.broken
        or pool.method != method
        or not any(process.is_alive() for process in pool.processes)
        or (
            pool.method == "fork"
            and (
                pool.fork_epoch != current_epoch()
                or any(pool.snapshot.get(token) is not obj for token, obj in needed)
            )
        )
    )
    if stale:
        if pool is not None:
            pool.shutdown()
        pool = _ProcessPool(max(4, host_capability()["cpus"]), method)
        _PROCESS_POOL = pool
    elif not pool.alive():
        pool.respawn_dead()
    return pool


class _ProcessRun(_RecoveringRun):
    """Demultiplexer for one process-backend execution, with recovery.

    Workers tag every message with partition index *and attempt id*; the
    parent buffers morsels per partition (released on completion), tracks
    which worker pid runs which partition, and on worker death respawns
    the worker and re-enqueues the attributable partitions.  Retries
    exhausted → the partition degrades thread → inline.  A corrupt result
    queue (a worker killed mid-write) is unrecoverable for the whole
    pool: every outstanding partition degrades and the pool restarts on
    the next query.
    """

    ladder = ("thread", "inline")

    def __init__(
        self, pool, partitions, blobs, batch_size, token, plans, trace=False
    ) -> None:
        self.pool = pool
        self.blobs = list(blobs)
        self.running_pid: List[Optional[int]] = [None] * len(self.blobs)
        self.finished = False
        stats = {
            "backend": "process",
            "start_method": pool.method,
            "chain_bytes": sum(len(blob) for blob in blobs),
            "morsel_bytes": 0,
            "morsels": 0,
            "rows_shipped": 0,
            "token_shipped_chains": 0,
        }
        super().__init__(partitions, batch_size, token, plans, stats, trace)
        # Work stealing: partitions go into one shared task queue; each of
        # the pool's workers pulls the next one the moment it frees up.
        for index in range(len(self.blobs)):
            self._redispatch(index)

    # ------------------------------------------------------------------
    def _redispatch(self, index: int) -> None:
        self.running_pid[index] = None
        self.pool.tasks.put(
            (
                index,
                self.blobs[index],
                self.batch_size,
                MORSEL_ROWS,
                self.attempt_ids[index],
                self.plans,
                self.trace,
            )
        )

    def ensure_done(self, index: int) -> None:
        while not self.done[index]:
            self.pump()

    def pump(self) -> None:
        """Receive one message (or time out into a liveness check)."""
        if self.token is not None:
            self.token.check()
        try:
            message = self.pool.results.get(timeout=_PULL_TIMEOUT)
        except queue_module.Empty:
            self._check_liveness()
            return
        except Exception as exc:  # corrupt stream: pool unrecoverable
            self._pool_failed(f"result queue failed: {type(exc).__name__}: {exc}")
            return
        kind, index, attempt, payload, extra = message
        if self.done[index] or attempt != self.attempt_ids[index]:
            return  # stale: a retry superseded this attempt
        if kind == "s":
            self.running_pid[index] = payload
        elif kind == "m":
            self.stats["morsel_bytes"] += len(payload)
            self.stats["morsels"] += 1
            self.stats["rows_shipped"] += extra
            schema = self.partitions[index].schema
            for columns, length in pickle.loads(payload):
                self.buffers[index].append(ColumnBatch(schema, columns, length))
        elif kind == "d":
            self.partition_counters[index] = payload
            self.partition_spans[index] = extra
            self.done[index] = True
        else:  # "e"
            self._partition_failed(index, payload)

    def _check_liveness(self) -> None:
        """After a pull timeout: a dead worker means the pool is rebuilt
        (fresh queues — the corpse may hold a queue lock), so *every*
        unfinished partition restarts: the dead worker's, any queued but
        never started, and any mid-stream on a terminated survivor."""
        if self.pool.alive():
            return
        try:
            self.pool.respawn_dead()
        except Exception as exc:  # pragma: no cover - spawn failure
            self._pool_failed(f"could not respawn dead workers: {exc!r}")
            return
        for index in range(len(self.partitions)):
            if not self.done[index]:
                self._partition_failed(
                    index,
                    ("worker process died; pool rebuilt, partition re-run", None),
                )

    def _pool_failed(self, reason: str) -> None:
        """The pool itself is unrecoverable: mark it broken and degrade
        every outstanding partition locally."""
        self.pool.broken = True
        for index in range(len(self.partitions)):
            if not self.done[index]:
                self._record_failure(index, (reason, None))
                self.attempt_ids[index] += 1
                self.buffers[index].clear()
                self._degrade(index, (reason, None))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain every partition to completion and release the run lock."""
        try:
            while not all(self.done):
                self.pump()
        except BaseException:
            self.pool.broken = True
            raise
        finally:
            if self.pool.broken:
                try:
                    self.pool.shutdown()
                except Exception:  # pragma: no cover - best effort
                    pass
            self._release()

    def abort(self) -> None:
        """Stop without draining (error/timeout/abandonment): outstanding
        workers may be mid-stream, so restart the pool rather than let
        them block forever on the bounded result queue.  The next query
        sees a healthy, fresh pool."""
        if not all(self.done):
            self.pool.broken = True
            try:
                self.pool.shutdown()
            except Exception:  # pragma: no cover - best effort
                pass
        self._release()

    def _release(self) -> None:
        global _PROCESS_RUN_OWNER
        if not self.finished:
            self.finished = True
            _PROCESS_RUN_OWNER = None
            _PROCESS_RUN_LOCK.release()


class _PoolUnavailable(Exception):
    """Internal: the process pool could not be built at all."""


class ProcessBackend(ExchangeBackend):
    """True multicore: pickled chains out, morsel streams back — with
    worker recovery, and whole-run degradation to the thread backend when
    no pool can be built at all."""

    name = "process"

    def run(self, partitions, batch_size, token=None, trace=False):
        global _PROCESS_RUN_OWNER
        me = threading.get_ident()
        if _PROCESS_RUN_OWNER == me:
            # Nested run on this thread (two exchanges pulled interleaved,
            # e.g. both inputs of a merge join): the result queue is owned
            # by the outer run, so run this one inline — deterministic,
            # bit-identical, just not process-parallel.
            return InlineBackend().run(partitions, batch_size, token, trace)
        _PROCESS_RUN_LOCK.acquire()
        _PROCESS_RUN_OWNER = me
        try:
            needed = _collect_shippable(partitions[0])
            try:
                pool = _ensure_process_pool(needed)
            except Exception as exc:
                raise _PoolUnavailable(f"{type(exc).__name__}: {exc}") from exc
            tokens = frozenset(
                token_ for token_, obj in needed if pool.snapshot.get(token_) is obj
            )
            with _ShipContext(tokens):
                blobs = [
                    pickle.dumps(partition, pickle.HIGHEST_PROTOCOL)
                    for partition in partitions
                ]
            plans = faults_mod.resolve(faults_mod.active_plans(), len(partitions))
            run = _ProcessRun(pool, partitions, blobs, batch_size, token, plans, trace)
            run.stats["token_shipped_chains"] = len(tokens)
            return run
        except _PoolUnavailable as exc:
            # No pool at all (e.g. a platform without working
            # multiprocessing): degrade the whole run to threads.
            _PROCESS_RUN_OWNER = None
            _PROCESS_RUN_LOCK.release()
            run = ThreadBackend().run(partitions, batch_size, token, trace)
            run.stats["degraded_to"] = "thread"
            run.stats["degraded_partitions"] = len(partitions)
            run.stats.setdefault("retries", 0)
            run.stats["degraded_reason"] = str(exc)
            return run
        except BaseException:
            _PROCESS_RUN_OWNER = None
            _PROCESS_RUN_LOCK.release()
            raise


_BACKEND_INSTANCES: Dict[str, ExchangeBackend] = {
    "inline": InlineBackend(),
    "thread": ThreadBackend(),
    "process": ProcessBackend(),
}


def get_backend(name: str) -> ExchangeBackend:
    try:
        return _BACKEND_INSTANCES[name]
    except KeyError:
        raise ValueError(
            f"unknown exchange backend {name!r} (expected one of {BACKENDS})"
        ) from None


# ----------------------------------------------------------------------
# Exchange operators
# ----------------------------------------------------------------------
class Exchange(Operator):
    """Base exchange: run per-partition pipelines, reassemble one stream.

    ``partitions`` are the per-partition operator trees (each with the
    same schema, and each individually honoring the declared ordering).
    ``subtree`` — when built by the planner — is the serial chain the
    partitions were cloned from: it is what ``children()`` exposes for
    EXPLAIN, and what row-mode ``execute`` runs (the deterministic serial
    fallback, with exactly the serial plan's counters).  ``backend``
    names the :class:`ExchangeBackend` batch execution drains through
    (``workers <= 1`` or a single partition always degrades to inline).
    """

    #: "merge" or "union" — also the EXPLAIN vocabulary.
    kind = "exchange"

    def __init__(
        self,
        partitions: Sequence[Operator],
        workers: Optional[int] = None,
        subtree: Optional[Operator] = None,
        backend: Optional[str] = None,
        contiguous: bool = False,
    ) -> None:
        partitions = list(partitions)
        if not partitions:
            raise ValueError("an exchange needs at least one partition")
        if workers is None:
            workers = len(partitions)
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.partitions: List[Operator] = partitions
        self.workers = workers
        self.subtree = subtree
        self.backend = backend if backend is not None else DEFAULT_BACKEND
        get_backend(self.backend)  # validate eagerly
        #: Planner-built exchanges are contiguous: the partition_clone
        #: contract guarantees the streams concatenate (in index order)
        #: to the serial stream.
        self.contiguous = contiguous
        #: Serialization + recovery accounting for the most recent batch
        #: execution (kept out of query Metrics — the serial plan ships
        #: and retries nothing, and counter parity is the differential
        #: harness's contract).
        self.exchange_stats: dict = {}
        template = subtree if subtree is not None else partitions[0]
        self.schema = template.schema
        self.ordering = tuple(template.ordering)

    # ------------------------------------------------------------------
    def children(self) -> Sequence[Operator]:
        if self.subtree is not None:
            return (self.subtree,)
        return tuple(self.partitions)

    def label(self) -> str:
        return f"{type(self).__name__}({len(self.partitions)} partitions)"

    def trace_args(self) -> dict:
        return {
            "kind": self.kind,
            "partitions": len(self.partitions),
            "backend": self.backend,
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, metrics: Metrics) -> Iterator[tuple]:
        """Row mode: the deterministic serial fallback.

        A planner-built exchange simply runs the serial subtree it
        replaced — bit- and counter-identical to the unparallelized plan
        by construction.  A bare exchange (test seam) drains its
        partitions through the batch path instead.
        """
        if self.subtree is not None:
            yield from self.subtree.execute(metrics)
            return
        for batch in self.execute_batches(metrics):
            yield from batch.rows()

    def execute_batches(
        self, metrics: Metrics, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        if self.workers <= 1 or len(self.partitions) <= 1:
            backend = get_backend("inline")
        else:
            backend = get_backend(self.backend)
        tracer = metrics.tracer
        run = backend.run(
            self.partitions,
            batch_size,
            token=metrics.token,
            trace=tracer is not None,
        )
        try:
            yield from self._emit_streams(run.streams, batch_size)
        except BaseException:
            # Error, timeout, or an abandoning consumer (GeneratorExit):
            # stop producers without draining — abort leaves the pools
            # healthy (or marked for restart) for the next query.
            run.abort()
            self.exchange_stats = run.stats
            raise
        run.close()
        # Deterministic counter merge: partition-index order, after
        # every stream drained — completion order never matters.
        for stream in run.streams:
            for key, value in stream.counters.items():
                metrics.add(key, value)
        if tracer is not None:
            # Graft each partition's winning-attempt spans (local tracers;
            # failed attempts' spans died with the attempt) under this
            # exchange's open span, in partition order.
            attempts = getattr(run, "attempt_ids", None)
            for index, stream in enumerate(run.streams):
                spans = getattr(stream, "trace_spans", None)
                if spans:
                    attempt = attempts[index] if attempts is not None else 0
                    tracer.adopt(spans, self, index, attempt)
        self.exchange_stats = run.stats

    def _emit_streams(
        self, streams: Sequence, batch_size: int
    ) -> Iterator[ColumnBatch]:
        raise NotImplementedError


class UnionExchange(Exchange):
    """Order-insensitive exchange: emit partition streams in partition
    order.  Over the contiguous partitions the planner builds, the
    concatenation *is* the serial stream, so the choice of union over
    merge is purely a cost call — no ordering obligation exists."""

    kind = "union"

    def __init__(
        self, partitions, workers=None, subtree=None, backend=None, contiguous=False
    ) -> None:
        super().__init__(partitions, workers, subtree, backend, contiguous)
        # Concatenation makes no ordering promise: even if the partitions
        # are individually sorted, their ranges may interleave.  Never
        # advertise an OrderSpec this operator does not enforce — that is
        # the soundness contract every provides() consumer trusts.  (The
        # planner only picks union for empty specs anyway.)
        self.ordering = ()

    def _emit_streams(self, streams, batch_size):
        for stream in streams:
            for batch in stream:
                if len(batch):
                    yield batch


class MergeExchange(Exchange):
    """Order-preserving exchange: reassemble on the declared ordering.

    Each partition stream must individually honor ``keys`` (the chain's
    declared :class:`~repro.optimizer.properties.OrderSpec`).

    * ``contiguous`` (planner-built): the ``partition_clone`` contract
      guarantees concatenation in partition order *is* the serial stream
      — which honors the declared order — so emission is a streaming
      concat: no heap, no materialization, no sort.
    * otherwise (the randomly-partitioned property-test instances): a
      streaming stable k-way ``heapq.merge`` interleaves the morsel
      streams without sorting anything; ties across partitions resolve
      to the lower partition index (``heapq.merge`` is stable by input
      position).
    """

    kind = "merge"

    def __init__(
        self,
        partitions: Sequence[Operator],
        workers: Optional[int] = None,
        subtree: Optional[Operator] = None,
        backend: Optional[str] = None,
        contiguous: bool = False,
        keys: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(partitions, workers, subtree, backend, contiguous)
        if keys is None:
            keys = self.ordering
        self.keys: Tuple[str, ...] = tuple(keys)
        if not self.keys:
            raise ValueError("MergeExchange needs a non-empty ordering")
        self._positions = tuple(self.schema.position(key) for key in self.keys)

    def label(self) -> str:
        return (
            f"MergeExchange({len(self.partitions)} partitions "
            f"on [{', '.join(self.keys)}])"
        )

    def _key(self, row: tuple) -> tuple:
        positions = self._positions
        return tuple(row[p] for p in positions)

    def _emit_streams(self, streams, batch_size):
        if self.contiguous:
            for stream in streams:
                for batch in stream:
                    if len(batch):
                        yield batch
            return
        merged = heapq.merge(
            *(_rows_of_stream(stream) for stream in streams), key=self._key
        )
        schema = self.schema
        while True:
            chunk = list(islice(merged, batch_size))
            if not chunk:
                return
            yield ColumnBatch.from_rows(schema, chunk)


def _rows_of_stream(stream) -> Iterator[tuple]:
    for batch in stream:
        yield from batch.rows()


# ----------------------------------------------------------------------
# Exchange placement (called by the planner when ``workers`` is set)
# ----------------------------------------------------------------------
def insert_exchanges(
    root: Operator,
    workers: int,
    info=None,
    backend: Optional[str] = None,
    min_rows: int = 0,
    row_estimator=None,
) -> Operator:
    """Wrap every maximal partitionable chain of a physical plan in an
    exchange of ``workers`` contiguous partitions.

    The exchange kind is decided by the chain's *declared* order property
    (:func:`repro.optimizer.properties.exchange_kind`): a non-empty
    :class:`~repro.optimizer.properties.OrderSpec` demands a
    :class:`MergeExchange` keyed on it, the empty spec takes the cheaper
    :class:`UnionExchange`.  ``LIMIT`` subtrees are left serial (their
    ``partition_kind`` is ``"barrier"`` — exact early-termination parity).

    ``min_rows > 0`` cost-gates placement: a chain whose source scans
    fewer estimated rows stays serial (``row_estimator(table)`` supplies
    the estimate — the planner passes epoch-keyed ``TableStats`` row
    counts — with ``len(table.rows)`` as the fallback; chains with no
    table, e.g. test seams, are never gated).  Direct callers default to
    ``min_rows=0``: placement exactly where asked.

    ``info`` — a :class:`~repro.optimizer.planner.PlanInfo` — receives one
    ``exchanges`` record per placement (and a note per gated skip) for
    EXPLAIN reporting.
    """
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    backend = backend if backend is not None else DEFAULT_BACKEND
    get_backend(backend)  # validate
    return _place(root, workers, info, backend, min_rows, row_estimator)


def _chain_source_rows(op: Operator, row_estimator) -> Optional[int]:
    """Estimated rows the chain's source scan reads (None: no estimate)."""
    node = op
    while node.partition_kind == "transparent":
        node = node.child  # type: ignore[attr-defined]
    table = getattr(node, "table", None)
    if table is None:
        return None
    if row_estimator is not None:
        try:
            estimate = row_estimator(table)
        except (KeyError, ValueError, AttributeError):
            estimate = None
        if estimate is not None:
            return int(estimate)
    return len(table.rows)


def _place(op: Operator, workers: int, info, backend, min_rows, row_estimator) -> Operator:
    if op.partition_kind == "barrier":
        return op
    if partitionable(op):
        if min_rows > 0:
            rows = _chain_source_rows(op, row_estimator)
            if rows is not None and rows < min_rows:
                if info is not None:
                    info.notes.append(
                        f"exchange skipped over {op.label()}: ≈{rows} rows "
                        f"< min-rows gate {min_rows}"
                    )
                return op
        return _make_exchange(op, workers, info, backend)
    for child in tuple(op.children()):
        replacement = _place(child, workers, info, backend, min_rows, row_estimator)
        if replacement is not child:
            op.replace_child(child, replacement)
    return op


def _make_exchange(subtree: Operator, workers: int, info, backend) -> Exchange:
    # Lazy import: the engine layer must not depend on the optimizer
    # package at import time (the optimizer imports the engine's
    # operators) — same rule as ``operators.base.order_spec``.
    from ..optimizer.properties import exchange_kind

    spec = subtree.provides()
    partitions = [
        partition_pipeline(subtree, index, workers) for index in range(workers)
    ]
    if exchange_kind(spec) == "merge":
        exchange: Exchange = MergeExchange(
            partitions,
            workers=workers,
            subtree=subtree,
            backend=backend,
            contiguous=True,
            keys=tuple(spec),
        )
    else:
        exchange = UnionExchange(
            partitions,
            workers=workers,
            subtree=subtree,
            backend=backend,
            contiguous=True,
        )
    if info is not None:
        info.exchanges.append(
            (exchange.kind, len(partitions), tuple(spec), subtree.label())
        )
    return exchange

"""Schemas: named, typed column lists with fast position lookup."""
from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

from .types import DataType

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    dtype: DataType

    def __str__(self) -> str:
        return f"{self.name} {self.dtype.value.upper()}"


class Schema:
    """An ordered list of columns with name → position resolution.

    Column names may be qualified (``alias.column``); :meth:`resolve` accepts
    either the exact name or an unambiguous suffix, which is how the binder
    lets queries write ``price`` for ``s.price`` when no other ``price``
    exists.
    """

    def __init__(self, columns: Iterable[Column]) -> None:
        self.columns: Tuple[Column, ...] = tuple(columns)
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in schema: {names}")
        self._positions = {name: i for i, name in enumerate(names)}

    @classmethod
    def of(cls, *specs: "tuple[str, DataType]") -> "Schema":
        """Build from ``("name", DataType)`` pairs."""
        return cls(Column(name, dtype) for name, dtype in specs)

    # ------------------------------------------------------------------
    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def position(self, name: str) -> int:
        """Exact-name position lookup."""
        try:
            return self._positions[name]
        except KeyError:
            raise KeyError(f"no column {name!r} in {self.names}") from None

    def resolve(self, reference: str) -> str:
        """Resolve a possibly-unqualified reference to an exact column name.

        Raises ``KeyError`` if nothing matches and ``ValueError`` if the
        reference is ambiguous.
        """
        if reference in self._positions:
            return reference
        matches = [
            name
            for name in self._positions
            if name.endswith("." + reference)
        ]
        if not matches:
            raise KeyError(f"no column matching {reference!r} in {self.names}")
        if len(matches) > 1:
            raise ValueError(
                f"ambiguous column {reference!r}: matches {sorted(matches)}"
            )
        return matches[0]

    def dtype_of(self, reference: str) -> DataType:
        return self.columns[self.position(self.resolve(reference))].dtype

    def rename(self, names: Sequence[str]) -> "Schema":
        """Same types, new names (projection output)."""
        if len(names) != len(self.columns):
            raise ValueError("rename width mismatch")
        return Schema(
            Column(new, column.dtype) for new, column in zip(names, self.columns)
        )

    def concat(self, other: "Schema") -> "Schema":
        """Join output: concatenation of both column lists."""
        return Schema(self.columns + other.columns)

    def select(self, names: Sequence[str]) -> "Schema":
        """A sub-schema in the given column order."""
        resolved = [self.resolve(name) for name in names]
        return Schema(self.columns[self.position(name)] for name in resolved)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schema({', '.join(str(column) for column in self.columns)})"

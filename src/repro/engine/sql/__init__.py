"""SQL front-end: lexer, parser, and parse-tree types."""
from .ast import (
    AggCall,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from .lexer import SqlSyntaxError, Token, tokenize
from .parser import parse

__all__ = [
    "parse",
    "tokenize",
    "Token",
    "SqlSyntaxError",
    "SelectStatement",
    "SelectItem",
    "TableRef",
    "JoinClause",
    "OrderItem",
    "AggCall",
]

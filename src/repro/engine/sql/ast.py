"""Parse-tree dataclasses for the SQL subset."""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..expr import Expr

__all__ = [
    "SelectItem",
    "TableRef",
    "JoinClause",
    "OrderItem",
    "SelectStatement",
    "AggCall",
]


@dataclass(frozen=True)
class AggCall(Expr):
    """An aggregate call appearing in a select list (not a scalar Expr —
    it is recognized and stripped out by the binder before compilation)."""

    func: str
    arg: Optional[Expr]  # None == COUNT(*)

    def columns(self):
        return self.arg.columns() if self.arg is not None else frozenset()

    def compile_against(self, schema):  # pragma: no cover - binder strips these
        raise TypeError("aggregate calls cannot be evaluated per-row")

    def render(self) -> str:
        inner = "*" if self.arg is None else self.arg.render()
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """``expr [AS alias]`` or ``*`` (expr None)."""

    expr: Optional[Expr]
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """``table [AS alias]``."""

    table: str
    alias: str


@dataclass(frozen=True)
class JoinClause:
    """``JOIN table ON left = right [AND ...]`` (equi-join conjuncts)."""

    table: TableRef
    left_columns: Tuple[str, ...]
    right_columns: Tuple[str, ...]


@dataclass(frozen=True)
class OrderItem:
    """One ``ORDER BY`` column (ascending; the paper's scope)."""

    column: str


@dataclass(frozen=True)
class SelectStatement:
    """A full parsed SELECT."""

    items: Tuple[SelectItem, ...]
    table: TableRef
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[str, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    distinct: bool = False
    limit: Optional[int] = None

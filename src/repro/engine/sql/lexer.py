"""Tokenizer for the SQL subset.

Produces a flat token list for the recursive-descent parser.  Keywords are
case-insensitive; identifiers preserve case.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["Token", "tokenize", "SqlSyntaxError"]

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "AS",
    "AND", "OR", "NOT", "BETWEEN", "IN", "JOIN", "INNER", "ON", "LIMIT",
    "ASC", "DESC", "DATE", "HAVING", "TRUE", "FALSE",
}

SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*",
           "+", "-", "/", "%")


class SqlSyntaxError(ValueError):
    """Lexical or syntactic error in a query."""


@dataclass(frozen=True)
class Token:
    """One token: kind ∈ {KEYWORD, IDENT, NUMBER, STRING, SYMBOL, EOF}."""

    kind: str
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.kind == "KEYWORD" and self.value in words

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == "SYMBOL" and self.value in symbols


def tokenize(text: str) -> List[Token]:
    """Tokenize a statement; raises :class:`SqlSyntaxError` on bad input."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 1
            if j >= n:
                raise SqlSyntaxError(f"unterminated string literal at {i}")
            tokens.append(Token("STRING", text[i + 1:j], i))
            i = j + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # a dot not followed by a digit terminates the number
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), i))
            else:
                tokens.append(Token("IDENT", word, i))
            i = j
            continue
        matched = False
        for symbol in SYMBOLS:
            if text.startswith(symbol, i):
                tokens.append(Token("SYMBOL", symbol, i))
                i += len(symbol)
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("EOF", "", n))
    return tokens

"""Recursive-descent parser for the SQL subset.

Grammar (informally)::

    select    := SELECT [DISTINCT] items FROM tableref joins* [WHERE expr]
                 [GROUP BY columns] [ORDER BY orderitems] [LIMIT n]
    items     := '*' | item (',' item)*
    item      := expr [AS ident]
    tableref  := ident [[AS] ident]
    joins     := [INNER] JOIN tableref ON colref '=' colref (AND ...)*
    orderitem := colref [ASC]          -- DESC rejected: the paper scopes
                                          ODs to ascending order

Expression precedence: OR < AND < NOT < comparison/BETWEEN/IN < +- < */% <
primary.  ``DATE 'yyyy-mm-dd'`` literals are supported; aggregate calls
(COUNT/SUM/AVG/MIN/MAX) are parsed into :class:`~repro.engine.sql.ast.AggCall`
nodes for the binder to lift.
"""
from __future__ import annotations

import datetime
from typing import List, Optional, Tuple

from ..expr import Arith, Between, BoolOp, Cmp, Col, Expr, Func, InList, Lit, Not
from .ast import (
    AggCall,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
)
from .lexer import SqlSyntaxError, Token, tokenize

__all__ = ["parse", "SqlSyntaxError"]

AGG_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise SqlSyntaxError(f"expected {word}, got {token.value!r}")
        return self.advance()

    def expect_symbol(self, symbol: str) -> Token:
        token = self.peek()
        if not token.is_symbol(symbol):
            raise SqlSyntaxError(f"expected {symbol!r}, got {token.value!r}")
        return self.advance()

    def accept_keyword(self, *words: str) -> Optional[Token]:
        if self.peek().is_keyword(*words):
            return self.advance()
        return None

    def accept_symbol(self, *symbols: str) -> Optional[Token]:
        if self.peek().is_symbol(*symbols):
            return self.advance()
        return None

    # ------------------------------------------------------------------
    # Statement
    # ------------------------------------------------------------------
    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = self.parse_select_items()
        self.expect_keyword("FROM")
        table = self.parse_table_ref()
        joins: List[JoinClause] = []
        while self.peek().is_keyword("JOIN", "INNER"):
            joins.append(self.parse_join())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by: Tuple[str, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = tuple(self.parse_column_list())
        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()
        order_by: List[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = self.parse_order_items()
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.kind != "NUMBER":
                raise SqlSyntaxError(f"LIMIT expects a number, got {token.value!r}")
            limit = int(token.value)
        if self.peek().kind != "EOF":
            raise SqlSyntaxError(f"unexpected trailing input: {self.peek().value!r}")
        return SelectStatement(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            distinct=distinct,
            limit=limit,
        )

    def parse_select_items(self) -> List[SelectItem]:
        if self.accept_symbol("*"):
            return [SelectItem(None)]
        items = [self.parse_select_item()]
        while self.accept_symbol(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self) -> SelectItem:
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            token = self.advance()
            if token.kind != "IDENT":
                raise SqlSyntaxError(f"expected alias, got {token.value!r}")
            alias = token.value
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return SelectItem(expr, alias)

    def parse_table_ref(self) -> TableRef:
        token = self.advance()
        if token.kind != "IDENT":
            raise SqlSyntaxError(f"expected table name, got {token.value!r}")
        alias = token.value
        if self.accept_keyword("AS"):
            alias = self.advance().value
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return TableRef(token.value, alias)

    def parse_join(self) -> JoinClause:
        self.accept_keyword("INNER")
        self.expect_keyword("JOIN")
        table = self.parse_table_ref()
        self.expect_keyword("ON")
        lefts: List[str] = []
        rights: List[str] = []
        while True:
            left = self.parse_column_name()
            self.expect_symbol("=")
            right = self.parse_column_name()
            lefts.append(left)
            rights.append(right)
            if not self.accept_keyword("AND"):
                break
        return JoinClause(table, tuple(lefts), tuple(rights))

    def parse_column_list(self) -> List[str]:
        columns = [self.parse_column_name()]
        while self.accept_symbol(","):
            columns.append(self.parse_column_name())
        return columns

    def parse_column_name(self) -> str:
        token = self.advance()
        if token.kind != "IDENT":
            raise SqlSyntaxError(f"expected column name, got {token.value!r}")
        name = token.value
        if self.accept_symbol("."):
            part = self.advance()
            if part.kind != "IDENT":
                raise SqlSyntaxError("expected column after '.'")
            name = f"{name}.{part.value}"
        return name

    def parse_order_items(self) -> List[OrderItem]:
        items = [self.parse_order_item()]
        while self.accept_symbol(","):
            items.append(self.parse_order_item())
        return items

    def parse_order_item(self) -> OrderItem:
        column = self.parse_column_name()
        if self.accept_keyword("DESC"):
            raise SqlSyntaxError(
                "DESC is not supported: the paper's OD framework (and this "
                "reproduction) covers ascending lexicographic orders only"
            )
        self.accept_keyword("ASC")
        return OrderItem(column)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        operands = [self.parse_and()]
        while self.accept_keyword("OR"):
            operands.append(self.parse_and())
        return operands[0] if len(operands) == 1 else BoolOp("OR", operands)

    def parse_and(self) -> Expr:
        operands = [self.parse_not()]
        while self.accept_keyword("AND"):
            operands.append(self.parse_not())
        return operands[0] if len(operands) == 1 else BoolOp("AND", operands)

    def parse_not(self) -> Expr:
        if self.accept_keyword("NOT"):
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.is_symbol("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            right = self.parse_additive()
            return Cmp(op, left, right)
        if token.is_keyword("BETWEEN"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return Between(left, low, high)
        if token.is_keyword("IN"):
            self.advance()
            self.expect_symbol("(")
            values = [self.parse_literal_value()]
            while self.accept_symbol(","):
                values.append(self.parse_literal_value())
            self.expect_symbol(")")
            return InList(left, values)
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_multiplicative()
        while self.peek().is_symbol("+", "-"):
            op = self.advance().value
            left = Arith(op, left, self.parse_multiplicative())
        return left

    def parse_multiplicative(self) -> Expr:
        left = self.parse_primary()
        while self.peek().is_symbol("*", "/", "%"):
            op = self.advance().value
            left = Arith(op, left, self.parse_primary())
        return left

    def parse_literal_value(self):
        token = self.advance()
        if token.kind == "NUMBER":
            return int(token.value) if "." not in token.value else float(token.value)
        if token.kind == "STRING":
            return token.value
        if token.is_keyword("DATE"):
            value = self.advance()
            if value.kind != "STRING":
                raise SqlSyntaxError("DATE literal expects a quoted string")
            return datetime.date.fromisoformat(value.value)
        raise SqlSyntaxError(f"expected literal, got {token.value!r}")

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.is_symbol("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_symbol(")")
            return inner
        if token.is_symbol("-"):
            self.advance()
            inner = self.parse_primary()
            return Arith("-", Lit(0), inner)
        if token.kind == "NUMBER":
            self.advance()
            value = int(token.value) if "." not in token.value else float(token.value)
            return Lit(value)
        if token.kind == "STRING":
            self.advance()
            return Lit(token.value)
        if token.is_keyword("DATE"):
            self.advance()
            value = self.advance()
            if value.kind != "STRING":
                raise SqlSyntaxError("DATE literal expects a quoted string")
            return Lit(datetime.date.fromisoformat(value.value))
        if token.is_keyword("TRUE"):
            self.advance()
            return Lit(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Lit(False)
        if token.kind == "IDENT":
            name = self.advance().value
            if self.peek().is_symbol("("):
                return self.parse_call(name)
            if self.accept_symbol("."):
                part = self.advance()
                if part.kind != "IDENT":
                    raise SqlSyntaxError("expected column after '.'")
                return Col(f"{name}.{part.value}")
            return Col(name)
        raise SqlSyntaxError(f"unexpected token {token.value!r} in expression")

    def parse_call(self, name: str) -> Expr:
        self.expect_symbol("(")
        upper = name.upper()
        if upper in AGG_FUNCS:
            if self.accept_symbol("*"):
                self.expect_symbol(")")
                if upper != "COUNT":
                    raise SqlSyntaxError(f"{upper}(*) is not valid")
                return AggCall("COUNT", None)
            arg = self.parse_expr()
            self.expect_symbol(")")
            return AggCall(upper, arg)
        args: List[Expr] = []
        if not self.peek().is_symbol(")"):
            args.append(self.parse_expr())
            while self.accept_symbol(","):
                args.append(self.parse_expr())
        self.expect_symbol(")")
        return Func(upper, args)


def parse(sql: str) -> SelectStatement:
    """Parse one SELECT statement."""
    return _Parser(tokenize(sql)).parse_select()

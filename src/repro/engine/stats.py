"""Table statistics for cardinality estimation.

Per-column min/max/distinct counts plus row counts — what a cost-based
optimizer needs to rank plan alternatives — extended with the histogram
subsystem (:mod:`repro.engine.histogram`): equi-depth histograms for
equality/range selectivity on skewed data, k-minimum-values distinct
sketches for measured join-key overlap, and per-column dependency facts
(is the column a key? is it OD-declared ordered?) read off the table's
declared constraints through the FD facet of the OD theory (Lemma 1:
every OD ``X ↦ Y`` implies the FD ``X → Y``).

Everything is collected in the single :func:`collect_stats` pass and
cached per (table, epoch) by :meth:`repro.engine.database.Database.stats`,
so histograms and sketches inherit exactly the staleness contract of
``TableStats``: any catalog or data mutation bumps the epoch and the next
estimate recollects.

Two estimation modes exist, selected by :func:`set_estimation_mode` (or
the ``REPRO_STATS_MODE`` environment variable):

* ``"histogram"`` (default) — histogram selectivities, sketch-measured
  join overlap, FD key caps and OD interleaved-merge join bounds;
* ``"uniform"`` — the pre-histogram model (uniform min/max interpolation,
  NDV-under-containment joins), kept as the ablation baseline the
  Q-error benchmark (``benchmarks/bench_stats.py``) compares against.

Switching modes bumps the catalog epoch: estimates feed cached plans, so
a mode flip must invalidate them like any other catalog change.
"""
from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .histogram import (
    EquiDepthHistogram,
    KMVSketch,
    build_histogram,
    build_sketch,
    merge_join_rows,
)
from .table import Table

__all__ = [
    "DEFAULT_SELECTIVITY",
    "ColumnStats",
    "TableStats",
    "collect_stats",
    "equijoin_rows",
    "estimate_equijoin",
    "JoinKeyStats",
    "estimation_mode",
    "set_estimation_mode",
]

#: Selectivity assumed for predicates the estimator cannot analyze — an
#: unknown comparison, a non-numeric range, a column with no statistics.
#: One shared constant (historically ``optimizer/costing.py`` used 0.33
#: while the non-numeric range fallback here used 0.3; the estimates they
#: feed are compared against each other, so they must agree).
DEFAULT_SELECTIVITY = 0.33

#: Estimation mode: ``"histogram"`` (full subsystem) or ``"uniform"``
#: (the pre-histogram baseline).  Module state rather than a parameter so
#: every estimate in one planning reads the same model.
_MODE = os.environ.get("REPRO_STATS_MODE", "histogram")


def estimation_mode() -> str:
    return _MODE


def set_estimation_mode(mode: str) -> str:
    """Select the estimation model; returns the previous mode.

    Bumps the catalog epoch on change — cached plans embed join orders
    chosen from the previous model's estimates, and the epoch clock is
    the one staleness signal every cache (plan, theory, stats) honors.
    """
    global _MODE
    if mode not in ("histogram", "uniform"):
        raise ValueError(f"unknown estimation mode {mode!r}")
    previous = _MODE
    if mode != previous:
        from .epoch import bump_epoch

        _MODE = mode
        bump_epoch(f"stats-mode:{mode}")
    return previous


@dataclass(frozen=True)
class ColumnStats:
    """Summary of one column.

    The first three fields are the classic summary; ``histogram`` and
    ``sketch`` are the distribution summaries (None when the column is
    empty), and ``is_key``/``od_ordered`` are dependency facts derived
    from the owning table's declared constraints:

    * ``is_key`` — the column alone functionally determines every other
      column (via the FD facet of the declared FDs/ODs/equivalences), so
      an equi-join on it matches at most one row per probe;
    * ``od_ordered`` — the column leads a declared OD/equivalence or a
      sorted index, so its domain is meaningfully ordered and join-key
      overlap can use interleaved-merge range estimates.
    """

    distinct: int
    minimum: Any
    maximum: Any
    histogram: Optional[EquiDepthHistogram] = None
    sketch: Optional[KMVSketch] = None
    is_key: bool = False
    od_ordered: bool = False

    def range_selectivity(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Fraction of rows with values in the requested window.

        ``None`` bounds are open ends; inclusiveness distinguishes
        ``<`` from ``<=``.  With a histogram (and histogram mode on) the
        bucket profile answers; otherwise the uniform model interpolates
        over [minimum, maximum] with three guarantees the original model
        lacked:

        * a window disjoint from the observed domain estimates **0.0**
          (including on constant columns, where ``span == 0`` used to
          return 1.0 for *any* window);
        * a constant column whose value lies inside the window estimates
          **1.0**;
        * a closed non-empty window never estimates below
          :meth:`equality_selectivity` — a point range ``BETWEEN x AND
          x`` is an equality, not a zero-width interval.
        """
        if self.minimum is None or self.maximum is None:
            return 1.0
        # Domain-disjointness: decisive in every mode.  Exclusive bounds
        # touching the domain edge exclude it entirely.
        try:
            if low is not None and (
                low > self.maximum
                or (low == self.maximum and not low_inclusive)
            ):
                return 0.0
            if high is not None and (
                high < self.minimum
                or (high == self.minimum and not high_inclusive)
            ):
                return 0.0
        except TypeError:  # incomparable bound (e.g. str vs int domain)
            return DEFAULT_SELECTIVITY
        if self.minimum == self.maximum:
            # Constant column and the window contains its only value.
            return 1.0
        point_range = (
            low is not None
            and high is not None
            and low == high
            and low_inclusive
            and high_inclusive
        )
        if point_range:
            return self.equality_selectivity(low)
        if _MODE == "histogram" and self.histogram is not None:
            fraction = self.histogram.range_fraction(
                low, high, low_inclusive, high_inclusive
            )
            if fraction >= 0.0:  # negative: incomparable, fall through
                # Inclusive endpoints inside the domain contribute at
                # least their own equality mass — interpolation loses it
                # when the endpoint sits on a bucket edge (``k >= max``
                # must not estimate zero rows).
                if low is not None and low_inclusive:
                    fraction = max(fraction, self.equality_selectivity(low))
                if high is not None and high_inclusive:
                    fraction = max(fraction, self.equality_selectivity(high))
                return min(1.0, fraction)
        return self._uniform_range(low, high, low_inclusive, high_inclusive)

    def _uniform_range(
        self, low: Any, high: Any, low_inclusive: bool, high_inclusive: bool
    ) -> float:
        """The uniform-interpolation model over [minimum, maximum]."""
        lo = max(low, self.minimum) if low is not None else self.minimum
        hi = min(high, self.maximum) if high is not None else self.maximum
        try:
            span = self.maximum - self.minimum
            window = hi - lo
        except TypeError:  # non-numeric domain: fall back to the default
            return DEFAULT_SELECTIVITY
        if hasattr(span, "days"):  # date arithmetic yields timedeltas
            span = span.days
            window = window.days
        if span <= 0:  # constant column already handled; be safe
            return 1.0
        fraction = max(0.0, min(1.0, window / span))
        if low is not None and high is not None and low_inclusive and high_inclusive:
            # A closed window that reaches this far overlaps the domain:
            # it holds at least as many rows as one equality match.
            fraction = max(fraction, self.equality_selectivity())
        return fraction

    def equality_selectivity(self, value: Any = None) -> float:
        """Fraction of rows matching one value.

        Without a concrete value (or without a histogram): ``1/distinct``
        — the uniform assumption.  With both, the histogram answers from
        the owning bucket (0.0 for values outside the observed domain),
        which is what separates a heavy hitter from the long tail.
        """
        if value is not None and self.minimum is not None:
            try:
                if value < self.minimum or value > self.maximum:
                    return 0.0
            except TypeError:
                return DEFAULT_SELECTIVITY
            if _MODE == "histogram" and self.histogram is not None:
                return self.histogram.equality_fraction(value)
        return 1.0 / max(1, self.distinct)


@dataclass
class TableStats:
    """Row count and per-column statistics."""

    row_count: int
    columns: Dict[str, ColumnStats]

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def equijoin_rows(
    left_rows: float,
    right_rows: float,
    key_ndvs: Iterable[Tuple[Optional[int], Optional[int]]],
) -> float:
    """Equi-join output cardinality under the containment assumption.

    For each join-key pair the smaller key domain is assumed contained in
    the larger (System R's classic heuristic), so every left/right row
    pair matches with probability ``1 / max(ndv_left, ndv_right)``::

        |L ⋈ R| = |L| · |R| / Π max(ndv_l, ndv_r)

    Key pairs with no usable NDV on either side (``None`` or 0 — no
    statistics collected, empty column) fall back to dividing by
    ``max(|L|, |R|)`` — the pre-NDV heuristic — applied at most once so
    multi-key joins without statistics don't collapse to zero.

    This is the ``"uniform"``-mode estimator and the fallback for key
    pairs without distribution summaries; :func:`estimate_equijoin`
    layers the FD/OD-aware bounds on top.
    """
    rows = float(left_rows) * float(right_rows)
    fallback_used = False
    applied = False
    for left_ndv, right_ndv in key_ndvs:
        denominator = max(left_ndv or 0, right_ndv or 0)
        if denominator > 0:
            rows /= denominator
            applied = True
        elif not fallback_used:
            rows /= max(left_rows, right_rows, 1.0)
            fallback_used = True
    if not applied and not fallback_used:
        rows /= max(left_rows, right_rows, 1.0)
    return max(1.0, rows)


@dataclass(frozen=True)
class JoinKeyStats:
    """One join-key pair's column statistics (either side may be None
    when the key does not resolve to a base-table column)."""

    left: Optional[ColumnStats]
    right: Optional[ColumnStats]


def estimate_equijoin(
    left_rows: float,
    right_rows: float,
    keys: Sequence[JoinKeyStats],
) -> float:
    """FD/OD-aware equi-join output estimate (histogram mode).

    Per key pair, most-informed model first:

    1. **OD interleaved merge** — both columns OD-declared ordered with
       histograms: :func:`~repro.engine.histogram.merge_join_rows` walks
       the merged bucket boundaries, so disjoint or partially overlapping
       key ranges estimate (near) zero matches instead of containment's
       full cross-probability;
    2. **sketch overlap** — both columns sketched: the matching
       probability is ``|A ∩ B| / (ndv_l · ndv_r)`` with the intersection
       measured by the KMV sketches (containment is the special case
       ``|A ∩ B| = min(ndv)``);
    3. **containment** — the classic ``1 / max(ndv)``.

    Then the FD layer caps the result: a key column on one side matches
    at most one row per probe-side row, so the output can never exceed
    the other side's cardinality.  In ``"uniform"`` mode everything above
    is bypassed in favor of :func:`equijoin_rows` — the ablation
    baseline.
    """
    if _MODE != "histogram":
        return equijoin_rows(
            left_rows,
            right_rows,
            [
                (
                    key.left.distinct if key.left is not None else None,
                    key.right.distinct if key.right is not None else None,
                )
                for key in keys
            ],
        )
    rows = float(left_rows) * float(right_rows)
    fallback_used = False
    applied = False
    for key in keys:
        left, right = key.left, key.right
        left_ndv = left.distinct if left is not None else 0
        right_ndv = right.distinct if right is not None else 0
        if (
            left is not None
            and right is not None
            and left.od_ordered
            and right.od_ordered
            and left.histogram is not None
            and right.histogram is not None
        ):
            merged = merge_join_rows(
                left_rows, right_rows, left.histogram, right.histogram
            )
            if merged >= 0.0:  # negative: incomparable domains, fall on
                # The merge walk already scales to the input
                # cardinalities; as one key's selectivity factor it is
                # merged/(|L|·|R|), composing with the other keys.
                cross = max(float(left_rows) * float(right_rows), 1e-12)
                rows *= min(1.0, merged / cross)
                applied = True
                continue
        if (
            left is not None
            and right is not None
            and left.sketch is not None
            and right.sketch is not None
            and left_ndv
            and right_ndv
        ):
            overlap = left.sketch.intersection_ndv(right.sketch)
            rows *= overlap / (left_ndv * right_ndv)
            applied = True
            continue
        denominator = max(left_ndv, right_ndv)
        if denominator > 0:
            rows /= denominator
            applied = True
        elif not fallback_used:
            rows /= max(left_rows, right_rows, 1.0)
            fallback_used = True
    if not applied and not fallback_used:
        rows /= max(left_rows, right_rows, 1.0)
    # FD layer: a declared key on one side bounds the output at the other
    # side's cardinality (each probe row finds at most one match).
    for key in keys:
        if key.right is not None and key.right.is_key:
            rows = min(rows, float(left_rows))
        if key.left is not None and key.left.is_key:
            rows = min(rows, float(right_rows))
    return max(1.0, rows)


def _dependency_facts(table: Table) -> Tuple[frozenset, frozenset]:
    """(key columns, OD-ordered columns) from the declared constraints.

    Keyness goes through the FD facet of the full statement set (Lemma 1:
    every component OD of every declared statement implies its FD) and
    the classical closure test — the OD oracle's FD layer, evaluated
    eagerly per collection pass so join estimates read a set instead of
    running implication queries.
    """
    from ..core.dependency import (
        OrderDependency,
        OrderEquivalence,
    )
    from ..fd.bridge import fds_of
    from ..fd.closure import is_superkey

    names = table.schema.names
    keys = set()
    ordered = set()
    if table.constraints:
        fds = fds_of(table.constraints)
        for name in names:
            if is_superkey([name], names, fds):
                keys.add(name)
        for statement in table.constraints:
            if isinstance(statement, (OrderDependency, OrderEquivalence)):
                if statement.lhs:
                    ordered.add(str(statement.lhs[0]))
                if isinstance(statement, OrderEquivalence) and statement.rhs:
                    ordered.add(str(statement.rhs[0]))
    return frozenset(keys), frozenset(ordered)


def collect_stats(table: Table, indexes: Sequence = ()) -> TableStats:
    """One full pass over the table.

    Per column: min/max/NDV (as before) plus the equi-depth histogram and
    KMV distinct sketch, and the dependency facts (``is_key`` /
    ``od_ordered``) derived from the table's declared constraints.
    ``indexes`` (the database passes its sorted indexes on the table)
    additionally mark each index's leading key column as OD-ordered — a
    sorted index is a physically materialized OD declaration.
    """
    keys, ordered = _dependency_facts(table)
    index_ordered = {
        index.key_columns[0] for index in indexes if index.key_columns
    }
    columns: Dict[str, ColumnStats] = {}
    for position, column in enumerate(table.schema):
        values = [row[position] for row in table.rows]
        if values:
            try:
                ordered_values = sorted(values)
            except TypeError:  # mixed/incomparable values: no histogram
                ordered_values = None
            columns[column.name] = ColumnStats(
                distinct=len(set(values)),
                minimum=min(values) if ordered_values is None else ordered_values[0],
                maximum=max(values) if ordered_values is None else ordered_values[-1],
                histogram=(
                    build_histogram(ordered_values)
                    if ordered_values is not None
                    else None
                ),
                sketch=build_sketch(values),
                is_key=column.name in keys,
                od_ordered=column.name in ordered or column.name in index_ordered,
            )
        else:
            columns[column.name] = ColumnStats(
                0,
                None,
                None,
                is_key=column.name in keys,
                od_ordered=column.name in ordered or column.name in index_ordered,
            )
    return TableStats(row_count=len(table.rows), columns=columns)

"""Table statistics for cardinality estimation.

Per-column min/max/distinct counts plus row counts — the minimum a
cost-based optimizer needs to rank plan alternatives for the paper's
experiments (selectivity of date ranges, group counts for aggregates).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from .table import Table

__all__ = ["ColumnStats", "TableStats", "collect_stats"]


@dataclass(frozen=True)
class ColumnStats:
    """Summary of one column."""

    distinct: int
    minimum: Any
    maximum: Any

    def range_selectivity(self, low: Any, high: Any) -> float:
        """Fraction of rows with values in ``[low, high]`` assuming a
        uniform distribution over the observed value range."""
        if self.minimum is None or self.maximum is None:
            return 1.0
        lo = max(low, self.minimum) if low is not None else self.minimum
        hi = min(high, self.maximum) if high is not None else self.maximum
        try:
            span = self.maximum - self.minimum
            window = hi - lo
        except TypeError:  # non-numeric domain: fall back to a constant
            return 0.3
        if hasattr(span, "days"):  # date arithmetic yields timedeltas
            span = span.days
            window = window.days
        if span <= 0:
            return 1.0
        return max(0.0, min(1.0, window / span))

    def equality_selectivity(self) -> float:
        """Fraction of rows matching one value (1 / distinct)."""
        return 1.0 / max(1, self.distinct)


@dataclass
class TableStats:
    """Row count and per-column statistics."""

    row_count: int
    columns: Dict[str, ColumnStats]

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def collect_stats(table: Table) -> TableStats:
    """One full pass over the table."""
    columns: Dict[str, ColumnStats] = {}
    for position, column in enumerate(table.schema):
        values = [row[position] for row in table.rows]
        if values:
            columns[column.name] = ColumnStats(
                distinct=len(set(values)), minimum=min(values), maximum=max(values)
            )
        else:
            columns[column.name] = ColumnStats(0, None, None)
    return TableStats(row_count=len(table.rows), columns=columns)

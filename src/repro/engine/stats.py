"""Table statistics for cardinality estimation.

Per-column min/max/distinct counts plus row counts — the minimum a
cost-based optimizer needs to rank plan alternatives for the paper's
experiments (selectivity of date ranges, group counts for aggregates)
and, since the join-ordering subsystem, NDV-based equi-join output
cardinalities under the classic containment assumption
(:func:`equijoin_rows`).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from .table import Table

__all__ = [
    "DEFAULT_SELECTIVITY",
    "ColumnStats",
    "TableStats",
    "collect_stats",
    "equijoin_rows",
]

#: Selectivity assumed for predicates the estimator cannot analyze — an
#: unknown comparison, a non-numeric range, a column with no statistics.
#: One shared constant (historically ``optimizer/costing.py`` used 0.33
#: while the non-numeric range fallback here used 0.3; the estimates they
#: feed are compared against each other, so they must agree).
DEFAULT_SELECTIVITY = 0.33


@dataclass(frozen=True)
class ColumnStats:
    """Summary of one column."""

    distinct: int
    minimum: Any
    maximum: Any

    def range_selectivity(self, low: Any, high: Any) -> float:
        """Fraction of rows with values in ``[low, high]`` assuming a
        uniform distribution over the observed value range."""
        if self.minimum is None or self.maximum is None:
            return 1.0
        lo = max(low, self.minimum) if low is not None else self.minimum
        hi = min(high, self.maximum) if high is not None else self.maximum
        try:
            span = self.maximum - self.minimum
            window = hi - lo
        except TypeError:  # non-numeric domain: fall back to the shared default
            return DEFAULT_SELECTIVITY
        if hasattr(span, "days"):  # date arithmetic yields timedeltas
            span = span.days
            window = window.days
        if span <= 0:
            return 1.0
        return max(0.0, min(1.0, window / span))

    def equality_selectivity(self) -> float:
        """Fraction of rows matching one value (1 / distinct)."""
        return 1.0 / max(1, self.distinct)


@dataclass
class TableStats:
    """Row count and per-column statistics."""

    row_count: int
    columns: Dict[str, ColumnStats]

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def equijoin_rows(
    left_rows: float,
    right_rows: float,
    key_ndvs: Iterable[Tuple[Optional[int], Optional[int]]],
) -> float:
    """Equi-join output cardinality under the containment assumption.

    For each join-key pair the smaller key domain is assumed contained in
    the larger (System R's classic heuristic), so every left/right row
    pair matches with probability ``1 / max(ndv_left, ndv_right)``::

        |L ⋈ R| = |L| · |R| / Π max(ndv_l, ndv_r)

    Key pairs with no usable NDV on either side (``None`` or 0 — no
    statistics collected, empty column) fall back to dividing by
    ``max(|L|, |R|)`` — the pre-NDV heuristic — applied at most once so
    multi-key joins without statistics don't collapse to zero.
    """
    rows = float(left_rows) * float(right_rows)
    fallback_used = False
    applied = False
    for left_ndv, right_ndv in key_ndvs:
        denominator = max(left_ndv or 0, right_ndv or 0)
        if denominator > 0:
            rows /= denominator
            applied = True
        elif not fallback_used:
            rows /= max(left_rows, right_rows, 1.0)
            fallback_used = True
    if not applied and not fallback_used:
        rows /= max(left_rows, right_rows, 1.0)
    return max(1.0, rows)


def collect_stats(table: Table) -> TableStats:
    """One full pass over the table."""
    columns: Dict[str, ColumnStats] = {}
    for position, column in enumerate(table.schema):
        values = [row[position] for row in table.rows]
        if values:
            columns[column.name] = ColumnStats(
                distinct=len(set(values)), minimum=min(values), maximum=max(values)
            )
        else:
            columns[column.name] = ColumnStats(0, None, None)
    return TableStats(row_count=len(table.rows), columns=columns)

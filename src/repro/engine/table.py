"""Tables: typed row storage with OD/FD check-constraint enforcement.

The paper proposes declaring ODs as a new kind of *integrity constraint*
(Section 2.2; their DB2 prototype added exactly such a check constraint).
:class:`Table` realizes that: statements registered through
:meth:`Table.declare` are validated on ``load`` and on demand, with
split/swap witnesses in the error message.
"""
from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.attrs import AttrList
from ..core.dependency import Statement
from ..core.relation import Relation
from ..core.satisfaction import explain_violation, satisfies
from .epoch import bump_epoch
from .schema import Schema
from .types import validate_value

__all__ = ["Table", "ConstraintViolation"]


class ConstraintViolation(ValueError):
    """A declared dependency is falsified by the table's data."""


class Table:
    """A named, typed, row-oriented table."""

    def __init__(self, name: str, schema: Schema) -> None:
        self.name = name
        self.schema = schema
        self.rows: List[tuple] = []
        self.constraints: List[Statement] = []
        self._columnar: Optional[List[list]] = None
        self._columnar_row_count = -1

    # ------------------------------------------------------------------
    # Data manipulation
    # ------------------------------------------------------------------
    def insert(self, row: Sequence[Any]) -> None:
        """Insert one row, validating types."""
        if len(row) != len(self.schema):
            raise ValueError(
                f"{self.name}: row width {len(row)} != schema width "
                f"{len(self.schema)}"
            )
        validated = tuple(
            validate_value(value, column.dtype, column.name)
            for value, column in zip(row, self.schema)
        )
        self.rows.append(validated)
        # Cached plans may embed data-derived literals (the date rewrite's
        # surrogate-key bounds), so data changes invalidate like DDL does.
        bump_epoch("insert")

    def load(self, rows: Iterable[Sequence[Any]], check: bool = True) -> "Table":
        """Bulk insert; validates declared constraints afterwards."""
        for row in rows:
            self.insert(row)
        if check and self.constraints:
            self.check_constraints()
        return self

    def insert_dicts(self, dicts: Iterable[Dict[str, Any]], check: bool = True) -> "Table":
        """Bulk insert from mappings keyed by column name."""
        names = self.schema.names
        return self.load((tuple(d[n] for n in names) for d in dicts), check=check)

    def __len__(self) -> int:
        return len(self.rows)

    def columnar(self) -> List[list]:
        """A cached column-major view of the rows (one list per column).

        The vectorized scan path slices these vectors directly instead of
        transposing row tuples per batch.  Rebuilt lazily whenever the
        row count changes (the same staleness rule ``SortedIndex`` uses);
        treat the returned lists as read-only.
        """
        if self._columnar_row_count != len(self.rows):
            if self.rows:
                self._columnar = [list(column) for column in zip(*self.rows)]
            else:
                self._columnar = [[] for _ in self.schema]
            self._columnar_row_count = len(self.rows)
        return self._columnar

    # ------------------------------------------------------------------
    # Constraints (the paper's OD check constraints)
    # ------------------------------------------------------------------
    def declare(self, statement: Statement, check: bool = True) -> "Table":
        """Register a dependency statement as an integrity constraint."""
        for attribute in sorted(statement.attributes):
            self.schema.resolve(attribute)  # raises on unknown columns
        if check and self.rows and not satisfies(self.as_relation(), statement):
            raise ConstraintViolation(
                f"{self.name}: {explain_violation(self.as_relation(), statement)}"
            )
        self.constraints.append(statement)
        bump_epoch("declare")
        return self

    def check_constraints(self) -> None:
        """Re-validate every declared constraint against current data."""
        relation = self.as_relation()
        for statement in self.constraints:
            reason = explain_violation(relation, statement)
            if reason is not None:
                raise ConstraintViolation(f"{self.name}: {reason}")

    # ------------------------------------------------------------------
    # Bridging to the theory layer
    # ------------------------------------------------------------------
    def as_relation(self) -> Relation:
        """View this table as a :class:`~repro.core.relation.Relation`."""
        return Relation(AttrList(self.schema.names), self.rows, name=self.name)

    def column_values(self, name: str) -> List[Any]:
        position = self.schema.position(self.schema.resolve(name))
        return [row[position] for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, {len(self.rows)} rows, {len(self.schema)} cols)"

"""Column types for the mini relational engine.

A deliberately small, SQL-flavoured type system: integers, floats, strings,
booleans and dates.  Dates are first-class because the paper's motivating
workloads (Section 2.2's date hierarchy, the TPC-DS rewrite of Section 2.3)
revolve around the date/time domain — 85 of TPC-DS's 99 queries involve date
operators.
"""
from __future__ import annotations

import datetime
import enum
from typing import Any

__all__ = ["DataType", "validate_value", "coerce_literal"]


class DataType(enum.Enum):
    """Supported column types."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"
    DATE = "date"

    def python_types(self) -> tuple:
        return {
            DataType.INT: (int,),
            DataType.FLOAT: (float, int),
            DataType.STR: (str,),
            DataType.BOOL: (bool,),
            DataType.DATE: (datetime.date,),
        }[self]


class TypeError_(TypeError):
    """A value does not match its column's declared type."""


def validate_value(value: Any, dtype: DataType, column: str = "?") -> Any:
    """Check (and lightly coerce) a value against a column type.

    ``None`` is rejected — the engine is NULL-free by design, matching the
    paper's set-of-tuples model where comparisons are total.
    """
    if value is None:
        raise TypeError_(f"column {column!r}: NULLs are not supported")
    if dtype is DataType.BOOL:
        if isinstance(value, bool):
            return value
        raise TypeError_(f"column {column!r}: expected bool, got {value!r}")
    if dtype is DataType.INT and isinstance(value, bool):
        raise TypeError_(f"column {column!r}: expected int, got bool")
    if isinstance(value, dtype.python_types()):
        if dtype is DataType.FLOAT:
            return float(value)
        return value
    if dtype is DataType.DATE and isinstance(value, str):
        return datetime.date.fromisoformat(value)
    raise TypeError_(
        f"column {column!r}: expected {dtype.value}, got {type(value).__name__} "
        f"({value!r})"
    )


def coerce_literal(text: str) -> Any:
    """Best-effort literal coercion used by the SQL lexer for unquoted
    numerics (quoted strings and DATE literals are handled in the parser)."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text

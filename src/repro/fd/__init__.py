"""Functional-dependency substrate: closure, covers, and the OD bridge.

Classical set-based FD reasoning (Armstrong closure, minimal covers, keys)
plus the Theorem 13 correspondence that embeds it all into the OD world.
"""
from .bridge import (
    armstrong_rules_via_ods,
    fd_to_od,
    fds_of,
    od_to_fd,
    theory_fd_implies,
)
from .closure import attribute_closure, candidate_keys, fd_implies, is_superkey
from .cover import equivalent_covers, minimal_cover, singleton_rhs

__all__ = [
    "attribute_closure",
    "fd_implies",
    "is_superkey",
    "candidate_keys",
    "minimal_cover",
    "singleton_rhs",
    "equivalent_covers",
    "fd_to_od",
    "od_to_fd",
    "fds_of",
    "theory_fd_implies",
    "armstrong_rules_via_ods",
]

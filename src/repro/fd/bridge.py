"""Theorem 13/16 bridge: the correspondence between FDs and ODs.

The paper shows ODs *subsume* FDs:

* **Theorem 13**: the FD ``X' → Y'`` holds iff the OD ``X ↦ XY`` holds for
  lists ``X``, ``Y`` ordering the sets ``X'``, ``Y'`` — any ordering works,
  by Permutation (Theorem 14).
* **Lemma 1**: every OD ``X ↦ Y`` implies the FD ``set(X) → set(Y)``
  (the converse fails: FDs carry no order).
* **Theorem 16**: the OD axioms are sound and complete over FDs; in
  particular Armstrong's three axioms are derivable.

This module provides both conversion directions plus
:func:`armstrong_rules_via_ods`, which re-proves each Armstrong axiom
instance through the OD oracle — the executable form of Theorem 16's first
half, exercised in the test suite.
"""
from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..core.attrs import AttrList
from ..core.dependency import FunctionalDependency, OrderDependency, Statement
from ..core.inference import ODTheory

__all__ = [
    "fd_to_od",
    "od_to_fd",
    "fds_of",
    "theory_fd_implies",
    "armstrong_rules_via_ods",
]


def fd_to_od(dependency: FunctionalDependency) -> OrderDependency:
    """Theorem 13, one direction: ``X' → Y'`` as the OD ``X ↦ XY``."""
    return dependency.as_od()


def od_to_fd(dependency: OrderDependency) -> FunctionalDependency:
    """Lemma 1: the FD every OD implies (order information is dropped)."""
    return FunctionalDependency(tuple(dependency.lhs.attrs), tuple(dependency.rhs.attrs))


def fds_of(statements: Iterable[Statement]) -> List[FunctionalDependency]:
    """The FDs implied by each statement's component ODs (via Lemma 1)."""
    from ..core.dependency import to_ods

    out: List[FunctionalDependency] = []
    for statement in statements:
        for dependency in to_ods(statement):
            out.append(od_to_fd(dependency))
    return out


def theory_fd_implies(theory: ODTheory, dependency: FunctionalDependency) -> bool:
    """Decide FD implication through the OD oracle (Theorem 13 encoding)."""
    return theory.implies(dependency)


def armstrong_rules_via_ods(
    x: Sequence[str], y: Sequence[str], z: Sequence[str]
) -> Tuple[bool, bool, bool]:
    """Verify Armstrong's axioms as OD implications at given attribute sets.

    Returns truth of (reflexivity, augmentation, transitivity) where:

    * reflexivity: ``Y ⊆ X`` implies ``X → Y`` — checked with ``y ⊆ x``
      assumed by taking ``x ∪ y`` as the determinant;
    * augmentation: ``X → Y ⊢ XZ → YZ``;
    * transitivity: ``X → Y, Y → Z ⊢ X → Z``.

    All three must come back ``True`` — the test suite asserts exactly that
    across random instantiations (Theorem 16's derivability claim, run
    through the semantic oracle).
    """
    x, y, z = list(x), list(y), list(z)
    reflexivity = ODTheory(()).implies(FunctionalDependency(x + y, y))
    augmentation = ODTheory([FunctionalDependency(x, y)]).implies(
        FunctionalDependency(x + z, y + z)
    )
    transitivity = ODTheory(
        [FunctionalDependency(x, y), FunctionalDependency(y, z)]
    ).implies(FunctionalDependency(x, z))
    return reflexivity, augmentation, transitivity

"""Classical FD reasoning: attribute-set closure and implication.

The linear-ish closure algorithm (Beeri–Bernstein style) over a set of
:class:`~repro.core.dependency.FunctionalDependency` objects.  This is the
substrate the split(M) construction and the FD-based optimizer rewrites
(the [17] ``ReduceOrder`` baseline) stand on, and the reference point for
the "ODs subsume FDs" results (Theorems 13 and 16).
"""
from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..core.dependency import FunctionalDependency

__all__ = ["attribute_closure", "fd_implies", "is_superkey", "candidate_keys"]


def attribute_closure(
    attributes: Iterable[str], fds: Sequence[FunctionalDependency]
) -> FrozenSet[str]:
    """The closure ``W⁺``: every attribute determined by ``W`` under ``fds``.

    Iterates to a fixpoint; each pass applies every FD whose left side is
    already contained in the working set.
    """
    closed: Set[str] = set(attributes)
    remaining: List[FunctionalDependency] = list(fds)
    changed = True
    while changed:
        changed = False
        still: List[FunctionalDependency] = []
        for dependency in remaining:
            if set(dependency.lhs) <= closed:
                before = len(closed)
                closed.update(dependency.rhs)
                if len(closed) != before:
                    changed = True
            else:
                still.append(dependency)
        remaining = still
    return frozenset(closed)


def fd_implies(
    fds: Sequence[FunctionalDependency], candidate: FunctionalDependency
) -> bool:
    """Armstrong-complete implication test: ``fds ⊨ candidate``.

    Sound and complete by the classical closure theorem:
    ``X → Y`` is implied iff ``Y ⊆ X⁺``.
    """
    return set(candidate.rhs) <= attribute_closure(candidate.lhs, fds)


def is_superkey(
    attributes: Iterable[str],
    schema: Iterable[str],
    fds: Sequence[FunctionalDependency],
) -> bool:
    """Does the attribute set determine the whole schema?"""
    return set(schema) <= attribute_closure(attributes, fds)


def candidate_keys(
    schema: Sequence[str], fds: Sequence[FunctionalDependency]
) -> List[FrozenSet[str]]:
    """All minimal superkeys, found by breadth-first subset search.

    Exponential in the worst case (as the problem demands); fine at schema
    scale.  Results are sorted by size then lexicographically for
    determinism.
    """
    import itertools

    schema = list(schema)
    keys: List[FrozenSet[str]] = []
    for size in range(0, len(schema) + 1):
        for combo in itertools.combinations(schema, size):
            subset = frozenset(combo)
            if any(key <= subset for key in keys):
                continue
            if is_superkey(subset, schema, fds):
                keys.append(subset)
    return sorted(keys, key=lambda key: (len(key), sorted(key)))

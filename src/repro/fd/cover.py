"""Minimal covers and equivalence of FD sets.

Standard canonical-cover machinery: singleton right-hand sides, removal of
extraneous left-hand attributes, removal of redundant dependencies.  Used by
the discovery module to present discovered FD sets compactly and by tests as
an independent consistency check on the OD oracle's FD facets.
"""
from __future__ import annotations

from typing import List, Sequence

from ..core.dependency import FunctionalDependency
from .closure import attribute_closure, fd_implies

__all__ = ["singleton_rhs", "minimal_cover", "equivalent_covers"]


def singleton_rhs(fds: Sequence[FunctionalDependency]) -> List[FunctionalDependency]:
    """Split every FD into one FD per right-hand attribute (Armstrong's
    Decomposition), dropping trivial ``X → A`` with ``A ∈ X``."""
    out: List[FunctionalDependency] = []
    for dependency in fds:
        for attribute in dependency.rhs:
            if attribute in dependency.lhs:
                continue
            out.append(FunctionalDependency(dependency.lhs, (attribute,)))
    return out


def _without(items: Sequence, index: int) -> list:
    return [item for i, item in enumerate(items) if i != index]


def minimal_cover(fds: Sequence[FunctionalDependency]) -> List[FunctionalDependency]:
    """A canonical cover: singleton RHS, no extraneous LHS attribute, no
    redundant FD.  Deterministic given input order."""
    working = singleton_rhs(fds)

    # Remove extraneous left-hand attributes.
    reduced: List[FunctionalDependency] = []
    for dependency in working:
        lhs = list(dependency.lhs)
        changed = True
        while changed and len(lhs) > 1:
            changed = False
            for attribute in list(lhs):
                trimmed = [x for x in lhs if x != attribute]
                if set(dependency.rhs) <= attribute_closure(trimmed, working):
                    lhs = trimmed
                    changed = True
                    break
        reduced.append(FunctionalDependency(lhs, dependency.rhs))

    # Remove redundant dependencies.
    result = list(dict.fromkeys(reduced))  # dedupe, keep order
    index = 0
    while index < len(result):
        candidate = result[index]
        rest = _without(result, index)
        if fd_implies(rest, candidate):
            result = rest
        else:
            index += 1
    return result


def equivalent_covers(
    first: Sequence[FunctionalDependency], second: Sequence[FunctionalDependency]
) -> bool:
    """Do the two FD sets imply each other?"""
    return all(fd_implies(first, dependency) for dependency in second) and all(
        fd_implies(second, dependency) for dependency in first
    )

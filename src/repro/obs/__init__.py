"""Engine observability: tracing, EXPLAIN ANALYZE, metrics registry.

Three layers, all pay-as-you-go:

* :mod:`repro.obs.tracer` — hierarchical wall-clock spans around every
  optimizer phase and every operator's execution, exportable as Chrome
  ``trace_event`` JSON (load the export in ``chrome://tracing`` or
  Perfetto).  Worker-side spans from parallel backends are shipped back
  and re-parented under the consumer's exchange span.
* :mod:`repro.obs.analyze` — ``EXPLAIN ANALYZE``: per-plan-node actual
  rows/batches/time plus Q-error against the planner's cardinality
  estimates.
* :mod:`repro.obs.registry` — cumulative engine counters (queries,
  failures, timings) and the slow-query ring buffer behind
  ``Database.stats_snapshot()``.

Environment knobs, read once at import like the rest of the engine:

* ``REPRO_TRACE`` — truthy value traces every ``Database.execute`` call
  by default (per-call ``trace=`` still wins).
* ``REPRO_SLOW_QUERY_MS`` — threshold for the slow-query log
  (default 100 ms).
"""
from __future__ import annotations

import os

from .registry import EngineMetrics, SlowQuery
from .tracer import Span, Tracer

__all__ = [
    "EngineMetrics",
    "SlowQuery",
    "Span",
    "Tracer",
    "TRACE_DEFAULT",
    "SLOW_QUERY_MS",
]

#: Whether ``Database.execute`` traces when the caller doesn't say.
TRACE_DEFAULT = os.environ.get("REPRO_TRACE", "").strip().lower() not in (
    "",
    "0",
    "false",
    "off",
)

#: Queries slower than this (wall milliseconds) enter the slow-query ring.
SLOW_QUERY_MS = float(os.environ.get("REPRO_SLOW_QUERY_MS", "100"))

"""EXPLAIN ANALYZE: annotate a plan tree with measured actuals.

Given a plan that just ran under a :class:`~repro.obs.tracer.Tracer`,
fold the operator spans back onto the plan nodes (matched by the
structural ``node`` path stamped into every span — stable across
pickling, so process-backend worker spans land on the right consumer
nodes) and render the tree with, per node:

* ``actual rows`` — rows the node's stream(s) yielded, summed across
  loops and partitions;
* ``batches`` — batch count in vectorized/parallel modes;
* ``time`` — inclusive wall milliseconds (summed across partitions, so
  parallel nodes report aggregate lane time, not wall clock);
* ``loops`` — stream count when a node was executed more than once
  (nested-loop rescans, partition fan-out);
* ``est``/``q-err`` — the planner's cardinality estimate and the
  Q-error ``max(est/actual, actual/est)`` against it, the feedback loop
  the statistics subsystem was built for.  Nodes the cost model can't
  estimate (exchanges) show actuals only.

When both a batch span and its internal row-adapter span exist for one
node, the batch spans win — the adapter's rows are the same rows counted
again.
"""
from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["annotate_plan", "q_error"]


def q_error(estimate: float, actual: float) -> float:
    """The symmetric ratio error, both sides floored at one row."""
    est = max(float(estimate), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


def _collect_actuals(spans: Any) -> Dict[str, Dict[str, Any]]:
    """Aggregate operator spans by node path (batch spans win over row)."""
    per_path: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for span in spans:
        args = span.args or {}
        node = args.get("node")
        if span.cat != "operator" or not isinstance(node, str):
            continue
        mode = args.get("mode", "row")
        bucket = per_path.setdefault(node, {}).setdefault(
            mode, {"rows": 0, "batches": 0, "dur_ns": 0, "loops": 0}
        )
        bucket["rows"] += int(args.get("rows", 0))
        bucket["batches"] += int(args.get("batches", 0))
        bucket["dur_ns"] += int(span.dur_ns or 0)
        bucket["loops"] += 1
    out: Dict[str, Dict[str, Any]] = {}
    for node, modes in per_path.items():
        chosen = modes.get("batch") or modes.get("row")
        if chosen is not None:
            out[node] = chosen
    return out


def _estimate_rows(database: Any, op: Any) -> Optional[float]:
    from ..optimizer.costing import estimate_plan

    try:
        return estimate_plan(database, op).rows
    except TypeError:
        # Exchanges (and any future un-costed physical node): actuals only.
        return None


def annotate_plan(
    database: Any, root: Any, spans: Any
) -> Tuple[str, List[Dict[str, Any]]]:
    """The annotated plan text plus a per-node summary list.

    The summary (one dict per node, pre-order) is what lands on
    ``PlanInfo.analyze`` and ``explain(analyze=True)`` callers can
    consume programmatically.
    """
    actuals = _collect_actuals(spans)
    summary: List[Dict[str, Any]] = []
    lines: List[str] = []

    def visit(op: Any, path: str, indent: int) -> None:
        entry: Dict[str, Any] = {"node": path, "label": op.label()}
        notes: List[str] = []
        measured = actuals.get(path)
        if measured is not None:
            rows = measured["rows"]
            entry["rows"] = rows
            entry["wall_ms"] = measured["dur_ns"] / 1e6
            notes.append(f"actual rows={rows}")
            if measured["batches"]:
                entry["batches"] = measured["batches"]
                notes.append(f"batches={measured['batches']}")
            if measured["loops"] > 1:
                entry["loops"] = measured["loops"]
                notes.append(f"loops={measured['loops']}")
            notes.append(f"time={entry['wall_ms']:.3f}ms")
        estimate = _estimate_rows(database, op)
        if estimate is not None:
            entry["est_rows"] = estimate
            notes.append(f"est={estimate:.0f}")
            if measured is not None:
                entry["q_error"] = q_error(estimate, measured["rows"])
                notes.append(f"q-err={entry['q_error']:.2f}")
        summary.append(entry)
        suffix = f"  [{' '.join(notes)}]" if notes else ""
        lines.append("  " * indent + "-> " + op.label() + suffix)
        for index, child in enumerate(op.children()):
            visit(child, f"{path}.{index}", indent + 1)

    visit(root, "0", 0)
    return "\n".join(lines), summary

"""Cumulative engine counters and the slow-query ring buffer.

One :class:`EngineMetrics` lives on each ``Database`` and backs
``Database.stats_snapshot()``.  The contract mirrors the plan cache's:

* everything under ``counters`` is **monotonic** — it only ever grows
  for the lifetime of the database, so deltas between two snapshots are
  meaningful rates;
* everything else in a snapshot (sizes, hit rates, the slow-query list)
  is a **gauge** — a point-in-time reading that may move either way.

The slow-query log is a bounded ring (:data:`RING_SIZE` entries): the
cheapest structure that answers "what was slow *recently*" without
unbounded growth on a long-lived database.
"""
from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass
from typing import Any, Deque, Dict, List, Optional

__all__ = ["EngineMetrics", "SlowQuery", "RING_SIZE"]

RING_SIZE = 64


@dataclass(frozen=True)
class SlowQuery:
    """One slow-query ring entry."""

    sql: str
    wall_ms: float
    rows: int
    backend: Optional[str]
    workers: Optional[int]
    error: Optional[str] = None


class EngineMetrics:
    """Monotonic query/timing counters plus the slow-query ring."""

    def __init__(self, slow_ms: float) -> None:
        self.slow_ms = slow_ms
        self._counters: Dict[str, int] = {
            "queries": 0,
            "failures": 0,
            "timeouts": 0,
            "rows_returned": 0,
            "slow_queries": 0,
            "wall_ns": 0,
        }
        self._slow: Deque[SlowQuery] = deque(maxlen=RING_SIZE)

    def record(
        self,
        sql: str,
        wall_ns: int,
        rows: int,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
        error: Optional[BaseException] = None,
        timed_out: bool = False,
    ) -> None:
        """Fold one finished (or failed) execution into the registry."""
        self._counters["queries"] += 1
        self._counters["wall_ns"] += wall_ns
        self._counters["rows_returned"] += rows
        if error is not None:
            self._counters["failures"] += 1
        if timed_out:
            self._counters["timeouts"] += 1
        wall_ms = wall_ns / 1e6
        if wall_ms >= self.slow_ms:
            self._counters["slow_queries"] += 1
            self._slow.append(
                SlowQuery(
                    sql=sql,
                    wall_ms=wall_ms,
                    rows=rows,
                    backend=backend,
                    workers=workers,
                    error=type(error).__name__ if error is not None else None,
                )
            )

    def counters(self) -> Dict[str, int]:
        """A copy of the monotonic counters."""
        return dict(self._counters)

    def slow_queries(self) -> List[SlowQuery]:
        """The slow-query ring, oldest first (gauge: bounded, evicting)."""
        return list(self._slow)

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"counters": self.counters()}
        queries = self._counters["queries"]
        out["avg_wall_ms"] = (
            self._counters["wall_ns"] / queries / 1e6 if queries else 0.0
        )
        out["slow_query_ms"] = self.slow_ms
        out["slow_queries"] = [asdict(entry) for entry in self._slow]
        return out

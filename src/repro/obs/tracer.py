"""Hierarchical wall-clock spans over planning and execution.

Span model
----------
A :class:`Span` is a closed interval on the ``perf_counter_ns`` clock with
a name, a category, an explicit parent link, and a small ``args`` dict.
Two kinds exist:

* **phase spans** — opened with the :meth:`Tracer.span` context manager
  around optimizer phases (``parse``, ``pushdown``, ``join-order``, …)
  and the outer ``query``/``execute`` envelopes.  These nest lexically,
  so an explicit stack gives their parents.
* **operator spans** — one per *stream* of an operator, opened by
  :meth:`Tracer.wrap_stream` when the stream is created and closed when
  it is exhausted or abandoned.  Lexical nesting does **not** hold for
  these: a join creates both child streams before pulling either, so the
  second child would wrongly nest under the first.  Parents come from
  plan *structure* instead — :meth:`register_plan` records each
  operator's parent operator, and a new stream parents to the parent
  operator's most recently opened still-open span.

Well-nesting is guaranteed by construction: the driver generator that
counts rows closes its inner stream *first* (ending descendant spans —
CPython finalizes the inner frame's child generators synchronously) and
only then ends its own span.

Worker spans
------------
Parallel partitions always run under a *fresh local tracer* (one per
attempt), never the consumer's — no cross-thread mutation, and spans of
failed attempts vanish with the attempt.  The winning attempt's spans
travel back on the terminal exchange message as :meth:`dump` payloads;
the consumer re-parents them under its exchange span with
:meth:`adopt`, giving each partition its own ``tid`` lane.

Everything here is pay-as-you-go: when no tracer is installed the
engine's hot paths never see this module (see
``Operator.__init_subclass__``), and tracing never touches ``Metrics``
counters, so traced runs stay bit- and counter-identical to untraced
ones.
"""
from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter_ns
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Span", "Tracer"]


class Span:
    """One timed interval; ``dur_ns`` is ``None`` while still open."""

    __slots__ = ("id", "parent", "name", "cat", "start_ns", "dur_ns", "tid", "args")

    def __init__(
        self,
        id: int,
        parent: Optional[int],
        name: str,
        cat: str,
        start_ns: int,
        tid: int,
        args: Optional[Dict[str, Any]],
    ) -> None:
        self.id = id
        self.parent = parent
        self.name = name
        self.cat = cat
        self.start_ns = start_ns
        self.dur_ns: Optional[int] = None
        self.tid = tid
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return (
            f"Span({self.id}, parent={self.parent}, {self.name!r}, "
            f"dur={self.dur_ns})"
        )


class Tracer:
    """Collects spans for one query (or one partition attempt)."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._next_id = 1
        #: Open context-manager (phase) spans, innermost last.
        self._ctx: List[int] = []
        #: id(op) -> id(parent op) from :meth:`register_plan`.
        self._op_parent: Dict[int, Optional[int]] = {}
        #: id(op) -> structural path ("0", "0.1", …) for analyze/adopt.
        self._op_path: Dict[int, str] = {}
        #: id(op) -> span-id stack of this op's still-open spans.
        self._op_open: Dict[int, List[int]] = {}
        #: tid lanes handed out to adopted partition spans (0 = local).
        self._lanes = 0

    # ------------------------------------------------------------------
    # Core span lifecycle
    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        cat: str = "phase",
        parent: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
        tid: int = 0,
    ) -> int:
        span = Span(self._next_id, parent, name, cat, perf_counter_ns(), tid, args)
        self._next_id += 1
        self.spans.append(span)
        self._by_id[span.id] = span
        return span.id

    def end(self, span_id: int) -> None:
        span = self._by_id.get(span_id)
        if span is not None and span.dur_ns is None:
            span.dur_ns = perf_counter_ns() - span.start_ns

    @contextmanager
    def span(self, name: str, cat: str = "phase", **args: Any) -> Iterator[int]:
        """A lexically nested phase span (optimizer phases, envelopes)."""
        parent = self._ctx[-1] if self._ctx else None
        sid = self.begin(name, cat, parent, args or None)
        self._ctx.append(sid)
        try:
            yield sid
        finally:
            self._ctx.pop()
            self.end(sid)

    # ------------------------------------------------------------------
    # Operator spans
    # ------------------------------------------------------------------
    def register_plan(self, root: Any, parent_op: Any = None) -> None:
        """Record the plan's parent/child structure for span parenting.

        Paths are dotted child indices from the root (root ``"0"``, its
        second child ``"0.1"``, …) — stable across pickling, which is how
        worker spans map back onto consumer plan nodes.
        """
        base_parent = id(parent_op) if parent_op is not None else None
        base_path = self._op_path.get(base_parent, "") if base_parent else ""
        root_path = f"{base_path}.0" if base_path else "0"
        stack: List[Tuple[Any, Optional[int], str]] = [(root, base_parent, root_path)]
        while stack:
            op, parent_id, path = stack.pop()
            oid = id(op)
            self._op_parent[oid] = parent_id
            self._op_path[oid] = path
            for index, child in enumerate(op.children()):
                stack.append((child, oid, f"{path}.{index}"))

    def _parent_for(self, op: Any) -> Optional[int]:
        oid = id(op)
        # A still-open span of the *same* op means the row adapter is
        # running inside the op's batch span — nest under it.
        own = self._op_open.get(oid)
        if own:
            return own[-1]
        parent_id = self._op_parent.get(oid)
        while parent_id is not None:
            open_stack = self._op_open.get(parent_id)
            if open_stack:
                return open_stack[-1]
            parent_id = self._op_parent.get(parent_id)
        return self._ctx[-1] if self._ctx else None

    def _end_op(self, op_id: int, span_id: int) -> None:
        stack = self._op_open.get(op_id)
        if stack and stack[-1] == span_id:
            stack.pop()
        elif stack and span_id in stack:  # pragma: no cover - defensive
            stack.remove(span_id)
        self.end(span_id)

    def wrap_stream(self, op: Any, stream: Any, mode: str) -> Any:
        """Wrap an operator's row/batch stream in a counting span driver.

        The span opens *now* (stream creation) and closes when the driver
        is exhausted or closed; the driver closes the inner stream before
        ending its own span so descendant spans always end first.
        """
        oid = id(op)
        args: Dict[str, Any] = {"mode": mode}
        path = self._op_path.get(oid)
        if path is not None:
            args["node"] = path
        extra = op.trace_args()
        if extra:
            args.update(extra)
        sid = self.begin(type(op).__name__, "operator", self._parent_for(op), args)
        self._op_open.setdefault(oid, []).append(sid)
        if mode == "row":
            return self._drive_rows(oid, sid, stream, args)
        return self._drive_batches(oid, sid, stream, args)

    def _drive_rows(
        self, op_id: int, span_id: int, stream: Any, args: Dict[str, Any]
    ) -> Iterator[Any]:
        rows = 0
        try:
            for item in stream:
                rows += 1
                yield item
        finally:
            close = getattr(stream, "close", None)
            if close is not None:
                close()
            args["rows"] = rows
            self._end_op(op_id, span_id)

    def _drive_batches(
        self, op_id: int, span_id: int, stream: Any, args: Dict[str, Any]
    ) -> Iterator[Any]:
        rows = 0
        batches = 0
        try:
            for batch in stream:
                batches += 1
                rows += len(batch)
                yield batch
        finally:
            close = getattr(stream, "close", None)
            if close is not None:
                close()
            args["rows"] = rows
            args["batches"] = batches
            self._end_op(op_id, span_id)

    # ------------------------------------------------------------------
    # Shipping worker spans
    # ------------------------------------------------------------------
    def dump(self) -> List[tuple]:
        """Picklable form of every span (the terminal-message payload)."""
        return [
            (s.id, s.parent, s.name, s.cat, s.start_ns, s.dur_ns, s.tid, s.args)
            for s in self.spans
        ]

    def adopt(
        self,
        spans_data: Sequence[tuple],
        exchange_op: Any,
        partition: int,
        attempt: int,
    ) -> None:
        """Graft a partition attempt's spans under the exchange's span.

        Span ids are rebased into this tracer's id space, roots are
        re-parented under the exchange's currently open span, node paths
        are rewritten from partition-relative to consumer-tree paths, and
        the whole attempt gets its own ``tid`` lane.
        """
        if not spans_data:
            return
        open_stack = self._op_open.get(id(exchange_op))
        if open_stack:
            graft_parent: Optional[int] = open_stack[-1]
        else:
            graft_parent = self._ctx[-1] if self._ctx else None
        prefix = self._op_path.get(id(exchange_op))
        self._lanes += 1
        lane = self._lanes
        remap: Dict[int, int] = {}
        for sid, parent, name, cat, start_ns, dur_ns, tid, args in spans_data:
            new_id = self._next_id
            self._next_id += 1
            remap[sid] = new_id
            new_args = dict(args) if args else {}
            new_args["partition"] = partition
            new_args["attempt"] = attempt
            node = new_args.get("node")
            if prefix is not None and isinstance(node, str):
                # Partition chains mirror the exchange subtree, whose root
                # sits at <exchange path>.0 in the consumer tree.
                new_args["node"] = f"{prefix}.0{node[1:]}" if node else node
            new_parent = remap.get(parent, graft_parent) if parent is not None else graft_parent
            span = Span(new_id, new_parent, name, cat, start_ns, lane, new_args)
            span.dur_ns = dur_ns
            self.spans.append(span)
            self._by_id[new_id] = span

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Close any spans left open (abandoned streams on error paths)."""
        now = perf_counter_ns()
        for span in self.spans:
            if span.dur_ns is None:
                span.dur_ns = now - span.start_ns
        self._op_open.clear()
        self._ctx.clear()

    def chrome(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` JSON object (complete ``"X"`` events).

        Timestamps are microseconds relative to the earliest span, so the
        export opens at t=0 in ``chrome://tracing`` / Perfetto.  The
        explicit parent links ride along in ``args`` (``id``/``parent``)
        — interval nesting per ``tid`` tells the same story visually.
        """
        if not self.spans:
            return {"traceEvents": [], "displayTimeUnit": "ms"}
        t0 = min(span.start_ns for span in self.spans)
        events = []
        for span in self.spans:
            args = dict(span.args) if span.args else {}
            args["id"] = span.id
            if span.parent is not None:
                args["parent"] = span.parent
            events.append(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "ph": "X",
                    "ts": (span.start_ns - t0) / 1000.0,
                    "dur": (span.dur_ns or 0) / 1000.0,
                    "pid": 0,
                    "tid": span.tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

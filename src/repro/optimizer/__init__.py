"""OD-aware query optimization: rewrites, order reduction, planning.

The application layer of the reproduction — the techniques Sections 1–2 of
the paper motivate, built on the theory core.  Module map (dependency
order, bottom-up):

* :mod:`repro.optimizer.reduce_order` — the rewrite algorithms:
  ReduceOrder ([17]) vs ReduceOrder++ (Eliminate / Left Eliminate), plus
  the order-satisfaction and stream-groupability predicates they power.
* :mod:`repro.optimizer.properties` — the physical-property IR:
  :class:`~repro.optimizer.properties.OrderSpec` /
  :class:`~repro.optimizer.properties.PhysicalProperty` with canonical
  hashing, rename/restrict algebra, and the mode-dispatched satisfaction
  layer (``naive`` / ``fd`` / ``od``) every caller funnels through.
* :mod:`repro.optimizer.context` — query-scoped dependency theories:
  constraint qualification, join equivalences, constant bindings, and the
  interned (LRU) :func:`~repro.optimizer.context.build_theory` that keeps
  the oracle's memoized results alive across repeated plannings.
* :mod:`repro.optimizer.rewrites` — logical rewrites: predicate pushdown
  and the date-dimension surrogate-key join elimination ([18] /
  Section 2.3), verified through the property framework.
* :mod:`repro.optimizer.costing` — cardinality + cost estimation,
  pricing sort-avoidance from operators' declared order properties and
  equi-join output sizes from per-column NDVs (containment assumption).
* :mod:`repro.optimizer.joingraph` — flattens a logical join block into
  relations + equi-join edges for the ordering search.
* :mod:`repro.optimizer.joinorder` — cost-based join ordering: DP
  enumeration (greedy above :data:`~repro.optimizer.joinorder.DP_MAX_RELATIONS`)
  over a Pareto frontier of (cost, provided order) entries, with
  OD-implied orders merging frontier classes.
* :mod:`repro.optimizer.planner` — physical planning in ``naive`` /
  ``fd`` / ``od`` modes; attributes per-plan oracle activity (cache hits
  vs enumerations) to :class:`~repro.optimizer.planner.PlanInfo` for
  ``EXPLAIN``-style reporting.
* :mod:`repro.optimizer.plan_cache` — whole-plan memoization: canonical
  logical-tree fingerprints, a bounded LRU of physical plans, and the
  catalog-epoch invalidation contract shared with the interned theories.
"""
from .context import build_theory, clear_theory_cache, qualify_statement
from .costing import PlanEstimate, estimate_plan
from .joingraph import BaseRelation, JoinEdge, JoinGraph, extract_join_graph
from .joinorder import (
    DP_MAX_RELATIONS,
    JoinOrderDecision,
    JoinOrderResult,
    search_join_order,
)
from .plan_cache import PlanCache, PlanCacheEntry, canonical_tuple, fingerprint
from .planner import Desired, Planner, PlanInfo
from .properties import (
    EMPTY_PROPERTY,
    EMPTY_SPEC,
    OrderSpec,
    PhysicalProperty,
    column_equivalent,
    exchange_kind,
    groupable,
    reduce_keys,
    satisfies,
)
from .reduce_order import (
    minimal_groupby,
    ordering_satisfies,
    ordering_satisfies_fd,
    reduce_order_exact,
    reduce_order_fd,
    reduce_order_od,
    stream_groupable,
)
from .rewrites import DateRewrite, apply_date_rewrite, push_filters

__all__ = [
    "Planner",
    "PlanInfo",
    "Desired",
    "OrderSpec",
    "PhysicalProperty",
    "EMPTY_SPEC",
    "EMPTY_PROPERTY",
    "satisfies",
    "groupable",
    "reduce_keys",
    "column_equivalent",
    "exchange_kind",
    "reduce_order_fd",
    "reduce_order_od",
    "reduce_order_exact",
    "ordering_satisfies",
    "ordering_satisfies_fd",
    "stream_groupable",
    "minimal_groupby",
    "apply_date_rewrite",
    "push_filters",
    "DateRewrite",
    "build_theory",
    "clear_theory_cache",
    "qualify_statement",
    "PlanCache",
    "PlanCacheEntry",
    "canonical_tuple",
    "fingerprint",
    "estimate_plan",
    "PlanEstimate",
    "BaseRelation",
    "JoinEdge",
    "JoinGraph",
    "extract_join_graph",
    "DP_MAX_RELATIONS",
    "JoinOrderDecision",
    "JoinOrderResult",
    "search_join_order",
]

"""OD-aware query optimization: rewrites, order reduction, planning.

The application layer of the reproduction — the techniques Sections 1–2 of
the paper motivate, built on the theory core:

* :mod:`repro.optimizer.reduce_order` — ReduceOrder ([17]) vs ReduceOrder++;
* :mod:`repro.optimizer.rewrites` — predicate pushdown + the date-dimension
  surrogate-key join elimination ([18] / Section 2.3);
* :mod:`repro.optimizer.planner` — physical planning in ``naive`` / ``fd`` /
  ``od`` modes;
* :mod:`repro.optimizer.context` — query-scoped dependency theories.
"""
from .context import build_theory, qualify_statement
from .costing import PlanEstimate, estimate_plan
from .planner import Desired, Planner, PlanInfo
from .reduce_order import (
    minimal_groupby,
    ordering_satisfies,
    ordering_satisfies_fd,
    reduce_order_exact,
    reduce_order_fd,
    reduce_order_od,
    stream_groupable,
)
from .rewrites import DateRewrite, apply_date_rewrite, push_filters

__all__ = [
    "Planner",
    "PlanInfo",
    "Desired",
    "reduce_order_fd",
    "reduce_order_od",
    "reduce_order_exact",
    "ordering_satisfies",
    "ordering_satisfies_fd",
    "stream_groupable",
    "minimal_groupby",
    "apply_date_rewrite",
    "push_filters",
    "DateRewrite",
    "build_theory",
    "qualify_statement",
    "estimate_plan",
    "PlanEstimate",
]

"""Query-scoped dependency theories.

Rewrite decisions are implication questions against an
:class:`~repro.core.inference.ODTheory` assembled from everything the
optimizer knows about the tuple stream at a plan node:

* each table's **declared constraints** (ODs / FDs / equivalences), with
  attribute names qualified by the scan alias (``month`` → ``d.month``);
* **join equalities** — after an equi-join on ``f.sk = d.sk`` the two
  columns are order-equivalent (and functionally interchangeable) in the
  output stream;
* **constant bindings** — a conjunct ``d.year = 2000`` makes ``d.year`` a
  constant downstream (``[] ↦ [d.year]``), which both reductions exploit.

All three statement families are *pairwise* properties, so they keep holding
for the multiset of output tuples of filters and joins — the soundness
argument for using the oracle on derived streams.
"""
from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.attrs import EMPTY, AttrList
from ..core.dependency import (
    FunctionalDependency,
    OrderCompatibility,
    OrderDependency,
    OrderEquivalence,
    Statement,
)
from ..core.inference import ODTheory
from ..engine.epoch import current_epoch

__all__ = [
    "qualify_statement",
    "alias_constraints",
    "join_equivalence",
    "constant_statement",
    "build_theory",
    "clear_theory_cache",
    "theory_cache_len",
    "theory_cache_stats",
]


def _qualify_list(attrs: AttrList, alias: str) -> AttrList:
    return AttrList(f"{alias}.{name}" for name in attrs)


def qualify_statement(statement: Statement, alias: str) -> Statement:
    """Rename a table-level statement into a scan's qualified namespace."""
    if isinstance(statement, OrderDependency):
        return OrderDependency(
            _qualify_list(statement.lhs, alias), _qualify_list(statement.rhs, alias)
        )
    if isinstance(statement, OrderEquivalence):
        return OrderEquivalence(
            _qualify_list(statement.lhs, alias), _qualify_list(statement.rhs, alias)
        )
    if isinstance(statement, OrderCompatibility):
        return OrderCompatibility(
            _qualify_list(statement.lhs, alias), _qualify_list(statement.rhs, alias)
        )
    if isinstance(statement, FunctionalDependency):
        return FunctionalDependency(
            tuple(f"{alias}.{name}" for name in statement.lhs),
            tuple(f"{alias}.{name}" for name in statement.rhs),
        )
    raise TypeError(f"cannot qualify {statement!r}")


def alias_constraints(database, alias: str, table_name: str) -> List[Statement]:
    """Every declared constraint of the table, qualified by the alias."""
    return [
        qualify_statement(statement, alias)
        for statement in database.constraints_on(table_name)
    ]


def join_equivalence(left_column: str, right_column: str) -> Statement:
    """``[l] ↔ [r]``: equi-joined columns are equal row-by-row, hence
    order-equivalent in the join output."""
    return OrderEquivalence(AttrList([left_column]), AttrList([right_column]))


def constant_statement(column: str) -> Statement:
    """``[] ↦ [col]``: the column is pinned to a single value downstream."""
    return OrderDependency(EMPTY, AttrList([column]))


#: Interned theories keyed on (catalog epoch, exact statement tuple),
#: LRU-bounded.  Repeated plannings of the same query template assemble
#: identical statement lists, so they get the *same* ``ODTheory`` instance
#: back — and with it the theory's memoized implication results.  The
#: epoch component (see :mod:`repro.engine.epoch`) is the invalidation
#: hook: after any catalog/constraint/data mutation the old keys can never
#: match again, so a post-mutation planning assembles a fresh theory and
#: the theory cache can't disagree with the plan cache about staleness.
#: Pre-mutation entries age out through the LRU bound.
_THEORY_CACHE_SIZE = 256
_theory_cache: "OrderedDict[tuple, ODTheory]" = OrderedDict()


def build_theory(statements: Iterable[Statement], reuse: bool = True) -> ODTheory:
    """Assemble the query-scoped theory (bounded for big schemas).

    ``reuse=True`` (the default) interns theories by (epoch, statement
    tuple) so the oracle's result cache survives across queries but never
    across a catalog/constraint change; pass ``reuse=False`` for a fresh,
    isolated instance (tests, one-off analyses).
    """
    statements = tuple(statements)
    if not reuse:
        return ODTheory(statements, max_attributes=20)
    key = (current_epoch(), statements)
    theory = _theory_cache.get(key)
    if theory is None:
        theory = ODTheory(statements, max_attributes=20)
        _theory_cache[key] = theory
    else:
        _theory_cache.move_to_end(key)
    while len(_theory_cache) > _THEORY_CACHE_SIZE:
        _theory_cache.popitem(last=False)
    return theory


def clear_theory_cache() -> None:
    """Drop every interned theory (benchmarks use this for cold starts)."""
    _theory_cache.clear()


def theory_cache_len() -> int:
    return len(_theory_cache)


def theory_cache_stats() -> dict:
    """Point-in-time oracle-cache reading for ``Database.stats_snapshot``.

    Everything here is a **gauge**, not a monotonic counter: ``size`` is
    the live LRU occupancy and the oracle-work keys are summed over the
    *currently interned* theories only — evicted theories take their
    counts with them.  (The per-plan monotonic view lives on
    ``PlanInfo.oracle``, diffed around each planning.)
    """
    stats: dict = {
        "size": len(_theory_cache),
        "capacity": _THEORY_CACHE_SIZE,
        "implies_calls": 0,
        "fast_path": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "enumerations": 0,
    }
    for theory in _theory_cache.values():
        counters = theory.stats()
        for key in (
            "implies_calls",
            "fast_path",
            "cache_hits",
            "cache_misses",
            "enumerations",
        ):
            stats[key] += counters[key]
    return stats

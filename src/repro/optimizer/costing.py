"""Plan cost estimation: cardinalities + the cost model over operator trees.

The planner itself is rule-based (the paper's rewrites are always-good when
their preconditions hold), but a cost estimate per plan is what a cost-based
optimizer would compare — and what the ablation benchmarks report alongside
measured work.  Estimates use per-table statistics (row counts, per-column
distinct counts and min/max) with textbook selectivity heuristics.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine.cost import Cost, hash_cost, probe_cost, scan_cost, sort_cost
from ..engine.expr import Between, BoolOp, Cmp, Col, Expr, InList, Lit, Not
from ..engine.operators import (
    Filter,
    HashAggregate,
    HashDistinct,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    Operator,
    Project,
    SeqScan,
    Sort,
    SortedDistinct,
    StreamAggregate,
    TopN,
)
from ..engine.stats import (
    DEFAULT_SELECTIVITY,
    ColumnStats,
    TableStats,
    equijoin_rows,
)
from .properties import OrderSpec

__all__ = ["PlanEstimate", "estimate_plan", "DEFAULT_SELECTIVITY"]


@dataclass(frozen=True)
class PlanEstimate:
    """Estimated output cardinality and cumulative cost of a subtree."""

    rows: float
    cost: Cost

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"≈{self.rows:,.0f} rows, {self.cost}"


def _column_stats(database, op, reference: str) -> Optional[ColumnStats]:
    """Stats for a (possibly qualified) column reference in a subtree.

    Walks down to the scan that owns the reference (its alias-qualified
    schema resolves it), so join-key and group-column NDVs are found
    through filters, projections, and join compositions — not just when
    the predicate sits directly above its scan.  Renamed/computed columns
    stop the search (``None``): no statistics beat wrong statistics.
    """
    table = getattr(op, "table", None)
    if table is not None:
        try:
            resolved = op.schema.resolve(reference)
        except (KeyError, ValueError):
            return None
        bare = resolved.split(".", 1)[-1]
        try:
            column = table.schema.resolve(bare)
        except (KeyError, ValueError):
            return None
        return database.stats(table.name).column(column)
    for child in op.children():
        found = _column_stats(database, child, reference)
        if found is not None:
            return found
    return None


def _predicate_selectivity(database, op, predicate: Expr) -> float:
    """Heuristic selectivity of a predicate evaluated right above ``op``."""
    if isinstance(predicate, Lit):
        return 1.0 if predicate.value else 0.0
    if isinstance(predicate, BoolOp):
        parts = [_predicate_selectivity(database, op, p) for p in predicate.operands]
        if predicate.op == "AND":
            out = 1.0
            for part in parts:
                out *= part
            return out
        out = 1.0
        for part in parts:
            out *= 1.0 - part
        return 1.0 - out
    if isinstance(predicate, Not):
        return 1.0 - _predicate_selectivity(database, op, predicate.operand)
    if isinstance(predicate, Between) and isinstance(predicate.operand, Col):
        stats = _column_stats(database, op, predicate.operand.name)
        if stats and isinstance(predicate.low, Lit) and isinstance(predicate.high, Lit):
            return stats.range_selectivity(predicate.low.value, predicate.high.value)
        return DEFAULT_SELECTIVITY
    if isinstance(predicate, InList) and isinstance(predicate.operand, Col):
        stats = _column_stats(database, op, predicate.operand.name)
        if stats:
            return min(1.0, len(predicate.values) * stats.equality_selectivity())
        return DEFAULT_SELECTIVITY
    if isinstance(predicate, Cmp):
        column = None
        if isinstance(predicate.left, Col) and isinstance(predicate.right, Lit):
            column, literal = predicate.left.name, predicate.right.value
        elif isinstance(predicate.right, Col) and isinstance(predicate.left, Lit):
            column, literal = predicate.right.name, predicate.left.value
        if column is not None:
            stats = _column_stats(database, op, column)
            if stats is not None:
                if predicate.op == "=":
                    return stats.equality_selectivity()
                if predicate.op in ("<", "<="):
                    return stats.range_selectivity(None, literal)
                if predicate.op in (">", ">="):
                    return stats.range_selectivity(literal, None)
                if predicate.op in ("<>", "!="):
                    return 1.0 - stats.equality_selectivity()
    return DEFAULT_SELECTIVITY


def _group_cardinality(database, op, child_rows: float) -> float:
    """Distinct-group estimate: capped product of per-column NDVs."""
    out = 1.0
    for column in op.group_columns:
        stats = _column_stats(database, op.child, column)
        out *= stats.distinct if stats else 10.0
        if out >= child_rows:
            return max(1.0, child_rows)
    return max(1.0, min(out, child_rows))


def estimate_plan(database, op: Operator) -> PlanEstimate:
    """Bottom-up cardinality + cost estimate for a physical plan."""
    if isinstance(op, SeqScan):
        rows = float(database.stats(op.table.name).row_count)
        return PlanEstimate(rows, scan_cost(rows))
    if isinstance(op, IndexScan):
        total = float(database.stats(op.table.name).row_count)
        selectivity = 1.0
        if op.low is not None or op.high is not None:
            first_key = op.index.key_columns[0]
            stats = database.stats(op.table.name).column(first_key)
            if stats is not None:
                low = op.low[0] if op.low else None
                high = op.high[0] if op.high else None
                selectivity = stats.range_selectivity(low, high)
        rows = max(1.0, total * selectivity)
        return PlanEstimate(rows, probe_cost(1) + scan_cost(rows))
    if isinstance(op, Filter):
        child = estimate_plan(database, op.child)
        selectivity = _predicate_selectivity(database, op.child, op.predicate)
        rows = max(0.0, child.rows * selectivity)
        return PlanEstimate(rows, child.cost + Cost(cpu=0.1 * child.rows))
    if isinstance(op, Project):
        child = estimate_plan(database, op.child)
        return PlanEstimate(child.rows, child.cost + Cost(cpu=0.05 * child.rows))
    if isinstance(op, Sort):
        child = estimate_plan(database, op.child)
        # Sort-avoidance priced from declared properties: when the child
        # already provides the key order, the sort degenerates to a verify
        # pass (the planner normally erases such sorts outright; a surviving
        # one must not be billed the n·log n it will never pay).
        if OrderSpec(op.child.ordering).starts_with(op.keys):
            return PlanEstimate(child.rows, child.cost + Cost(cpu=0.1 * child.rows))
        return PlanEstimate(child.rows, child.cost + sort_cost(child.rows))
    if isinstance(op, TopN):
        child = estimate_plan(database, op.child)
        kept = min(child.rows, float(op.count))
        if OrderSpec(op.child.ordering).starts_with(op.keys):
            extra = Cost(cpu=0.1 * child.rows)  # ordered input: plain limit
        else:
            # bounded heap: one touch per row plus a sort of the survivors
            extra = Cost(cpu=0.2 * child.rows) + sort_cost(kept)
        return PlanEstimate(kept, child.cost + extra)
    if isinstance(op, (HashAggregate, StreamAggregate)):
        child = estimate_plan(database, op.child)
        groups = (
            _group_cardinality(database, op, child.rows)
            if op.group_columns
            else 1.0
        )
        if isinstance(op, HashAggregate):
            extra = hash_cost(child.rows, 0)
        else:
            extra = Cost(cpu=0.1 * child.rows)
        return PlanEstimate(groups, child.cost + extra)
    if isinstance(op, (HashJoin, MergeJoin, NestedLoopJoin)):
        left = estimate_plan(database, op.left)
        right = estimate_plan(database, op.right)
        # NDV-based equi-join cardinality (containment assumption); key
        # pairs without statistics fall back to the max-side denominator
        # inside equijoin_rows.
        key_ndvs = []
        for left_key, right_key in zip(op.left_keys, op.right_keys):
            left_stats = _column_stats(database, op.left, left_key)
            right_stats = _column_stats(database, op.right, right_key)
            key_ndvs.append(
                (
                    left_stats.distinct if left_stats is not None else None,
                    right_stats.distinct if right_stats is not None else None,
                )
            )
        rows = equijoin_rows(left.rows, right.rows, key_ndvs)
        if isinstance(op, HashJoin):
            extra = hash_cost(right.rows, left.rows)
        elif isinstance(op, MergeJoin):
            extra = Cost(cpu=0.2 * (left.rows + right.rows))
        else:
            extra = Cost(cpu=0.5 * left.rows * right.rows)
        return PlanEstimate(rows, left.cost + right.cost + extra)
    if isinstance(op, HashDistinct):
        child = estimate_plan(database, op.child)
        return PlanEstimate(
            max(1.0, child.rows * 0.5), child.cost + hash_cost(child.rows, 0)
        )
    if isinstance(op, SortedDistinct):
        child = estimate_plan(database, op.child)
        return PlanEstimate(
            max(1.0, child.rows * 0.5), child.cost + Cost(cpu=0.1 * child.rows)
        )
    if isinstance(op, Limit):
        child = estimate_plan(database, op.child)
        return PlanEstimate(min(child.rows, float(op.count)), child.cost)
    raise TypeError(f"cannot estimate {type(op).__name__}")

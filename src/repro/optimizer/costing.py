"""Plan cost estimation: cardinalities + the cost model over operator trees.

The planner itself is rule-based (the paper's rewrites are always-good when
their preconditions hold), but a cost estimate per plan is what a cost-based
optimizer would compare — and what the ablation benchmarks report alongside
measured work.  Estimates use per-table statistics (row counts, per-column
distinct counts and min/max) with textbook selectivity heuristics.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine.cost import Cost, hash_cost, probe_cost, scan_cost, sort_cost
from ..engine.expr import Between, BoolOp, Cmp, Col, Expr, InList, Lit, Not
from ..engine.operators import (
    Filter,
    HashAggregate,
    HashDistinct,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    Operator,
    Project,
    SeqScan,
    Sort,
    SortedDistinct,
    StreamAggregate,
    TopN,
)
from ..engine.stats import (
    DEFAULT_SELECTIVITY,
    ColumnStats,
    JoinKeyStats,
    TableStats,
    estimate_equijoin,
)
from .properties import OrderSpec

__all__ = [
    "PlanEstimate",
    "estimate_plan",
    "join_key_stats",
    "DEFAULT_SELECTIVITY",
]


@dataclass(frozen=True)
class PlanEstimate:
    """Estimated output cardinality and cumulative cost of a subtree."""

    rows: float
    cost: Cost

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"≈{self.rows:,.0f} rows, {self.cost}"


def _column_stats(database, op, reference: str) -> Optional[ColumnStats]:
    """Stats for a (possibly qualified) column reference in a subtree.

    Walks down to the scan that owns the reference (its alias-qualified
    schema resolves it), so join-key and group-column NDVs are found
    through filters, projections, and join compositions — not just when
    the predicate sits directly above its scan.  Renamed/computed columns
    stop the search (``None``): no statistics beat wrong statistics.
    """
    table = getattr(op, "table", None)
    if table is not None:
        try:
            resolved = op.schema.resolve(reference)
        except (KeyError, ValueError):
            return None
        bare = resolved.split(".", 1)[-1]
        try:
            column = table.schema.resolve(bare)
        except (KeyError, ValueError):
            return None
        return database.stats(table.name).column(column)
    for child in op.children():
        found = _column_stats(database, child, reference)
        if found is not None:
            return found
    return None


def _predicate_selectivity(database, op, predicate: Expr) -> float:
    """Heuristic selectivity of a predicate evaluated right above ``op``."""
    if isinstance(predicate, Lit):
        return 1.0 if predicate.value else 0.0
    if isinstance(predicate, BoolOp):
        parts = [_predicate_selectivity(database, op, p) for p in predicate.operands]
        if predicate.op == "AND":
            out = 1.0
            for part in parts:
                out *= part
            return out
        out = 1.0
        for part in parts:
            out *= 1.0 - part
        return 1.0 - out
    if isinstance(predicate, Not):
        return 1.0 - _predicate_selectivity(database, op, predicate.operand)
    if isinstance(predicate, Between) and isinstance(predicate.operand, Col):
        stats = _column_stats(database, op, predicate.operand.name)
        if stats and isinstance(predicate.low, Lit) and isinstance(predicate.high, Lit):
            return stats.range_selectivity(predicate.low.value, predicate.high.value)
        return DEFAULT_SELECTIVITY
    if isinstance(predicate, InList) and isinstance(predicate.operand, Col):
        stats = _column_stats(database, op, predicate.operand.name)
        if stats:
            # Per-value equality mass (histogram-aware: a list of heavy
            # hitters is not the same as a list of tail values).
            return min(
                1.0,
                sum(stats.equality_selectivity(v) for v in predicate.values),
            )
        return DEFAULT_SELECTIVITY
    if isinstance(predicate, Cmp):
        column = None
        if isinstance(predicate.left, Col) and isinstance(predicate.right, Lit):
            column, literal = predicate.left.name, predicate.right.value
        elif isinstance(predicate.right, Col) and isinstance(predicate.left, Lit):
            column, literal = predicate.right.name, predicate.left.value
        if column is not None:
            stats = _column_stats(database, op, column)
            if stats is not None:
                if predicate.op == "=":
                    return stats.equality_selectivity(literal)
                if predicate.op in ("<", "<="):
                    return stats.range_selectivity(
                        None, literal, high_inclusive=(predicate.op == "<=")
                    )
                if predicate.op in (">", ">="):
                    return stats.range_selectivity(
                        literal, None, low_inclusive=(predicate.op == ">=")
                    )
                if predicate.op in ("<>", "!="):
                    return 1.0 - stats.equality_selectivity(literal)
    return DEFAULT_SELECTIVITY


def _covered_by_scan(scan, predicate: Expr) -> bool:
    """True when an index scan already applied this range predicate.

    The access-path rewrite keeps the originating range predicate as a
    residual filter above the :class:`IndexScan` for safety; estimating
    it again would square the selectivity (a ``BETWEEN`` over 3% of the
    key domain used to estimate 0.09% of the rows).  Conservative match:
    a single-column scan range on the leading key whose bounds equal the
    predicate's literals.
    """
    if not isinstance(scan, IndexScan) or not scan.index.key_columns:
        return False
    key = scan.index.key_columns[0]
    low = scan.low[0] if scan.low and len(scan.low) == 1 else None
    high = scan.high[0] if scan.high and len(scan.high) == 1 else None

    def _is_key(col: Expr) -> bool:
        if not isinstance(col, Col):
            return False
        try:
            return scan.schema.resolve(col.name).split(".", 1)[-1] == key
        except (KeyError, ValueError):
            return False

    if isinstance(predicate, Between):
        return (
            _is_key(predicate.operand)
            and isinstance(predicate.low, Lit)
            and isinstance(predicate.high, Lit)
            and predicate.low.value == low
            and predicate.high.value == high
        )
    if isinstance(predicate, Cmp) and isinstance(predicate.right, Lit):
        if not _is_key(predicate.left):
            return False
        if predicate.op == "=":
            return predicate.right.value == low and low == high
        if predicate.op in (">=", ">"):
            return predicate.right.value == low and high is None
        if predicate.op in ("<=", "<"):
            return predicate.right.value == high and low is None
    return False


def _filter_selectivity(database, op) -> float:
    """Selectivity of a Filter's predicate, skipping conjuncts the child
    index scan already applied (see :func:`_covered_by_scan`)."""
    predicate = op.predicate
    child = op.child
    conjuncts = (
        list(predicate.operands)
        if isinstance(predicate, BoolOp) and predicate.op == "AND"
        else [predicate]
    )
    out = 1.0
    for conjunct in conjuncts:
        if _covered_by_scan(child, conjunct):
            continue
        out *= _predicate_selectivity(database, child, conjunct)
    return out


def join_key_stats(database, op) -> list:
    """Per-key-pair :class:`JoinKeyStats` for a physical join operator.

    Shared by :func:`estimate_plan` and the join-order search so both
    read the same column profiles (histogram, sketch, keyness,
    OD-orderedness) when pricing a join.
    """
    pairs = []
    for left_key, right_key in zip(op.left_keys, op.right_keys):
        pairs.append(
            JoinKeyStats(
                left=_column_stats(database, op.left, left_key),
                right=_column_stats(database, op.right, right_key),
            )
        )
    return pairs


def _group_cardinality(database, op, child_rows: float) -> float:
    """Distinct-group estimate: capped product of per-column NDVs."""
    out = 1.0
    for column in op.group_columns:
        stats = _column_stats(database, op.child, column)
        out *= stats.distinct if stats else 10.0
        if out >= child_rows:
            return max(1.0, child_rows)
    return max(1.0, min(out, child_rows))


def estimate_plan(database, op: Operator) -> PlanEstimate:
    """Bottom-up cardinality + cost estimate for a physical plan."""
    if isinstance(op, SeqScan):
        rows = float(database.stats(op.table.name).row_count)
        return PlanEstimate(rows, scan_cost(rows))
    if isinstance(op, IndexScan):
        total = float(database.stats(op.table.name).row_count)
        selectivity = 1.0
        if op.low is not None or op.high is not None:
            first_key = op.index.key_columns[0]
            stats = database.stats(op.table.name).column(first_key)
            if stats is not None:
                low = op.low[0] if op.low else None
                high = op.high[0] if op.high else None
                selectivity = stats.range_selectivity(low, high)
        rows = max(1.0, total * selectivity)
        return PlanEstimate(rows, probe_cost(1) + scan_cost(rows))
    if isinstance(op, Filter):
        child = estimate_plan(database, op.child)
        selectivity = _filter_selectivity(database, op)
        # Reconciled with the ≥1-row floors used everywhere else: a
        # non-empty input never estimates below one surviving row (a
        # zero here would zero out every join subtree DP builds on top
        # of it), while a provably empty input stays 0.
        rows = child.rows * selectivity
        rows = 0.0 if child.rows <= 0 else min(child.rows, max(1.0, rows))
        return PlanEstimate(rows, child.cost + Cost(cpu=0.1 * child.rows))
    if isinstance(op, Project):
        child = estimate_plan(database, op.child)
        return PlanEstimate(child.rows, child.cost + Cost(cpu=0.05 * child.rows))
    if isinstance(op, Sort):
        child = estimate_plan(database, op.child)
        # Sort-avoidance priced from declared properties: when the child
        # already provides the key order, the sort degenerates to a verify
        # pass (the planner normally erases such sorts outright; a surviving
        # one must not be billed the n·log n it will never pay).
        if OrderSpec(op.child.ordering).starts_with(op.keys):
            return PlanEstimate(child.rows, child.cost + Cost(cpu=0.1 * child.rows))
        return PlanEstimate(child.rows, child.cost + sort_cost(child.rows))
    if isinstance(op, TopN):
        child = estimate_plan(database, op.child)
        kept = min(child.rows, float(op.count))
        if OrderSpec(op.child.ordering).starts_with(op.keys):
            extra = Cost(cpu=0.1 * child.rows)  # ordered input: plain limit
        else:
            # bounded heap: one touch per row plus a sort of the survivors
            extra = Cost(cpu=0.2 * child.rows) + sort_cost(kept)
        return PlanEstimate(kept, child.cost + extra)
    if isinstance(op, (HashAggregate, StreamAggregate)):
        child = estimate_plan(database, op.child)
        groups = (
            _group_cardinality(database, op, child.rows)
            if op.group_columns
            else 1.0
        )
        if isinstance(op, HashAggregate):
            extra = hash_cost(child.rows, 0)
        else:
            extra = Cost(cpu=0.1 * child.rows)
        return PlanEstimate(groups, child.cost + extra)
    if isinstance(op, (HashJoin, MergeJoin, NestedLoopJoin)):
        left = estimate_plan(database, op.left)
        right = estimate_plan(database, op.right)
        # FD/OD-aware equi-join cardinality: histogram merge-overlap for
        # OD-ordered keys, sketch-measured domain intersection, key caps
        # from the declared FDs — with NDV-under-containment as the
        # fallback (and the whole model in "uniform" estimation mode).
        rows = estimate_equijoin(
            left.rows, right.rows, join_key_stats(database, op)
        )
        if isinstance(op, HashJoin):
            extra = hash_cost(right.rows, left.rows)
        elif isinstance(op, MergeJoin):
            extra = Cost(cpu=0.2 * (left.rows + right.rows))
        else:
            extra = Cost(cpu=0.5 * left.rows * right.rows)
        return PlanEstimate(rows, left.cost + right.cost + extra)
    if isinstance(op, HashDistinct):
        child = estimate_plan(database, op.child)
        return PlanEstimate(
            max(1.0, child.rows * 0.5), child.cost + hash_cost(child.rows, 0)
        )
    if isinstance(op, SortedDistinct):
        child = estimate_plan(database, op.child)
        return PlanEstimate(
            max(1.0, child.rows * 0.5), child.cost + Cost(cpu=0.1 * child.rows)
        )
    if isinstance(op, Limit):
        child = estimate_plan(database, op.child)
        return PlanEstimate(min(child.rows, float(op.count)), child.cost)
    raise TypeError(f"cannot estimate {type(op).__name__}")

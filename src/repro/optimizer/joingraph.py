"""Join-graph extraction: the input to cost-based join ordering.

A bound, pushed-down logical join block is a tree of
:class:`~repro.engine.logical.LogicalJoin` nodes whose leaves are base
scans (optionally under a pushed-down single-alias filter).  This module
flattens that tree into the form a join-ordering search consumes:

* :class:`BaseRelation` — one per scan leaf: alias, table, and the local
  predicate :func:`~repro.optimizer.rewrites.push_filters` parked on it;
* :class:`JoinEdge` — one per equi-join conjunct, with both columns
  fully qualified and attributed to their owning aliases.

Extraction is deliberately conservative: any shape the search could not
reassemble faithfully — a non-scan leaf, an unresolvable or same-alias
join column, a repeated alias, a disconnected graph — yields ``None``
and the planner keeps the syntactic order.  The binder only produces
left-deep equi-join blocks today, so in practice every multi-join query
extracts; the guards are for future rewrites that may not.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional

from ..engine.expr import Expr
from ..engine.logical import LogicalFilter, LogicalJoin, LogicalNode, LogicalScan

__all__ = ["BaseRelation", "JoinEdge", "JoinGraph", "extract_join_graph"]


@dataclass(frozen=True)
class BaseRelation:
    """One scan leaf of a join block."""

    alias: str
    table: str
    #: The pushed-down local predicate (``None`` when unfiltered).
    predicate: Optional[Expr]


@dataclass(frozen=True)
class JoinEdge:
    """One equi-join conjunct, columns qualified and owner-attributed."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    def connects(self, group_a: FrozenSet[str], group_b: FrozenSet[str]) -> bool:
        """Does this edge join a relation of ``group_a`` to one of ``group_b``?"""
        return (self.left_alias in group_a and self.right_alias in group_b) or (
            self.left_alias in group_b and self.right_alias in group_a
        )


@dataclass
class JoinGraph:
    """Relations (in syntactic order) plus equi-join edges."""

    relations: List[BaseRelation]
    edges: List[JoinEdge]

    def aliases(self) -> FrozenSet[str]:
        return frozenset(relation.alias for relation in self.relations)

    def edges_between(
        self, group_a: Iterable[str], group_b: Iterable[str]
    ) -> List[JoinEdge]:
        """Every edge with one endpoint in each group (either direction)."""
        group_a, group_b = frozenset(group_a), frozenset(group_b)
        return [edge for edge in self.edges if edge.connects(group_a, group_b)]

    def is_connected(self) -> bool:
        """Is every relation reachable from the first through edges?"""
        if not self.relations:
            return False
        reached = {self.relations[0].alias}
        frontier = [self.relations[0].alias]
        neighbors = {relation.alias: set() for relation in self.relations}
        for edge in self.edges:
            neighbors[edge.left_alias].add(edge.right_alias)
            neighbors[edge.right_alias].add(edge.left_alias)
        while frontier:
            alias = frontier.pop()
            for neighbor in neighbors[alias]:
                if neighbor not in reached:
                    reached.add(neighbor)
                    frontier.append(neighbor)
        return len(reached) == len(self.relations)

    def syntactic_label(self) -> str:
        """The parse (left-deep) order as a readable join expression."""
        label = self.relations[0].alias
        for relation in self.relations[1:]:
            label = f"({label} ⋈ {relation.alias})"
        return label


def extract_join_graph(node: LogicalNode, resolver) -> Optional[JoinGraph]:
    """Flatten a join block into a :class:`JoinGraph`, or ``None`` if any
    part of it is a shape the search could not faithfully reassemble."""
    if not isinstance(node, LogicalJoin):
        return None
    relations: List[BaseRelation] = []
    edges: List[JoinEdge] = []
    if not _collect(node, relations, edges, resolver):
        return None
    if len(relations) < 2 or not edges:
        return None
    aliases = [relation.alias for relation in relations]
    if len(set(aliases)) != len(aliases):
        return None
    graph = JoinGraph(relations, edges)
    if not graph.is_connected():
        return None
    return graph


def _collect(
    node: LogicalNode,
    relations: List[BaseRelation],
    edges: List[JoinEdge],
    resolver,
) -> bool:
    if isinstance(node, LogicalJoin):
        if not _collect(node.left, relations, edges, resolver):
            return False
        if not _collect(node.right, relations, edges, resolver):
            return False
        for left, right in zip(node.left_columns, node.right_columns):
            try:
                left_q = resolver.qualify(left)
                right_q = resolver.qualify(right)
            except (KeyError, ValueError):
                return False
            left_alias = left_q.split(".", 1)[0]
            right_alias = right_q.split(".", 1)[0]
            if left_alias == right_alias:
                return False  # self-conjunct: a filter, not a join edge
            edges.append(JoinEdge(left_alias, left_q, right_alias, right_q))
        return True
    predicate: Optional[Expr] = None
    if isinstance(node, LogicalFilter) and isinstance(node.child, LogicalScan):
        predicate, node = node.predicate, node.child
    if isinstance(node, LogicalScan):
        relations.append(BaseRelation(node.alias, node.table, predicate))
        return True
    return False

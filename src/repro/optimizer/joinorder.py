"""Cost-based join ordering with OD-aware interesting orders.

Classic System-R join ordering enumerates join orders bottom-up, keeping
per relation-subset not just the cheapest subplan but one per
*interesting order* — an order some downstream consumer (a merge join, a
stream aggregate, the final ORDER BY) could exploit.  The paper's OD
oracle generalizes when an order is interesting: a subplan's provided
:class:`~repro.optimizer.properties.OrderSpec` counts for an interesting
order whenever the constraint theory *implies* the prefix the consumer
needs, not only when the columns match positionally.  Two provided
orders the theory proves interchangeable therefore satisfy the same
interesting orders, land in the same frontier class, and merge (the
cheaper survives) — OD-implied orders are covered without being
enumerated separately, the [Ngo et al., PAPERS.md] FD-pruning idea lifted
to ODs.

The search itself:

* **DPsize** (:func:`_dp_search`) for blocks of at most
  :data:`DP_MAX_RELATIONS` relations: enumerate connected subsets by
  increasing size, combining every connected disjoint split, both
  probe/build directions, with a merge join whenever both sides' declared
  orders provably satisfy their join keys.
* **Greedy** (:func:`_greedy_search`) above that: repeatedly merge the
  pair of connected components whose best join is cheapest (GOO-style),
  carrying the same Pareto frontiers.

Each frontier entry is a real physical subplan costed by
:func:`~repro.optimizer.costing.estimate_plan` (NDV-based equi-join
cardinalities under the containment assumption).  Entries are pruned by
dominance: an entry dies when another satisfies at least the same
interesting orders at no greater cost.  Final selection adds *completion
penalties* — a sort the consumer would need if the entry's order does not
satisfy the desired one, a hash pass if its order cannot stream-group the
desired partition — so an order-providing plan wins exactly when the sort
it saves is worth more than the cost difference.

The planner (:meth:`repro.optimizer.planner.Planner._plan_join`) runs
this search for ``join_order="cost"`` (the default) and falls back to
the parse order when extraction fails or the search finds nothing
cheaper; EXPLAIN reports the chosen order, its estimate, and the
syntactic estimate it beat.
"""
from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..engine.cost import Cost, hash_cost, sort_cost
from ..engine.expr import Col
from ..engine.logical import LogicalJoin
from ..engine.operators import (
    Filter,
    IndexScan,
    MergeJoin,
    Operator,
    Project,
    SeqScan,
)
from ..engine.stats import estimate_equijoin
from .context import alias_constraints
from .costing import PlanEstimate, _column_stats, estimate_plan, join_key_stats
from .joingraph import BaseRelation, JoinEdge, JoinGraph, extract_join_graph
from .properties import PhysicalProperty
from .rewrites import split_conjuncts

__all__ = [
    "DP_MAX_RELATIONS",
    "JoinOrderDecision",
    "JoinOrderResult",
    "search_join_order",
]

#: Largest join block the exact DP enumerates; bigger blocks go greedy.
DP_MAX_RELATIONS = 8

#: Defensive cap on frontier width per subset (dominance pruning usually
#: keeps far fewer; the cap bounds the worst case on dense graphs).
MAX_FRONTIER = 6

#: Relative completed-cost improvement the search must find before it
#: replaces the parse order.  Estimates are heuristics: a noise-level win
#: (swapping two six-row dimensions) is not worth the plan churn, and
#: ties must never flip on tie-break order.
MIN_IMPROVEMENT = 1e-3


@dataclass(frozen=True)
class _Interest:
    """One interesting order: a consumer could exploit these columns
    either as a sort prefix (``"order"``) or as contiguous groups
    (``"partition"``)."""

    kind: str  # "order" | "partition"
    columns: Tuple[str, ...]


@dataclass
class _Entry:
    """One Pareto-frontier member: a physical subplan over ``aliases``."""

    op: Operator
    statements: list
    prop: PhysicalProperty
    estimate: PlanEstimate
    aliases: FrozenSet[str]
    label: str
    satisfied: FrozenSet[_Interest]

    @property
    def cost(self) -> float:
        return self.estimate.cost.total


@dataclass(frozen=True)
class JoinOrderDecision:
    """The EXPLAIN record of one join-ordering decision.

    Costs are *completed* costs — subtree estimate plus the downstream
    sort/grouping the consumer would still pay — because that is the
    number the selection actually compared; raw subtree costs could show
    the chosen order "losing" a comparison it won on sort avoidance.
    """

    algorithm: str  # "dp" | "greedy"
    relations: int
    chosen: str
    chosen_rows: float
    chosen_cost: float
    syntactic: str
    syntactic_cost: float

    def describe(self) -> str:
        report = (
            f"cost-based ({self.algorithm} over {self.relations} relations) "
            f"chose {self.chosen} — est ≈{self.chosen_rows:,.0f} rows, "
            f"completed cost {self.chosen_cost:.1f}"
        )
        if self.chosen == self.syntactic:
            return f"{report} (the syntactic order)"
        return (
            f"{report}; syntactic {self.syntactic} "
            f"completed cost {self.syntactic_cost:.1f}"
        )


@dataclass
class JoinOrderResult:
    """What the planner threads back into its tree: the planned subtree
    plus the decision record for EXPLAIN."""

    planned: object  # planner._Planned
    record: JoinOrderDecision


# ----------------------------------------------------------------------
# Interesting orders and satisfaction classes
# ----------------------------------------------------------------------
def _interesting_orders(planner, graph: JoinGraph, desired) -> Tuple[_Interest, ...]:
    """The query's interesting orders: the consumer's desired order and
    grouping, plus every join-key column (a merge join's appetite)."""
    interests = []
    if desired.order:
        interests.append(_Interest("order", planner._try_qualify(desired.order)))
    if desired.partition:
        interests.append(
            _Interest("partition", planner._try_qualify(desired.partition))
        )
    for edge in graph.edges:
        interests.append(_Interest("order", (edge.left_column,)))
        interests.append(_Interest("order", (edge.right_column,)))
    # Deterministic, duplicate-free ordering (dict preserves insertion).
    return tuple(dict.fromkeys(interests))


def _satisfied(planner, op, statements, prop, interests) -> FrozenSet[_Interest]:
    """Which interesting orders this subplan's declared property covers.

    Satisfaction goes through the planner's mode-dispatched oracle layer,
    so in ``od`` mode an OD-implied order counts — this is where
    order-equivalent frontier entries collapse into one class.
    """
    out = []
    for interest in interests:
        try:
            resolved = tuple(op.schema.resolve(c) for c in interest.columns)
        except (KeyError, ValueError):
            continue  # not this subplan's columns
        if interest.kind == "order":
            ok = planner._order_ok(statements, prop.order, resolved)
        else:
            ok = planner._partition_ok(statements, prop.order, resolved)
        if ok:
            out.append(interest)
    return frozenset(out)


def _prune(entries: List[_Entry]) -> List[_Entry]:
    """Dominance pruning: drop entries another entry beats on both cost
    and satisfied interesting orders; cap the frontier width."""
    entries.sort(key=lambda entry: (entry.cost, entry.label))
    kept: List[_Entry] = []
    for entry in entries:
        if any(
            keeper.satisfied >= entry.satisfied and keeper.cost <= entry.cost
            for keeper in kept
        ):
            continue
        kept.append(entry)
    return kept[:MAX_FRONTIER]


# ----------------------------------------------------------------------
# Leaf access paths
# ----------------------------------------------------------------------
def _leaf_candidates(
    planner, relation: BaseRelation, interests
) -> List[_Entry]:
    """Access paths for one base relation: the sequential scan plus one
    candidate per index (sargable bounds from the local predicate when
    available, full range otherwise — kept for its order class)."""
    from .planner import _sargable_bounds  # deferred: planner loads first

    database = planner.database
    table = database.table(relation.table)
    statements = alias_constraints(database, relation.alias, relation.table)
    conjuncts = (
        split_conjuncts(relation.predicate)
        if relation.predicate is not None
        else []
    )
    statements = statements + planner._constant_statements(
        relation.alias, conjuncts
    )

    ops: List[Operator] = [SeqScan(table, relation.alias)]
    for index in database.indexes_on(relation.table):
        low, high, _width = _sargable_bounds(
            index.key_columns, relation.alias, conjuncts, planner.resolver
        )
        ops.append(IndexScan(index, relation.alias, low, high))
    entries: List[_Entry] = []
    aliases = frozenset({relation.alias})
    for op in ops:
        if relation.predicate is not None:
            op = Filter(op, relation.predicate)
        prop = PhysicalProperty(op.provides())
        entries.append(
            _Entry(
                op=op,
                statements=list(statements),
                prop=prop,
                estimate=estimate_plan(database, op),
                aliases=aliases,
                label=relation.alias,
                satisfied=_satisfied(planner, op, statements, prop, interests),
            )
        )
    return _prune(entries)


# ----------------------------------------------------------------------
# Joining two frontier entries
# ----------------------------------------------------------------------
def _join_estimate(
    database, op: Operator, probe_est: PlanEstimate, build_est: PlanEstimate
) -> PlanEstimate:
    """Incremental join estimate: the children's estimates already live
    on the frontier entries, so only the join's own arm is computed —
    the same FD/OD-aware cardinality model and extra cost as
    ``estimate_plan``'s join case (which re-estimation of every
    candidate's whole subtree would duplicate at super-linear search
    cost), via the shared ``join_key_stats`` profile lookup."""
    rows = estimate_equijoin(
        probe_est.rows, build_est.rows, join_key_stats(database, op)
    )
    if isinstance(op, MergeJoin):
        extra = Cost(cpu=0.2 * (probe_est.rows + build_est.rows))
    else:  # HashJoin: the build side is the right input
        extra = hash_cost(build_est.rows, probe_est.rows)
    return PlanEstimate(rows, probe_est.cost + build_est.cost + extra)


def _join_entries(
    planner,
    probe: _Entry,
    build: _Entry,
    cross_edges: Sequence[JoinEdge],
    interests,
) -> _Entry:
    """Join two subplans with ``probe`` as the (order-preserving) left
    input, through the planner's shared join construction — the same
    merge-readiness gate and statement threading the syntactic path
    uses, so the two orderings can never diverge physically."""
    from .planner import _Planned  # deferred: planner loads first

    probe_keys: List[str] = []
    build_keys: List[str] = []
    for edge in cross_edges:
        if edge.left_alias in probe.aliases:
            probe_keys.append(edge.left_column)
            build_keys.append(edge.right_column)
        else:
            probe_keys.append(edge.right_column)
            build_keys.append(edge.left_column)
    planned = planner.join_planned(
        _Planned(probe.op, probe.statements, probe.prop),
        _Planned(build.op, build.statements, build.prop),
        probe_keys,
        build_keys,
    )
    return _Entry(
        op=planned.op,
        statements=planned.statements,
        prop=planned.prop,
        estimate=_join_estimate(
            planner.database, planned.op, probe.estimate, build.estimate
        ),
        aliases=probe.aliases | build.aliases,
        label=f"({probe.label} ⋈ {build.label})",
        satisfied=_satisfied(
            planner, planned.op, planned.statements, planned.prop, interests
        ),
    )


def _combine(
    planner,
    frontier_a: List[_Entry],
    frontier_b: List[_Entry],
    cross_edges: Sequence[JoinEdge],
    interests,
) -> List[_Entry]:
    """Every join of an entry from each frontier, in both directions."""
    out: List[_Entry] = []
    for entry_a in frontier_a:
        for entry_b in frontier_b:
            out.append(
                _join_entries(planner, entry_a, entry_b, cross_edges, interests)
            )
            out.append(
                _join_entries(planner, entry_b, entry_a, cross_edges, interests)
            )
    return out


# ----------------------------------------------------------------------
# Enumeration: exact DP (small blocks) and greedy (large blocks)
# ----------------------------------------------------------------------
def _dp_search(
    planner, graph: JoinGraph, interests
) -> Optional[List[_Entry]]:
    """DPsize over connected subsets, Pareto frontier per subset."""
    frontiers: Dict[FrozenSet[str], List[_Entry]] = {}
    subsets_by_size: Dict[int, List[FrozenSet[str]]] = {1: []}
    for relation in graph.relations:
        subset = frozenset({relation.alias})
        frontiers[subset] = _leaf_candidates(planner, relation, interests)
        subsets_by_size[1].append(subset)

    total = len(graph.relations)
    for size in range(2, total + 1):
        grown: Dict[FrozenSet[str], List[_Entry]] = {}
        for small in range(1, size // 2 + 1):
            large = size - small
            for subset_a in subsets_by_size.get(small, ()):
                for subset_b in subsets_by_size.get(large, ()):
                    if subset_a & subset_b:
                        continue
                    if small == large and sorted(subset_a) >= sorted(subset_b):
                        continue  # unordered pair: visit each split once
                    cross = graph.edges_between(subset_a, subset_b)
                    if not cross:
                        continue  # never introduce a cross product
                    grown.setdefault(subset_a | subset_b, []).extend(
                        _combine(
                            planner,
                            frontiers[subset_a],
                            frontiers[subset_b],
                            cross,
                            interests,
                        )
                    )
        subsets_by_size[size] = []
        for subset, entries in grown.items():
            frontiers[subset] = _prune(entries)
            subsets_by_size[size].append(subset)
    return frontiers.get(graph.aliases())


def _greedy_search(
    planner, graph: JoinGraph, interests
) -> Optional[List[_Entry]]:
    """GOO-style greedy: repeatedly merge the connected component pair
    whose cheapest join is globally cheapest, keeping frontiers."""
    components: Dict[FrozenSet[str], List[_Entry]] = {}
    for relation in graph.relations:
        components[frozenset({relation.alias})] = _leaf_candidates(
            planner, relation, interests
        )
    while len(components) > 1:
        best: Optional[Tuple[float, FrozenSet[str], FrozenSet[str], List[_Entry]]]
        best = None
        for subset_a, subset_b in combinations(list(components), 2):
            cross = graph.edges_between(subset_a, subset_b)
            if not cross:
                continue
            merged = _prune(
                _combine(
                    planner,
                    components[subset_a],
                    components[subset_b],
                    cross,
                    interests,
                )
            )
            cheapest = merged[0].cost
            if best is None or cheapest < best[0]:
                best = (cheapest, subset_a, subset_b, merged)
        if best is None:
            return None  # disconnected (extraction should have caught it)
        _, subset_a, subset_b, merged = best
        del components[subset_a]
        del components[subset_b]
        components[subset_a | subset_b] = merged
    return next(iter(components.values()))


# ----------------------------------------------------------------------
# Final selection
# ----------------------------------------------------------------------
def _completed_cost(planner, op, statements, prop, estimate, desired) -> float:
    """Entry cost plus what the consumer still has to pay: a sort if the
    desired order is not provided, a hash pass if the desired grouping
    cannot stream."""
    total = estimate.cost.total
    if desired.order:
        required = planner._try_qualify(desired.order)
        try:
            resolved = tuple(op.schema.resolve(c) for c in required)
        except (KeyError, ValueError):
            resolved = None
        if resolved is not None and not planner._order_ok(
            statements, prop.order, resolved
        ):
            total += sort_cost(estimate.rows).total
    elif desired.partition:
        required = planner._try_qualify(desired.partition)
        try:
            resolved = tuple(op.schema.resolve(c) for c in required)
        except (KeyError, ValueError):
            resolved = None
        if resolved is not None and not planner._partition_ok(
            statements, prop.order, resolved
        ):
            total += hash_cost(estimate.rows, 0).total
    return total


def _syntactic_schema(planner, graph: JoinGraph) -> Tuple[str, ...]:
    """The column order the parse-order join tree would produce."""
    names: List[str] = []
    for relation in graph.relations:
        table = planner.database.table(relation.table)
        names.extend(f"{relation.alias}.{column.name}" for column in table.schema)
    return tuple(names)


def search_join_order(planner, node: LogicalJoin, desired) -> Optional[JoinOrderResult]:
    """Run the search over one join block; ``None`` keeps the parse order.

    For ``SELECT *`` queries — the one consumer that reads the join
    block's columns positionally — a pass-through projection restores
    the syntactic column arrangement above a reordered join; named
    consumers (explicit projections, filters, sorts, aggregates) resolve
    by name and need no compensation.
    """
    from .planner import _Planned  # deferred: planner loads first

    graph = extract_join_graph(node, planner.resolver)
    if graph is None:
        return None
    interests = _interesting_orders(planner, graph, desired)
    if len(graph.relations) <= DP_MAX_RELATIONS:
        algorithm = "dp"
        frontier = _dp_search(planner, graph, interests)
    else:
        algorithm = "greedy"
        frontier = _greedy_search(planner, graph, interests)
    if not frontier:
        return None

    best = min(
        frontier,
        key=lambda entry: (
            _completed_cost(
                planner,
                entry.op,
                entry.statements,
                entry.prop,
                entry.estimate,
                desired,
            ),
            entry.label,
        ),
    )
    best_completed = _completed_cost(
        planner, best.op, best.statements, best.prop, best.estimate, desired
    )

    syntactic = planner._plan_join_syntactic(node, desired)
    syntactic_estimate = estimate_plan(planner.database, syntactic.op)
    syntactic_completed = _completed_cost(
        planner,
        syntactic.op,
        syntactic.statements,
        syntactic.prop,
        syntactic_estimate,
        desired,
    )
    syntactic_label = graph.syntactic_label()

    if best_completed < syntactic_completed * (1.0 - MIN_IMPROVEMENT):
        op = best.op
        estimate = best.estimate
        expected = _syntactic_schema(planner, graph)
        if (
            getattr(planner, "star_projection", False)
            and tuple(op.schema.names) != expected
        ):
            # SELECT * passes the join schema through positionally, so a
            # reordered join must restore the syntactic column
            # arrangement; every other consumer resolves by name and
            # skips this (identity renames: order property flows through).
            op = Project(op, [Col(name) for name in expected], expected)
            estimate = estimate_plan(planner.database, op)
        planned = _Planned(op, best.statements, best.prop)
        chosen_label, chosen_completed = best.label, best_completed
    else:
        planned = syntactic
        estimate = syntactic_estimate
        chosen_label, chosen_completed = syntactic_label, syntactic_completed

    record = JoinOrderDecision(
        algorithm=algorithm,
        relations=len(graph.relations),
        chosen=chosen_label,
        chosen_rows=estimate.rows,
        chosen_cost=chosen_completed,
        syntactic=syntactic_label,
        syntactic_cost=syntactic_completed,
    )
    return JoinOrderResult(planned=planned, record=record)

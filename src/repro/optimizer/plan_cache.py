"""Whole-plan memoization: logical-tree fingerprint → physical plan.

PR 1 made order properties canonically hashable and interned the
query-scoped OD theories; this module takes the step ROADMAP.md called
out: skip planning entirely when the *same logical tree* is planned again
under an unchanged catalog.

Fingerprinting rules
--------------------
:func:`canonical_tuple` lowers a logical tree into a nested tuple that is
equal iff the trees are plan-equivalent inputs:

* structure and node kinds (scan/join/filter/aggregate/project/distinct/
  sort/limit) are encoded positionally;
* scans contribute ``(table, alias)`` — alias matters because constraint
  qualification and name resolution are alias-sensitive;
* expressions contribute their rendered SQL text (``Expr.render`` is a
  faithful, parenthesized serialization, so distinct predicates and
  literals render distinctly);
* aggregate specs contribute ``(func, argument render, output name)``;
* sort keys, join columns, group columns, limits contribute verbatim.

:func:`fingerprint` hashes that tuple (SHA-256, hex) so cache keys are
small and printable in ``EXPLAIN`` output.  Two different SQL strings that
bind to the same logical tree (whitespace, comment, keyword-case variants)
share a fingerprint and therefore a cached plan.

Invalidation contract
---------------------
Entries are stamped with the :mod:`repro.engine.epoch` value current at
planning time.  A lookup whose stamp differs from the caller's epoch is a
*stale invalidation*: the entry is dropped, the ``stale_invalidations``
counter moves, and the caller re-plans.  DDL, index creation, dependency
registration, and data loads all bump the epoch (see
:mod:`repro.engine.epoch` for why data is included), so a cached plan is
never served across any mutation that could change what planning would
produce.  Capacity pressure evicts least-recently-used entries.
"""
from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..engine.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)

__all__ = ["canonical_tuple", "fingerprint", "PlanCacheEntry", "PlanCache"]


def canonical_tuple(node: LogicalNode) -> tuple:
    """The canonical nested-tuple form of a logical tree (see module doc)."""
    if isinstance(node, LogicalScan):
        return ("scan", node.table, node.alias)
    if isinstance(node, LogicalJoin):
        return (
            "join",
            canonical_tuple(node.left),
            canonical_tuple(node.right),
            tuple(node.left_columns),
            tuple(node.right_columns),
        )
    if isinstance(node, LogicalFilter):
        return ("filter", canonical_tuple(node.child), node.predicate.render())
    if isinstance(node, LogicalAggregate):
        return (
            "aggregate",
            canonical_tuple(node.child),
            tuple(node.group_columns),
            tuple(
                (spec.func, spec.expr.render() if spec.expr is not None else None, spec.name)
                for spec in node.aggregates
            ),
        )
    if isinstance(node, LogicalProject):
        if node.exprs is None:
            return ("project", canonical_tuple(node.child), None, None)
        return (
            "project",
            canonical_tuple(node.child),
            tuple(expr.render() for expr in node.exprs),
            tuple(node.names),
        )
    if isinstance(node, LogicalDistinct):
        return ("distinct", canonical_tuple(node.child))
    if isinstance(node, LogicalSort):
        return ("sort", canonical_tuple(node.child), tuple(node.keys))
    if isinstance(node, LogicalLimit):
        return ("limit", canonical_tuple(node.child), node.count)
    raise TypeError(f"cannot fingerprint {node!r}")


def fingerprint(node: LogicalNode) -> str:
    """SHA-256 hex digest of the canonical tuple — the plan-cache key."""
    return hashlib.sha256(repr(canonical_tuple(node)).encode()).hexdigest()


@dataclass
class PlanCacheEntry:
    """One memoized physical plan, with its provenance."""

    plan: object  # the root Operator, with .plan_info attached
    fingerprint: str
    mode: str
    epoch: int
    #: How many times this entry has been served (beyond the storing plan).
    serves: int = 0


class PlanCache:
    """A bounded LRU of physical plans keyed on (fingerprint, mode).

    The mode string carries every planning dimension that changes the
    physical tree: reasoning mode (``"od"``/``"fd"``), join ordering
    (``"od+syntactic"``), and parallel placement with its worker count
    *and* exchange backend (``"od+w4+thread"``, ``"od+w4+proc"``) — so
    serial/parallel plannings, different worker counts, and different
    backends never serve each other's trees.

    The epoch is *not* part of the key: at most one entry exists per
    logical tree and mode, and a lookup under a newer epoch explicitly
    drops the stale entry (counted) rather than letting it shadow-rot.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str], PlanCacheEntry]" = OrderedDict()
        self._stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "evictions": 0,
            "stale_invalidations": 0,
        }

    # ------------------------------------------------------------------
    def lookup(self, fp: str, mode: str, epoch: int) -> Optional[PlanCacheEntry]:
        """The live entry for (fp, mode) at ``epoch``, or ``None``.

        A hit bumps the entry's LRU position and serve count; an entry
        stamped with a different epoch is dropped and counted stale.
        """
        key = (fp, mode)
        entry = self._entries.get(key)
        if entry is None:
            self._stats["misses"] += 1
            return None
        if entry.epoch != epoch:
            del self._entries[key]
            self._stats["stale_invalidations"] += 1
            self._stats["misses"] += 1
            return None
        self._entries.move_to_end(key)
        entry.serves += 1
        self._stats["hits"] += 1
        return entry

    def store(self, fp: str, mode: str, epoch: int, plan: object) -> PlanCacheEntry:
        """Memoize a freshly planned tree, evicting LRU entries past capacity."""
        entry = PlanCacheEntry(plan=plan, fingerprint=fp, mode=mode, epoch=epoch)
        self._entries[(fp, mode)] = entry
        self._entries.move_to_end((fp, mode))
        self._stats["stores"] += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._stats["evictions"] += 1
        return entry

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every entry (stats counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self._stats["hits"] + self._stats["misses"]
        return self._stats["hits"] / lookups if lookups else 0.0

    def stats(self) -> Dict[str, object]:
        """Counters plus current occupancy — the ``plan_cache_stats()`` payload.

        Follows the snapshot contract of ``Database.stats_snapshot``:
        ``hits`` / ``misses`` / ``stores`` / ``evictions`` /
        ``stale_invalidations`` are **monotonic** for the cache's lifetime
        (``clear()`` drops entries, never counters), so deltas between two
        readings are meaningful; ``size``, ``capacity``, and ``hit_rate``
        are **gauges** — point-in-time values that may move either way.
        """
        out: Dict[str, object] = dict(self._stats)
        out["size"] = len(self._entries)
        out["capacity"] = self.capacity
        out["hit_rate"] = self.hit_rate
        return out

"""Physical planning with three reasoning modes.

* ``"naive"`` — no indexes, hash everything, always sort: the floor.
* ``"fd"`` — the [17] (Simmen et al.) state of the art the paper improves
  on: predicate pushdown, index selection, FD-based ``ReduceOrder``,
  FD-based stream grouping — but **no OD reasoning**.
* ``"od"`` — everything in ``"fd"`` plus the paper's contributions:
  OD-based order satisfaction (the oracle decides ``provided ↦ required``),
  ``ReduceOrder++`` (Eliminate / Left Eliminate drops), and the Section 2.3
  date-dimension join elimination.

``Database.execute(sql, optimize=True)`` maps ``True → "od"`` and
``False → "fd"``; benchmarks flip this switch to regenerate each of the
paper's comparisons.

Order properties travel as a :class:`~repro.optimizer.properties.PhysicalProperty`
(an :class:`~repro.optimizer.properties.OrderSpec` each physical operator
*declares* for its output) plus a statement set; projections contribute
renaming equivalences (``[d.month] ↔ [month]``) and
monotone-derived-column ODs (``[d.date] ↦ [yr]`` for ``YEAR(d.date) AS yr``
— the [12] technique), so satisfaction checks reduce uniformly to oracle
implications.  Query-scoped theories are interned
(:func:`~repro.optimizer.context.build_theory`) and the oracle memoizes its
answers, so repeated plannings of the same template short-circuit; the
per-plan oracle activity (calls, cache hits, enumerations) is reported in
:class:`PlanInfo` and surfaced by ``EXPLAIN``-style output
(:meth:`PlanInfo.describe`).
"""
from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.attrs import AttrList
from ..core.dependency import OrderDependency, OrderEquivalence, Statement
from ..engine.expr import Arith, Between, Cmp, Col, Expr, Func, Lit
from ..engine.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from ..engine.operators import (
    Filter,
    TopN,
    HashAggregate,
    HashDistinct,
    HashJoin,
    IndexScan,
    Limit,
    MergeJoin,
    Operator,
    PartialHashAggregate,
    PartialStreamAggregate,
    Project,
    SeqScan,
    Sort,
    SortedDistinct,
    StreamAggregate,
)
from .context import (
    alias_constraints,
    build_theory,
    constant_statement,
    join_equivalence,
)
from .properties import (
    EMPTY_PROPERTY,
    OrderSpec,
    PhysicalProperty,
    groupable,
    reduce_keys,
    satisfies,
)
from .rewrites import (
    NameResolver,
    apply_date_rewrite,
    collect_aliases,
    push_filters,
    split_conjuncts,
)

__all__ = ["Planner", "Desired", "PlanInfo"]

#: Functions monotone (non-decreasing) in their single column argument.
_MONOTONE_FUNCS = {"YEAR"}


@dataclass(frozen=True)
class Desired:
    """Interesting-order hints pushed toward the leaves.

    ``order``: the stream should arrive sorted by these qualified columns.
    ``partition``: equal values of these should arrive contiguously.
    """

    order: Tuple[str, ...] = ()
    partition: Tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return not self.order and not self.partition


@dataclass
class _Planned:
    """A physical subtree plus its reasoning context.

    ``prop`` may be *richer* than ``op.provides()``: a projection's output
    stream is still physically ordered by the (possibly hidden) child
    columns, with renaming equivalences in ``statements`` connecting them
    to output names — the planner keeps that knowledge even when the
    operator's own declared spec truncates.
    """

    op: Operator
    statements: List[Statement]
    prop: PhysicalProperty

    @property
    def provided_order(self) -> OrderSpec:
        return self.prop.order


#: Integer oracle counters the planner attributes to a single plan.
_ORACLE_KEYS = ("implies_calls", "fast_path", "cache_hits", "cache_misses", "enumerations")


@dataclass
class PlanInfo:
    """Planner decision log, attached to the returned root operator."""

    mode: str
    date_rewrites: list = field(default_factory=list)
    #: One :class:`~repro.optimizer.rewrite_pack.RewriteRecord` per applied
    #: rewrite-pack rule (eager aggregation, scan consolidation, FD join
    #: elimination); empty when the pack was off or nothing fired.
    rewrites: list = field(default_factory=list)
    avoided_sorts: int = 0
    stream_aggregates: int = 0
    notes: List[str] = field(default_factory=list)
    #: Oracle activity during this plan (diffed against interned theories).
    #: On a cached plan these counters are the work done when the entry was
    #: *built* — serving a hit does no oracle work, and ``describe()`` says
    #: so rather than pretending the work happened again.
    oracle: Dict[str, int] = field(
        default_factory=lambda: {key: 0 for key in _ORACLE_KEYS}
    )
    #: Plan-cache provenance, filled in by ``Database.plan``:
    #: ``fingerprint`` — SHA-256 of the canonical logical tree (None when
    #: planned outside the caching entry point); ``epoch`` — the catalog
    #: epoch the plan was built under; ``cache_state`` — "miss" (planned
    #: and stored), "hit" (served from cache), or "bypass"
    #: (``use_cache=False``); ``cache_serves`` — times this entry has been
    #: served since it was stored.  One PlanInfo is shared by every caller
    #: holding the cached plan, so ``cache_state``/``cache_serves`` always
    #: reflect the *most recent* acquisition — sample them at serve time,
    #: or use ``Database.plan_cache_stats()`` deltas for per-call facts.
    fingerprint: Optional[str] = None
    epoch: Optional[int] = None
    cache_state: str = "uncached"
    cache_serves: int = 0
    #: How the plan was last *executed* (an execution-time fact, set by
    #: ``Database.execute``/``explain``): ``"row (iterator)"``,
    #: ``"vectorized (batch size N)"`` or ``"parallel (K workers, batch
    #: size N)"``.  Like ``cache_state``, one PlanInfo is shared by every
    #: holder of a cached plan — sample it right after the execution you
    #: care about.
    execution: str = "row (iterator)"
    #: Parallel planning: the worker count exchanges were placed for
    #: (``None`` — serial plan), the exchange backend they drain through
    #: (``"inline"``/``"thread"``/``"process"``), and one record per
    #: placed exchange:
    #: ``(kind, partitions, ordering keys, partitioned subtree label)``.
    workers: Optional[int] = None
    backend: Optional[str] = None
    exchanges: List[tuple] = field(default_factory=list)
    #: Fault-tolerance accounting for the most recent *execution* of this
    #: plan (set by ``Database.execute``; empty when the run was
    #: fault-free): ``retries``, ``degraded_partitions``, ``degraded_to``
    #: (deepest rung), ``timed_out``, and — when the query raised —
    #: ``failed`` (the typed error's class name).  Like ``execution``,
    #: sample it right after the run you care about.
    recovery: Dict[str, object] = field(default_factory=dict)
    #: One :class:`~repro.optimizer.joinorder.JoinOrderDecision` per join
    #: block the cost-based search ordered (empty for syntactic planning
    #: and single-relation queries).
    join_orders: List[object] = field(default_factory=list)
    #: The plan's estimated output rows and cumulative cost
    #: (:class:`~repro.optimizer.costing.PlanEstimate`), computed once at
    #: planning time — what EXPLAIN prints next to measured work.
    estimate: Optional[object] = None
    #: EXPLAIN-ANALYZE summary for the most recent analyzed execution
    #: (set by ``Database.explain(analyze=True)``): node count, total
    #: wall milliseconds, and the worst per-node Q-error.  Like
    #: ``execution``, sample it right after the run you care about.
    analyze: Optional[Dict[str, object]] = None

    @property
    def oracle_hit_rate(self) -> float:
        """Result-cache hit rate over this plan's cached-path lookups."""
        lookups = self.oracle["cache_hits"] + self.oracle["cache_misses"]
        return self.oracle["cache_hits"] / lookups if lookups else 0.0

    def describe(self) -> str:
        """EXPLAIN-style report: which sorts/joins were eliminated and how
        much oracle work was cached vs enumerated."""
        lines = [f"plan mode: {self.mode}"]
        lines.append(f"execution: {self.execution}")
        if self.workers is not None:
            lines.append(
                f"parallel: {self.workers} workers, "
                f"{self.backend or 'thread'} backend"
            )
            if self.exchanges:
                for kind, partitions, keys, label in self.exchanges:
                    detail = f" on [{', '.join(keys)}]" if keys else ""
                    lines.append(
                        f"exchange: {kind}-exchange, {partitions} partitions"
                        f"{detail} over {label}"
                    )
            else:
                lines.append(
                    f"parallel: no partitionable subtree at workers="
                    f"{self.workers} (plan runs serial)"
                )
        if self.recovery:
            r = self.recovery
            parts = [
                f"{r.get('retries', 0)} retried attempt(s)",
                f"{r.get('degraded_partitions', 0)} partition(s) degraded",
            ]
            if r.get("degraded_to"):
                parts.append(f"deepest fallback {r['degraded_to']}")
            if r.get("timed_out"):
                parts.append("deadline exceeded")
            elif r.get("failed"):
                parts.append(f"failed with {r['failed']}")
            lines.append(f"fault tolerance: {', '.join(parts)}")
        for rewrite in self.date_rewrites:
            lines.append(f"join eliminated: {rewrite.describe()}")
        if self.rewrites:
            lines.append(
                "rewrites: " + ", ".join(r.describe() for r in self.rewrites)
            )
        for decision in self.join_orders:
            lines.append(f"join order: {decision.describe()}")
        if self.estimate is not None:
            lines.append(
                f"estimate: ≈{self.estimate.rows:,.0f} rows, {self.estimate.cost}"
            )
        if self.analyze is not None:
            a = self.analyze
            line = (
                f"analyze: {a['nodes']} node(s), "
                f"wall {a['wall_ms']:.3f}ms"
            )
            if a.get("max_q_error") is not None:
                line += f", max q-err {a['max_q_error']:.2f}"
            lines.append(line)
        lines.append(f"sorts avoided: {self.avoided_sorts}")
        lines.append(f"stream aggregates: {self.stream_aggregates}")
        for note in self.notes:
            lines.append(f"note: {note}")
        o = self.oracle
        lines.append(
            "oracle: {calls} calls ({fast} fast-path, {hits} cached, "
            "{enum} enumerated), hit rate {rate:.0%}".format(
                calls=o["implies_calls"],
                fast=o["fast_path"],
                hits=o["cache_hits"],
                enum=o["enumerations"],
                rate=self.oracle_hit_rate,
            )
        )
        if self.fingerprint is not None:
            # Entry-centric phrasing: one PlanInfo is shared by everyone
            # holding the cached plan, so describe the entry's history
            # (planned once, served N times) — true whenever it is read —
            # rather than any single caller's hit/miss perspective.
            line = (
                f"plan cache: entry {self.fingerprint[:12]} (epoch "
                f"{self.epoch}): planned once, served {self.cache_serves}x "
                "from cache"
            )
            if self.cache_serves:
                line += "; oracle counters above are from the initial planning"
            lines.append(line)
        return "\n".join(lines)


class Planner:
    """Translate a logical tree into an executable operator tree."""

    def __init__(
        self,
        database,
        optimize: bool = True,
        mode: Optional[str] = None,
        workers: Optional[int] = None,
        join_order: str = "cost",
        backend: Optional[str] = None,
        parallel_min_rows: Optional[int] = None,
        rewrites: str = "on",
        tracer: Optional[object] = None,
    ):
        self.database = database
        if mode is None:
            mode = "od" if optimize else "fd"
        if mode not in ("naive", "fd", "od"):
            raise ValueError(f"unknown planning mode {mode!r}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if join_order not in ("cost", "syntactic"):
            raise ValueError(f"unknown join_order {join_order!r}")
        if rewrites not in ("on", "off"):
            raise ValueError(f"unknown rewrites setting {rewrites!r}")
        self.mode = mode
        self.workers = workers
        self.join_order = join_order
        #: The logical rewrite pack switch ("on"/"off"); the pack itself
        #: only runs in "od" mode (see :mod:`repro.optimizer.rewrite_pack`).
        self.rewrites = rewrites
        #: Exchange backend for placed exchanges (None → the parallel
        #: module's default); validated at placement time.
        self.backend = backend
        #: Cost gate for exchange placement (None → the module default,
        #: read at plan time so env/monkeypatch overrides apply).  Tests
        #: pass 0 to force placement on tiny tables.
        self.parallel_min_rows = parallel_min_rows
        self.info = PlanInfo(mode=mode)
        #: Optional :class:`~repro.obs.tracer.Tracer` (duck-typed): each
        #: optimizer phase gets its own span under the caller's open span.
        self.tracer = tracer
        self.resolver: Optional[NameResolver] = None
        #: id(theory) -> (theory, stats snapshot at first acquisition); the
        #: post-plan diff attributes interned-oracle work to this plan.
        self._theories: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def _span(self, name: str):
        """A tracer phase span, or a no-op context when tracing is off."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, "optimizer")

    def plan(self, logical: LogicalNode) -> Operator:
        aliases = collect_aliases(logical)
        self.resolver = NameResolver(self.database, aliases)
        # SELECT * exposes the join block's column arrangement directly,
        # so a reordered join must restore the syntactic schema; every
        # other consumer resolves columns by name (the search reads this
        # to decide whether the compensating projection is needed).
        self.star_projection = _contains_star(logical)
        if self.mode != "naive":
            with self._span("pushdown"):
                logical = push_filters(logical, self.resolver)
        if self.mode == "od":
            with self._span("date-rewrite"):
                logical, applied = apply_date_rewrite(
                    self.database, logical, self.resolver, theory_source=self._theory
                )
                self.info.date_rewrites = applied
                if applied:
                    logical = push_filters(logical, self.resolver)
            if self.rewrites == "on":
                # The rewrite pack (eager aggregation, scan consolidation,
                # FD join elimination) runs after the date rewrite so an
                # eliminated date join never blocks aggregate placement.
                # Because it runs before physical planning, the estimate
                # below automatically prices the post-rewrite tree.
                from .rewrite_pack import apply_rewrites  # lazy: cycle

                with self._span("rewrite-pack"):
                    logical, self.info.rewrites = apply_rewrites(
                        self.database, logical, self.resolver
                    )
        with self._span("physical-plan"):
            planned = self._plan(logical, Desired())
        self._finalize_oracle_stats()
        op = planned.op
        # Estimated rows/cost for EXPLAIN, computed on the logical-order
        # tree (exchanges are a physical transform the cost model does
        # not price).  Estimation failures never fail a plan, but they
        # leave a visible note rather than silently omitting the line.
        try:
            from .costing import estimate_plan  # lazy: avoids cycle

            with self._span("estimate"):
                self.info.estimate = estimate_plan(self.database, op)
        except (TypeError, KeyError, ValueError) as exc:
            self.info.estimate = None
            self.info.notes.append(f"estimate unavailable: {exc}")
        if self.workers is not None:
            # Physical parallelization: wrap maximal partitionable chains
            # in exchanges whose kind the declared order property decides
            # (merge preserves it, union suffices without one).  Purely a
            # tree transform — results and counter totals stay exactly
            # the serial plan's (the mode-matrix differential's gate).
            # Placement is cost-gated on epoch-keyed TableStats row
            # counts: chains over small (dimension) tables stay serial.
            from ..engine import parallel  # lazy: avoids cycle

            self.info.workers = self.workers
            self.info.backend = self.backend or parallel.DEFAULT_BACKEND
            min_rows = (
                self.parallel_min_rows
                if self.parallel_min_rows is not None
                else parallel.PARALLEL_MIN_ROWS
            )
            with self._span("exchange-placement"):
                op = parallel.insert_exchanges(
                    op,
                    self.workers,
                    self.info,
                    backend=self.backend,
                    min_rows=min_rows,
                    row_estimator=self._estimated_rows,
                )
        op.plan_info = self.info  # type: ignore[attr-defined]
        return op

    def _estimated_rows(self, table) -> Optional[int]:
        """Scan-size estimate for the exchange cost gate: the epoch-keyed
        ``TableStats`` row count (recollected after any mutation, so the
        gate can never reason from pre-insert sizes)."""
        try:
            return self.database.stats(table.name).row_count
        except KeyError:
            return None

    # ------------------------------------------------------------------
    # Property-framework access (theories interned, stats attributed)
    # ------------------------------------------------------------------
    def _theory(self, statements):
        theory = build_theory(statements)
        if id(theory) not in self._theories:
            self._theories[id(theory)] = (theory, theory.stats())
        return theory

    def _finalize_oracle_stats(self) -> None:
        for theory, baseline in self._theories.values():
            current = theory.stats()
            for key in _ORACLE_KEYS:
                self.info.oracle[key] += current[key] - baseline[key]

    def _order_ok(self, statements, provided, required) -> bool:
        if not required:
            return True
        theory = None if self.mode == "naive" else self._theory(statements)
        return satisfies(theory, provided, required, self.mode)

    def _partition_ok(self, statements, provided, group_columns) -> bool:
        if not group_columns:
            return True
        if self.mode == "naive":
            return False
        return groupable(self._theory(statements), provided, group_columns, self.mode)

    def _reduce(self, statements, keys) -> Tuple[str, ...]:
        theory = None if self.mode == "naive" else self._theory(statements)
        return reduce_keys(theory, keys, self.mode)

    # ------------------------------------------------------------------
    # Node dispatch
    # ------------------------------------------------------------------
    def _plan(self, node: LogicalNode, desired: Desired) -> _Planned:
        if isinstance(node, LogicalScan):
            return self._plan_scan(node, None, desired)
        if isinstance(node, LogicalFilter):
            return self._plan_filter(node, desired)
        if isinstance(node, LogicalJoin):
            return self._plan_join(node, desired)
        if isinstance(node, LogicalAggregate):
            return self._plan_aggregate(node, desired)
        if isinstance(node, LogicalProject):
            return self._plan_project(node, desired)
        if isinstance(node, LogicalDistinct):
            return self._plan_distinct(node, desired)
        if isinstance(node, LogicalSort):
            return self._plan_sort(node, desired)
        if isinstance(node, LogicalLimit):
            if isinstance(node.child, LogicalSort) and self.mode != "naive":
                return self._plan_topn(node.child, node.count, desired)
            child = self._plan(node.child, desired)
            return _Planned(Limit(child.op, node.count), child.statements, child.prop)
        raise TypeError(f"cannot plan {node!r}")

    def _plan_topn(self, sort_node: LogicalSort, count: int, desired: Desired) -> _Planned:
        """ORDER BY + LIMIT: prefer no sort at all (OD satisfaction), else a
        bounded-heap TopN instead of a full Sort."""
        planned = self._plan_sort(sort_node, desired)
        top = planned.op
        if isinstance(top, Sort):
            fused = TopN(top.child, top.keys, count)
            return _Planned(
                fused, planned.statements, PhysicalProperty(fused.provides())
            )
        return _Planned(Limit(top, count), planned.statements, planned.prop)

    # ------------------------------------------------------------------
    # Scans (with optional local predicate for sargable ranges)
    # ------------------------------------------------------------------
    def _plan_scan(
        self,
        node: LogicalScan,
        predicate: Optional[Expr],
        desired: Desired,
    ) -> _Planned:
        table = self.database.table(node.table)
        statements = alias_constraints(self.database, node.alias, node.table)
        conjuncts = split_conjuncts(predicate) if predicate is not None else []
        statements += self._constant_statements(node.alias, conjuncts)

        chosen = None
        if self.mode != "naive":
            chosen = self._choose_index(node, table, conjuncts, desired, statements)
        if chosen is None:
            op: Operator = SeqScan(table, node.alias)
        else:
            index, low, high = chosen
            op = IndexScan(index, node.alias, low, high)
        if predicate is not None:
            op = Filter(op, predicate)
        # Scans (and the preserving Filter above them) declare their own
        # provided spec — the planner just reads it back.
        return _Planned(op, statements, PhysicalProperty(op.provides()))

    def _constant_statements(self, alias: str, conjuncts) -> List[Statement]:
        out: List[Statement] = []
        for conjunct in conjuncts:
            column, value = _equality_of(conjunct)
            if column is not None:
                try:
                    out.append(constant_statement(self.resolver.qualify(column)))
                except (KeyError, ValueError):
                    pass
        return out

    def _choose_index(self, node, table, conjuncts, desired, statements):
        """Pick (index, low, high) maximizing (order benefit, sargability)."""
        best = None
        best_score = (False, False, 0)
        for index in self.database.indexes_on(node.table):
            qualified = tuple(f"{node.alias}.{c}" for c in index.key_columns)
            gives_order = bool(desired.order) and self._order_ok(
                statements, qualified, self._try_qualify(desired.order)
            )
            gives_partition = bool(desired.partition) and self._partition_ok(
                statements, qualified, self._try_qualify(desired.partition)
            )
            low, high, bound_width = _sargable_bounds(
                index.key_columns, node.alias, conjuncts, self.resolver
            )
            score = (gives_order or gives_partition, bound_width > 0, bound_width)
            if score > best_score and (score[0] or score[1]):
                best_score = score
                best = (index, low, high)
        return best

    def _try_qualify(self, names: Sequence[str]) -> Tuple[str, ...]:
        out = []
        for name in names:
            try:
                out.append(self.resolver.qualify(name))
            except (KeyError, ValueError):
                out.append(name)
        return tuple(out)

    # ------------------------------------------------------------------
    def _plan_filter(self, node: LogicalFilter, desired: Desired) -> _Planned:
        if isinstance(node.child, LogicalScan) and self.mode != "naive":
            return self._plan_scan(node.child, node.predicate, desired)
        child = self._plan(node.child, desired)
        statements = child.statements + self._constant_statements(
            "", split_conjuncts(node.predicate)
        )
        return _Planned(Filter(child.op, node.predicate), statements, child.prop)

    # ------------------------------------------------------------------
    def _plan_join(self, node: LogicalJoin, desired: Desired) -> _Planned:
        """Join planning: cost-based ordering by default, parse order as
        the fallback (``join_order="syntactic"``, ``naive`` mode, or a
        join block the search cannot extract/beat)."""
        if self.join_order == "cost" and self.mode != "naive":
            from .joinorder import search_join_order  # lazy: module cycle

            with self._span("join-order"):
                result = search_join_order(self, node, desired)
            if result is not None:
                self.info.join_orders.append(result.record)
                return result.planned
        return self._plan_join_syntactic(node, desired)

    def _plan_join_syntactic(self, node: LogicalJoin, desired: Desired) -> _Planned:
        # The probe (left) side preserves its order through a hash join, so
        # interesting orders flow to the left child.  Nested joins recurse
        # through this method directly so a syntactic tree stays fully
        # syntactic (the cost search uses it as its comparison baseline).
        left = (
            self._plan_join_syntactic(node.left, desired)
            if isinstance(node.left, LogicalJoin)
            else self._plan(node.left, desired)
        )
        right = (
            self._plan_join_syntactic(node.right, Desired())
            if isinstance(node.right, LogicalJoin)
            else self._plan(node.right, Desired())
        )
        left_keys = [left.op.schema.resolve(c) for c in node.left_columns]
        right_keys = [right.op.schema.resolve(c) for c in node.right_columns]
        return self.join_planned(left, right, left_keys, right_keys)

    def join_planned(
        self,
        left: _Planned,
        right: _Planned,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
    ) -> _Planned:
        """Join two planned subtrees on resolved keys: a merge join when
        both declared orders provably satisfy their keys, a hash join
        otherwise.  The single construction point shared by the syntactic
        path and the cost-based search, so the two orderings can never
        diverge in when they emit MergeJoin vs HashJoin or in how join
        equivalences thread into the statement set."""
        statements = left.statements + right.statements
        for l, r in zip(left_keys, right_keys):
            statements.append(join_equivalence(l, r))

        both_sorted = self.mode != "naive" and (
            self._order_ok(left.statements, left.prop.order, left_keys)
            and self._order_ok(right.statements, right.prop.order, right_keys)
        )
        if both_sorted:
            op: Operator = MergeJoin(left.op, right.op, left_keys, right_keys)
        else:
            op = HashJoin(left.op, right.op, left_keys, right_keys)
        # Both joins preserve the probe (left) stream's properties.
        return _Planned(op, statements, left.prop)

    # ------------------------------------------------------------------
    def _plan_aggregate(self, node: LogicalAggregate, desired: Desired) -> _Planned:
        group_qualified = self._try_qualify(node.group_columns)
        child_desired_order: Tuple[str, ...] = ()
        if desired.order and set(desired.order) <= set(node.group_columns):
            remaining = [
                c for c in node.group_columns if c not in set(desired.order)
            ]
            child_desired_order = tuple(desired.order) + tuple(remaining)
        elif not desired.order:
            child_desired_order = ()
        child = self._plan(
            node.child,
            Desired(
                order=self._try_qualify(child_desired_order),
                partition=group_qualified,
            ),
        )
        resolved_group = tuple(
            child.op.schema.resolve(c) for c in node.group_columns
        )
        partial = getattr(node, "partial", False)
        if self._partition_ok(child.statements, child.prop.order, resolved_group):
            stream_cls = PartialStreamAggregate if partial else StreamAggregate
            op: Operator = stream_cls(child.op, resolved_group, node.aggregates)
            self.info.stream_aggregates += 1
            prop = child.prop
        else:
            hash_cls = PartialHashAggregate if partial else HashAggregate
            op = hash_cls(child.op, resolved_group, node.aggregates)
            prop = EMPTY_PROPERTY
        return _Planned(op, child.statements, prop)

    # ------------------------------------------------------------------
    def _plan_project(self, node: LogicalProject, desired: Desired) -> _Planned:
        if node.exprs is None:  # SELECT *
            return self._plan(node.child, desired)
        # Translate desired output names to input columns where possible.
        rename = {
            name: expr.name
            for expr, name in zip(node.exprs, node.names)
            if isinstance(expr, Col)
        }
        translated_order = tuple(rename.get(c, c) for c in desired.order)
        translated_partition = tuple(rename.get(c, c) for c in desired.partition)
        child = self._plan(
            node.child, Desired(translated_order, translated_partition)
        )
        op = Project(child.op, node.exprs, node.names)
        statements = list(child.statements)
        for expr, name in zip(node.exprs, node.names):
            statements.extend(
                _projection_statements(expr, name, child.op.schema)
            )
        # The stream is still physically ordered by the (possibly hidden)
        # child order; renaming equivalences connect it to output names.
        return _Planned(op, statements, child.prop)

    # ------------------------------------------------------------------
    def _plan_distinct(self, node: LogicalDistinct, desired: Desired) -> _Planned:
        child = self._plan(node.child, desired)
        columns = child.op.schema.names
        if self.mode != "naive" and self._partition_ok(
            child.statements, child.prop.order, columns
        ):
            op: Operator = SortedDistinct(child.op)
        else:
            op = HashDistinct(child.op)
        return _Planned(
            op,
            child.statements,
            child.prop if isinstance(op, SortedDistinct) else EMPTY_PROPERTY,
        )

    # ------------------------------------------------------------------
    def _plan_sort(self, node: LogicalSort, desired: Desired) -> _Planned:
        child = self._plan(node.child, Desired(order=node.keys))
        try:
            required = tuple(child.op.schema.resolve(k) for k in node.keys)
        except (KeyError, ValueError):
            # SQL permits ordering by columns the select list drops; push
            # the sort below the projection, where they are still visible.
            if isinstance(node.child, LogicalProject) and node.child.exprs is not None:
                import dataclasses

                lowered = dataclasses.replace(
                    node.child, child=LogicalSort(node.child.child, node.keys)
                )
                return self._plan(lowered, desired)
            raise
        if self._order_ok(child.statements, child.prop.order, required):
            self.info.avoided_sorts += 1
            self.info.notes.append(
                f"sort on [{', '.join(required)}] satisfied by existing order "
                f"[{', '.join(child.prop.order)}]"
            )
            return child
        keys = self._reduce(child.statements, required)
        if keys != required:
            self.info.notes.append(
                f"order-by reduced: [{', '.join(required)}] -> "
                f"[{', '.join(keys)}]"
            )
        if not keys:  # everything constant: any order is correct
            self.info.avoided_sorts += 1
            return child
        op = Sort(child.op, keys)
        return _Planned(op, child.statements, PhysicalProperty(op.provides()))


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _contains_star(node: LogicalNode) -> bool:
    """Does any projection in the tree pass columns through positionally?"""
    if isinstance(node, LogicalProject) and node.exprs is None:
        return True
    return any(_contains_star(child) for child in node.children())


def _equality_of(conjunct: Expr):
    """(column, value) for ``col = literal`` conjuncts, else (None, None)."""
    if isinstance(conjunct, Cmp) and conjunct.op == "=":
        if isinstance(conjunct.left, Col) and isinstance(conjunct.right, Lit):
            return conjunct.left.name, conjunct.right.value
        if isinstance(conjunct.right, Col) and isinstance(conjunct.left, Lit):
            return conjunct.right.name, conjunct.left.value
    if isinstance(conjunct, Between) and isinstance(conjunct.operand, Col):
        if (
            isinstance(conjunct.low, Lit)
            and isinstance(conjunct.high, Lit)
            and conjunct.low.value == conjunct.high.value
        ):
            return conjunct.operand.name, conjunct.low.value
    return None, None


def _sargable_bounds(key_columns, alias, conjuncts, resolver):
    """Bounds (low, high, width) over a prefix of the index key.

    Consumes equality conjuncts along the key prefix, then at most one range
    conjunct on the next key column.
    """
    eq_values: List = []
    for column in key_columns:
        found = None
        for conjunct in conjuncts:
            c, v = _equality_of(conjunct)
            if c is not None:
                try:
                    if resolver.qualify(c) == f"{alias}.{column}":
                        found = v
                        break
                except (KeyError, ValueError):
                    continue
        if found is None:
            break
        eq_values.append(found)
    position = len(eq_values)
    low = list(eq_values)
    high = list(eq_values)
    if position < len(key_columns):
        target = f"{alias}.{key_columns[position]}"
        range_low = range_high = None
        for conjunct in conjuncts:
            extracted = _range_bounds(conjunct, target, resolver)
            if extracted is not None:
                lo, hi = extracted
                if lo is not None:
                    range_low = lo if range_low is None else max(range_low, lo)
                if hi is not None:
                    range_high = hi if range_high is None else min(range_high, hi)
        if range_low is not None:
            low.append(range_low)
        if range_high is not None:
            high.append(range_high)
    width = max(len(low), len(high))
    if width == 0:
        return None, None, 0
    return (
        tuple(low) if low else None,
        tuple(high) if len(high) > len(eq_values) or high else None,
        width,
    )


def _range_bounds(conjunct: Expr, target: str, resolver):
    """(low, high) contribution of one conjunct to the target column."""
    def is_target(name: str) -> bool:
        try:
            return resolver.qualify(name) == target
        except (KeyError, ValueError):
            return False

    if isinstance(conjunct, Between) and isinstance(conjunct.operand, Col):
        if is_target(conjunct.operand.name) and isinstance(conjunct.low, Lit) \
                and isinstance(conjunct.high, Lit):
            return conjunct.low.value, conjunct.high.value
    if isinstance(conjunct, Cmp):
        op = conjunct.op
        if isinstance(conjunct.left, Col) and isinstance(conjunct.right, Lit):
            column, value = conjunct.left.name, conjunct.right.value
        elif isinstance(conjunct.right, Col) and isinstance(conjunct.left, Lit):
            column, value = conjunct.right.name, conjunct.left.value
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        else:
            return None
        if not is_target(column):
            return None
        if op == ">=":
            return value, None
        if op == "<=":
            return None, value
        if op == "=":
            return value, value
    return None


def _projection_statements(expr: Expr, name: str, child_schema) -> List[Statement]:
    """Statements connecting a projected output column to its sources.

    * pass-through ``Col``: full equivalence (a pure rename);
    * monotone function / arithmetic of one column: a one-way OD — the
      [12]-style derived monotonicity of Section 2.2.
    """
    if isinstance(expr, Col):
        try:
            source = child_schema.resolve(expr.name)
        except (KeyError, ValueError):
            return []
        if source == name:
            return []
        return [OrderEquivalence(AttrList([source]), AttrList([name]))]
    source_column = _monotone_source(expr)
    if source_column is not None:
        try:
            source = child_schema.resolve(source_column)
        except (KeyError, ValueError):
            return []
        return [OrderDependency(AttrList([source]), AttrList([name]))]
    return []


def _monotone_source(expr: Expr) -> Optional[str]:
    """The single column an expression is monotone non-decreasing in."""
    if isinstance(expr, Col):
        return expr.name
    if isinstance(expr, Func) and expr.name in _MONOTONE_FUNCS and len(expr.args) == 1:
        return _monotone_source(expr.args[0])
    if isinstance(expr, Arith):
        if expr.op in ("+", "-") and isinstance(expr.right, Lit):
            return _monotone_source(expr.left)
        if expr.op == "+" and isinstance(expr.left, Lit):
            return _monotone_source(expr.right)
        if expr.op in ("*", "/") and isinstance(expr.right, Lit):
            value = expr.right.value
            if isinstance(value, (int, float)) and value > 0:
                return _monotone_source(expr.left)
        if expr.op == "*" and isinstance(expr.left, Lit):
            value = expr.left.value
            if isinstance(value, (int, float)) and value > 0:
                return _monotone_source(expr.right)
    return None

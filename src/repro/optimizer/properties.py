"""First-class order properties: the planner's physical-property IR.

Classic optimizers (Simmen et al.'s FD-based order framework, the [17] the
paper improves on) treat "the stream is sorted by ``X``" as a *physical
property* that operators derive and enforcers (Sorts) establish.  The seed
planner instead threaded bare ``Tuple[str, ...]`` column lists through
``planner.py`` / ``rewrites.py`` / the operator layer, each re-deriving
prefix/rename algebra ad hoc.  This module centralizes that algebra:

* :class:`OrderSpec` — an immutable, hashable list of (qualified) column
  names with the manipulations order propagation needs: normalization
  (duplicate removal, sound by the paper's Normalization axiom), prefix
  tests, rename application with truncation at dropped columns (projection
  semantics), and restriction to an allowed column set (stream-aggregate
  semantics).
* :class:`PhysicalProperty` — the property record a planned subtree carries
  (currently its provided order; the seam for future properties such as
  partitioning or uniqueness).
* Mode-dispatched satisfaction tests (:func:`satisfies`,
  :func:`groupable`, :func:`reduce_keys`) so the ``naive`` / ``fd`` / ``od``
  distinction lives in one place instead of being re-encoded per call site.

Every oracle-backed test here funnels into
:meth:`repro.core.inference.ODTheory.implies`, whose memoized result cache
(see :mod:`repro.core.inference`) makes repeated planner probes over the
same query template short-circuit without sign-vector enumeration.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Tuple

from ..core.attrs import AttrList
from ..core.dependency import OrderEquivalence
from ..core.inference import ODTheory
from .reduce_order import (
    ordering_satisfies,
    ordering_satisfies_fd,
    reduce_order_fd,
    reduce_order_od,
    stream_groupable,
)

__all__ = [
    "OrderSpec",
    "PhysicalProperty",
    "EMPTY_SPEC",
    "EMPTY_PROPERTY",
    "satisfies",
    "groupable",
    "reduce_keys",
    "column_equivalent",
    "exchange_kind",
]

PLAN_MODES = ("naive", "fd", "od")


class OrderSpec(tuple):
    """An immutable lexicographic order specification: ``ORDER BY self``.

    A thin ``tuple`` subclass over column-name strings, so instances hash
    and compare cheaply (canonical hashing falls out of tuple identity
    after :meth:`normalized`), key dictionaries, and interoperate with any
    API expecting a ``Sequence[str]``.
    """

    __slots__ = ()

    def __new__(cls, columns: Iterable[str] = ()) -> "OrderSpec":
        columns = tuple(columns)
        for column in columns:
            if not isinstance(column, str) or not column:
                raise TypeError(
                    f"order columns must be non-empty strings, got {column!r}"
                )
        return super().__new__(cls, columns)

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not self

    def normalized(self) -> "OrderSpec":
        """Drop repeated columns (sound by the Normalization axiom, OD3)."""
        seen: set = set()
        out = []
        for column in self:
            if column not in seen:
                seen.add(column)
                out.append(column)
        return OrderSpec(out)

    def canonical_key(self) -> Tuple[str, ...]:
        """A hashable canonical form: the normalized column tuple."""
        return tuple(self.normalized())

    def attrlist(self) -> AttrList:
        """The :class:`~repro.core.attrs.AttrList` view, for oracle calls."""
        return AttrList(self)

    # ------------------------------------------------------------------
    # Prefix algebra
    # ------------------------------------------------------------------
    def is_prefix_of(self, other: Sequence[str]) -> bool:
        return len(self) <= len(other) and tuple(other[: len(self)]) == tuple(self)

    def starts_with(self, required: Sequence[str]) -> bool:
        """Position-wise prefix satisfaction: a stream sorted by ``self`` is
        sorted by ``required`` whenever ``required`` prefixes ``self``."""
        required = tuple(required)
        return len(required) <= len(self) and tuple(self[: len(required)]) == required

    def common_prefix(self, other: Sequence[str]) -> "OrderSpec":
        out = []
        for a, b in zip(self, other):
            if a != b:
                break
            out.append(a)
        return OrderSpec(out)

    def concat(self, other: Iterable[str]) -> "OrderSpec":
        """``self ++ other`` with repeated columns normalized away."""
        return OrderSpec(tuple(self) + tuple(other)).normalized()

    # ------------------------------------------------------------------
    # Derivation algebra (the per-operator propagation rules)
    # ------------------------------------------------------------------
    def rename(self, mapping: Mapping[str, str]) -> "OrderSpec":
        """Apply a projection's pass-through renames.

        The output is ordered by the longest prefix of ``self`` whose
        columns survive (appear in ``mapping``); ordering beyond a dropped
        column is lost — exactly ``Project``'s propagation rule.
        """
        out = []
        for column in self:
            renamed = mapping.get(column)
            if renamed is None:
                break
            out.append(renamed)
        return OrderSpec(out)

    def restrict(self, allowed: Iterable[str]) -> "OrderSpec":
        """The longest prefix of ``self`` inside ``allowed``.

        A stream aggregate grouping by ``allowed`` preserves the input
        order only up to the prefix made of grouping columns.
        """
        allowed = frozenset(allowed)
        out = []
        for column in self:
            if column not in allowed:
                break
            out.append(column)
        return OrderSpec(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OrderSpec[{', '.join(self)}]"


#: The empty order specification (no ordering guarantee).
EMPTY_SPEC = OrderSpec()


@dataclass(frozen=True)
class PhysicalProperty:
    """The physical properties of a planned tuple stream.

    Today that is the provided :class:`OrderSpec`; the dataclass is the
    extension seam for future properties (partitioning, uniqueness,
    distribution) without re-threading the planner.
    """

    order: OrderSpec = EMPTY_SPEC

    def __post_init__(self) -> None:
        if not isinstance(self.order, OrderSpec):
            object.__setattr__(self, "order", OrderSpec(self.order))

    @property
    def empty(self) -> bool:
        return self.order.empty

    def canonical_key(self) -> tuple:
        return (self.order.canonical_key(),)

    def renamed(self, mapping: Mapping[str, str]) -> "PhysicalProperty":
        return PhysicalProperty(self.order.rename(mapping))

    def restricted(self, allowed: Iterable[str]) -> "PhysicalProperty":
        return PhysicalProperty(self.order.restrict(allowed))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhysicalProperty(order={self.order!r})"


#: A stream with no guaranteed properties.
EMPTY_PROPERTY = PhysicalProperty()


# ----------------------------------------------------------------------
# Mode-dispatched property tests (the planner's satisfaction layer)
# ----------------------------------------------------------------------
def satisfies(
    theory: Optional[ODTheory],
    provided: Sequence[str],
    required: Sequence[str],
    mode: str = "od",
) -> bool:
    """Does a stream sorted by ``provided`` satisfy ``ORDER BY required``?

    * ``naive`` — position-wise prefix match only (no theory needed);
    * ``fd`` — [17]: FD-reduce the requirement, then prefix + renames;
    * ``od`` — the paper: one oracle implication ``provided ↦ required``.
    """
    if not required:
        return True
    provided = provided if isinstance(provided, OrderSpec) else OrderSpec(provided)
    if mode == "naive":
        return provided.starts_with(required)
    if theory is None:
        raise ValueError(f"mode {mode!r} requires a theory")
    if mode == "fd":
        return ordering_satisfies_fd(theory, provided, required)
    if mode == "od":
        return ordering_satisfies(theory, provided, required)
    raise ValueError(f"unknown planning mode {mode!r}")


def groupable(
    theory: Optional[ODTheory],
    provided: Sequence[str],
    group_columns: Sequence[str],
    mode: str = "od",
) -> bool:
    """May a stream with this order feed a StreamAggregate on the columns?"""
    if not group_columns:
        return True
    if mode == "naive":
        return False
    if theory is None:
        raise ValueError(f"mode {mode!r} requires a theory")
    return stream_groupable(theory, provided, group_columns, od_reasoning=(mode == "od"))


def reduce_keys(
    theory: Optional[ODTheory], keys: Sequence[str], mode: str = "od"
) -> Tuple[str, ...]:
    """Mode-dispatched ReduceOrder: drop provably redundant sort keys."""
    if mode == "naive" or theory is None:
        return tuple(OrderSpec(keys).normalized())
    if mode == "fd":
        return reduce_order_fd(theory, keys)
    if mode == "od":
        return reduce_order_od(theory, keys)
    raise ValueError(f"unknown planning mode {mode!r}")


def exchange_kind(spec: Sequence[str]) -> str:
    """Which exchange reassembles a partitioned subtree without breaking
    its declared physical property?

    A subtree that declares a non-empty :class:`OrderSpec` owes that order
    to its consumers, so its partition streams must be **merged** on the
    ordering prefix (a k-way merge — never a re-sort; that is the whole
    point of carrying the property; over the planner's contiguous
    partitions the merge degenerates to a streaming concatenation).  The
    empty spec owes nothing, so the cheaper concatenating **union**
    exchange suffices.  Returns ``"merge"`` or ``"union"`` — the
    vocabulary :func:`repro.engine.parallel.insert_exchanges` and
    ``EXPLAIN`` share.
    """
    spec = spec if isinstance(spec, OrderSpec) else OrderSpec(spec)
    return "union" if spec.empty else "merge"


def column_equivalent(theory: ODTheory, left: str, right: str) -> bool:
    """Is ``[left] ↔ [right]`` implied — e.g. a surrogate key ordered like
    its natural column (the date-rewrite guarantee)?"""
    return theory.implies(OrderEquivalence(AttrList([left]), AttrList([right])))

"""Order-specification reduction: ReduceOrder and ReduceOrder++.

Section 2.3 describes the rewrite algorithm of Simmen et al. [17] —
**ReduceOrder** — which sweeps an ``ORDER BY`` list right to left and drops
an attribute when the *prefix set* to its left functionally determines it
(plus constants).  The paper's augmentation — **ReduceOrder++** — adds the
OD-powered drops:

* **Eliminate** (Theorem 7): drop ``A`` when some contiguous sublist ``X``
  *anywhere earlier* in the spec orders it (``X ↦ [A]``);
* **Left Eliminate** (Theorem 8): drop ``A`` when the list ``X`` *directly
  following* it orders it — this is the ``[year, quarter, month]`` →
  ``[year, month]`` rewrite that FDs cannot justify.

The adjacency subtlety the paper stresses is preserved: given ``D ↦ B``,
``[A, B, D]`` reduces to ``[A, D]`` but ``[A, B, C, D]`` does **not** —
the interceding ``C`` breaks Left Eliminate, and no Eliminate applies.

:func:`reduce_order_exact` is the semantic optimum (drop ``A`` whenever the
spec with and without it are order-equivalent per the oracle); the test
suite verifies ``fd ⊆ od ⊆ exact`` and that every variant preserves order
equivalence.
"""
from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.attrs import AttrList
from ..core.dependency import FunctionalDependency, OrderDependency, OrderEquivalence
from ..core.inference import ODTheory

__all__ = [
    "reduce_order_fd",
    "reduce_order_od",
    "reduce_order_exact",
    "ordering_satisfies",
    "ordering_satisfies_fd",
    "stream_groupable",
    "minimal_groupby",
]


def _dedupe(keys: Sequence[str]) -> List[str]:
    """Normalization axiom at the spec level: later duplicates drop."""
    seen: set = set()
    out: List[str] = []
    for key in keys:
        if key not in seen:
            seen.add(key)
            out.append(key)
    return out


def reduce_order_fd(theory: ODTheory, keys: Sequence[str]) -> Tuple[str, ...]:
    """ReduceOrder ([17]): right-to-left sweep with prefix-FD and constant
    drops only."""
    out = _dedupe(keys)
    changed = True
    while changed:
        changed = False
        for i in range(len(out) - 1, -1, -1):
            attribute = out[i]
            prefix = out[:i]
            if theory.is_constant(attribute) or (
                theory.implies(FunctionalDependency(tuple(prefix), (attribute,)))
            ):
                del out[i]
                changed = True
    return tuple(out)


def _segment_droppable(
    theory: ODTheory, out: List[str], start: int, stop: int
) -> bool:
    """Can the contiguous segment ``out[start:stop]`` drop?

    * Eliminate (Thm 7): some contiguous sublist entirely *before* the
      segment orders it;
    * Left Eliminate (Thm 8): the segment *directly precedes* a contiguous
      sublist that orders it.  (The paper's multi-attribute case: given
      ``D ↦ BC``, the segment ``[B, C]`` before ``D`` drops at once.)
    """
    target = AttrList(out[start:stop])
    for s in range(0, start):
        for e in range(s + 1, start + 1):
            if theory.implies(OrderDependency(AttrList(out[s:e]), target)):
                return True
    for e in range(stop + 1, len(out) + 1):
        if theory.implies(OrderDependency(AttrList(out[stop:e]), target)):
            return True
    return False


def reduce_order_od(theory: ODTheory, keys: Sequence[str]) -> Tuple[str, ...]:
    """ReduceOrder++: the FD sweep plus the OD-powered segment drops."""
    out = _dedupe(keys)
    changed = True
    while changed:
        changed = False
        # single-attribute drops (constants and whole-prefix FDs)
        for i in range(len(out) - 1, -1, -1):
            attribute = out[i]
            prefix = out[:i]
            if theory.is_constant(attribute) or theory.implies(
                FunctionalDependency(tuple(prefix), (attribute,))
            ):
                del out[i]
                changed = True
        if changed:
            continue
        # contiguous-segment drops via Eliminate / Left Eliminate
        for start in range(len(out) - 1, -1, -1):
            for stop in range(len(out), start, -1):
                if _segment_droppable(theory, out, start, stop):
                    del out[start:stop]
                    changed = True
                    break
            if changed:
                break
    return tuple(out)


def reduce_order_exact(theory: ODTheory, keys: Sequence[str]) -> Tuple[str, ...]:
    """Semantic fixpoint: drop any attribute whose removal leaves an
    order-equivalent spec (single-attribute-removal closure)."""
    out = _dedupe(keys)
    changed = True
    while changed:
        changed = False
        for i in range(len(out) - 1, -1, -1):
            candidate = out[:i] + out[i + 1:]
            if theory.implies(OrderEquivalence(AttrList(out), AttrList(candidate))):
                out = candidate
                changed = True
    return tuple(out)


# ----------------------------------------------------------------------
# Order-property tests used by the physical planner
# ----------------------------------------------------------------------
def ordering_satisfies(
    theory: ODTheory, provided: Sequence[str], required: Sequence[str]
) -> bool:
    """OD-mode test: a stream sorted by ``provided`` is sorted by
    ``required`` iff ``provided ↦ required`` — Definition 4, verbatim."""
    return theory.implies(
        OrderDependency(AttrList(provided), AttrList(required))
    )


def ordering_satisfies_fd(
    theory: ODTheory, provided: Sequence[str], required: Sequence[str]
) -> bool:
    """FD-mode ([17]) test: FD-reduce the requirement, then demand it be a
    position-wise prefix of the provided order.  "Position-wise" admits pure
    column renames (``[d.d_year] ↔ [d_year]`` from a projection) — plumbing
    any real optimizer has — but no OD reasoning."""
    reduced = reduce_order_fd(theory, required)
    provided = tuple(provided)
    if len(reduced) > len(provided):
        return False
    for given, needed in zip(provided, reduced):
        if given == needed:
            continue
        rename = OrderEquivalence(AttrList([given]), AttrList([needed]))
        if not theory.implies(rename):
            return False
    return True


def stream_groupable(
    theory: ODTheory,
    ordering: Sequence[str],
    group_columns: Sequence[str],
    od_reasoning: bool = True,
) -> bool:
    """May a stream ordered by ``ordering`` feed a StreamAggregate grouping
    by ``group_columns``?

    Condition: the stream order lexicographically orders *some* arrangement
    ``L`` of the grouping columns (``ordering ↦ L``).  Rows equal on the
    grouping set are equal on ``L``, and equal-``L`` rows are contiguous in
    any ``L``-ordered stream — Example 1's "group divisions can be found on
    the fly in the stream".

    The classical FD form — a prefix ``P`` of the ordering lies inside the
    grouping set and functionally determines it — is the special case
    ``L = P ++ rest`` (Path/Union make ``ordering ↦ L`` derivable), and is
    checked first as a fast path.
    """
    import itertools

    group_columns = tuple(dict.fromkeys(group_columns))
    if not group_columns:
        return True
    group_set = set(group_columns)
    for end in range(0, len(ordering) + 1):
        prefix = tuple(ordering[:end])
        if not set(prefix) <= group_set:
            break
        if theory.implies(FunctionalDependency(prefix, tuple(group_set))):
            return True
    if not od_reasoning:
        return False  # [17] FD-mode stops at the prefix-FD condition
    provided = AttrList(ordering)
    if len(group_columns) <= 4:
        arrangements = itertools.permutations(group_columns)
    else:  # factorial blowup guard: try only the written arrangement
        arrangements = (group_columns,)
    for arrangement in arrangements:
        if theory.implies(OrderDependency(provided, AttrList(arrangement))):
            return True
    return False


def minimal_groupby(
    theory: ODTheory, group_columns: Sequence[str]
) -> Tuple[str, ...]:
    """Drop grouping columns functionally determined by the rest.

    Group-by is set-based, so (unlike order-by) the plain FD criterion is
    both necessary and sufficient for an *equivalent* partition.
    """
    out = _dedupe(group_columns)
    changed = True
    while changed:
        changed = False
        for i in range(len(out) - 1, -1, -1):
            rest = out[:i] + out[i + 1:]
            if theory.implies(FunctionalDependency(tuple(rest), (out[i],))):
                out = rest
                changed = True
    return tuple(out)

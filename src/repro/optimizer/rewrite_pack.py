"""The logical rewrite pack: eager aggregation, scan consolidation, and
FD-based join elimination.

Three proof-gated rules applied between ``push_filters`` and physical
planning (after the Section 2.3 date rewrite, sharing its recursion
idioms).  Each rule only fires when a *declared-dependency proof* plus a
data-verified side condition guarantees the rewritten tree returns the
same multiset:

* **Eager (partial) aggregation** — ``Agg_G(R ⋈ S)`` with every group
  column and aggregate argument from one side ``S`` becomes
  ``Agg_G(R ⋈ PartialAgg_{G ∪ keys(S)}(S))``: each partial group joins
  the same ``R`` rows every one of its input rows did, so additive
  aggregates recombine by SUM (COUNT → SUM of partial counts) and
  MIN/MAX are duplicate-insensitive.  Only decomposable functions
  qualify (AVG does not), and SUM arguments must be integer-typed
  columns so the re-associated fold is value-identical, not merely
  close.  The move is priced with the statistics NDVs (the same
  ``_group_cardinality`` model costing uses) and fires only when the
  estimated partial-group count shrinks the join input; a clustered
  index providing the partial grouping order relaxes the threshold,
  since the partial stage then streams for free (the Pareto frontier's
  provided-order information, read at the source).

* **Scan consolidation** — a self-join of one table on an FD-proven key
  (``is_superkey`` over the declared constraints, re-verified unique on
  the data so duplicate rows cannot inflate the join) matches every row
  only with itself, so both scans merge into a single scan carrying the
  conjunction of both sides' predicates; all references to the removed
  alias are renamed to the kept one.  Blocked under ``SELECT *`` (the
  join exposed two copies of every column positionally).

* **FD join elimination** — a join against a bare dimension scan is
  dropped when (a) the dimension-side keys are an FD-proven, data-unique
  superkey, (b) the fact side's keys carry a *declared foreign key* to
  them (``Database.declare_foreign_key``, re-verified containment at the
  current epoch) so every fact row matches exactly one dimension row,
  and (c) nothing else in the query references the dimension.  Recorded
  in ``PlanInfo.rewrites`` exactly like ``DateRewrite`` records.

The pack runs in ``"od"`` mode only (the optimized regime, like the date
rewrite) and is switched by the ``rewrites="on"|"off"`` knob threaded
through ``Database.plan/execute/explain``; plans cache under
rewrite-qualified mode keys (``"od+norw"``) so the two regimes never
serve each other's trees.
"""
from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine.expr import (
    Arith,
    Between,
    BoolOp,
    Cmp,
    Col,
    Expr,
    Func,
    InList,
    Lit,
    Not,
)
from ..engine.logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalNode,
    LogicalProject,
    LogicalScan,
)
from ..engine.operators import Filter, SeqScan
from ..engine.operators.base import AggSpec
from ..engine.types import DataType
from ..fd.bridge import fds_of
from ..fd.closure import is_superkey
from .rewrites import (
    NameResolver,
    _count_dim_references,
    _rebuild,
    collect_aliases,
    conjoin,
    split_conjuncts,
)

__all__ = ["RewriteRecord", "apply_rewrites"]

#: Eager aggregation fires when estimated partial groups / side rows is at
#: most this ratio (the join input must shrink enough to pay for the
#: extra fold) ...
EAGER_AGG_MAX_RATIO = 0.5
#: ... relaxed to this when a clustered index provides the partial
#: grouping order, because the partial stage then runs as a streaming
#: aggregate with no hash table.
EAGER_AGG_ORDERED_RATIO = 0.9

#: Aggregate functions that decompose into partial + final stages.
#: AVG does not (partial averages cannot be recombined without counts).
_DECOMPOSABLE = ("COUNT", "SUM", "MIN", "MAX")


@dataclass
class RewriteRecord:
    """Record of one applied rewrite-pack rule (for EXPLAIN and tests)."""

    rule: str  # "eager-agg" | "scan-consolidation" | "join-elimination"
    detail: str

    def describe(self) -> str:
        if self.rule == "join-elimination":
            return f"eliminated join({self.detail})"
        if self.rule == "scan-consolidation":
            return f"consolidated scan({self.detail})"
        return f"{self.rule}({self.detail})"


def apply_rewrites(
    database, node: LogicalNode, resolver: NameResolver
) -> Tuple[LogicalNode, List[RewriteRecord]]:
    """Apply every eligible rewrite; return the new tree plus records.

    Rule order matters: consolidation first (it shrinks the alias set and
    may expose further shapes), then join elimination (it removes joins
    eager aggregation would otherwise price), then eager aggregation.
    """
    records: List[RewriteRecord] = []
    node = _consolidate_scans(database, node, resolver, records)
    node = _eliminate_joins(database, node, node, resolver, records)
    node = _eager_aggregation(database, node, resolver, records)
    return node, records


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _key_unique(table, bare_columns: Sequence[str]) -> bool:
    """Data-verified uniqueness of a column set (one O(n) pass).

    The FD proof (``is_superkey``) guarantees rows agreeing on the key
    agree on *everything* — which duplicate rows satisfy trivially — so
    both the self-join and join-elimination rules re-verify genuine
    uniqueness before treating the key as match-exactly-once.
    """
    positions = [table.schema.position(c) for c in bare_columns]
    seen: Set[tuple] = set()
    for row in table.rows:
        key = tuple(row[p] for p in positions)
        if key in seen:
            return False
        seen.add(key)
    return True


def _declared_superkey(database, table_name: str, bare_columns: Sequence[str]) -> bool:
    table = database.table(table_name)
    fds = fds_of(table.constraints)
    return is_superkey(bare_columns, table.schema.names, fds)


def _contains_star(node: LogicalNode) -> bool:
    if isinstance(node, LogicalProject) and node.exprs is None:
        return True
    return any(_contains_star(child) for child in node.children())


def _replace_node(
    node: LogicalNode, target: LogicalNode, replacement: LogicalNode
) -> LogicalNode:
    if node is target:
        return replacement
    return _rebuild(
        node, [_replace_node(c, target, replacement) for c in node.children()]
    )


def _rename_expr(expr: Expr, rename) -> Expr:
    """Structurally rebuild an expression with column refs renamed."""
    if isinstance(expr, Col):
        return Col(rename(expr.name))
    if isinstance(expr, Cmp):
        return Cmp(expr.op, _rename_expr(expr.left, rename), _rename_expr(expr.right, rename))
    if isinstance(expr, Arith):
        return Arith(expr.op, _rename_expr(expr.left, rename), _rename_expr(expr.right, rename))
    if isinstance(expr, BoolOp):
        return BoolOp(expr.op, [_rename_expr(o, rename) for o in expr.operands])
    if isinstance(expr, Not):
        return Not(_rename_expr(expr.operand, rename))
    if isinstance(expr, Between):
        return Between(
            _rename_expr(expr.operand, rename),
            _rename_expr(expr.low, rename),
            _rename_expr(expr.high, rename),
        )
    if isinstance(expr, InList):
        return InList(_rename_expr(expr.operand, rename), expr.values)
    if isinstance(expr, Func):
        return Func(expr.name, [_rename_expr(a, rename) for a in expr.args])
    return expr


def _rename_tree(
    node: LogicalNode, resolver: NameResolver, removed: str, kept: str
) -> LogicalNode:
    """Rename every reference owned by ``removed`` to the ``kept`` alias.

    Output names (projection aliases, aggregate result names) stay —
    only column *references* move.  References that do not resolve (e.g.
    ORDER BY over a projected output name) are left untouched.
    """

    def rename(name: str) -> str:
        try:
            if resolver.alias_of(name) == removed:
                return f"{kept}.{resolver.bare(name)}"
        except (KeyError, ValueError):
            pass
        return name

    children = [_rename_tree(c, resolver, removed, kept) for c in node.children()]
    node = _rebuild(node, children)
    if isinstance(node, LogicalFilter):
        return dataclasses.replace(node, predicate=_rename_expr(node.predicate, rename))
    if isinstance(node, LogicalJoin):
        return dataclasses.replace(
            node,
            left_columns=tuple(rename(c) for c in node.left_columns),
            right_columns=tuple(rename(c) for c in node.right_columns),
        )
    if isinstance(node, LogicalAggregate):
        return dataclasses.replace(
            node,
            group_columns=tuple(rename(c) for c in node.group_columns),
            aggregates=tuple(
                AggSpec(
                    spec.func,
                    _rename_expr(spec.expr, rename) if spec.expr is not None else None,
                    spec.name,
                )
                for spec in node.aggregates
            ),
        )
    if isinstance(node, LogicalProject) and node.exprs is not None:
        return dataclasses.replace(
            node, exprs=tuple(_rename_expr(e, rename) for e in node.exprs)
        )
    if hasattr(node, "keys"):  # LogicalSort
        return dataclasses.replace(node, keys=tuple(rename(k) for k in node.keys))
    return node


def _leaf_scan(node: LogicalNode):
    """(scan, predicate) for a Scan or Filter-over-Scan leaf, else None."""
    predicate = None
    if isinstance(node, LogicalFilter):
        predicate = node.predicate
        node = node.child
    if isinstance(node, LogicalScan):
        return node, predicate
    return None


# ----------------------------------------------------------------------
# Rule 1: scan consolidation (self-join on an FD-proven key)
# ----------------------------------------------------------------------
def _consolidate_scans(
    database,
    root: LogicalNode,
    resolver: NameResolver,
    records: List[RewriteRecord],
) -> LogicalNode:
    if _contains_star(root):
        # The join exposes both copies positionally; merging would change
        # the output width.
        return root
    while True:
        found = _find_self_join(database, root, resolver)
        if found is None:
            return root
        join, kept, removed, table_name = found
        left_leaf = _leaf_scan(join.left)
        right_leaf = _leaf_scan(join.right)
        conjuncts: List[Expr] = []
        for _, predicate in (left_leaf, right_leaf):
            if predicate is not None:
                conjuncts.extend(split_conjuncts(predicate))
        merged: LogicalNode = left_leaf[0]
        predicate = conjoin(conjuncts)
        if predicate is not None:
            merged = LogicalFilter(merged, predicate)
        root = _replace_node(root, join, merged)
        # Tree-wide rename (the merged predicate's removed-alias conjuncts
        # included — they are part of the new root by now).
        root = _rename_tree(root, resolver, removed, kept)
        records.append(
            RewriteRecord(
                "scan-consolidation", f"{table_name} AS {removed} into {kept}"
            )
        )


def _find_self_join(database, node: LogicalNode, resolver: NameResolver):
    """First eligible self-join: both sides leaf scans of one table,
    joined pairwise on the same bare columns, which form an FD-proven,
    data-unique key.  Returns (join, kept_alias, removed_alias, table)."""
    if isinstance(node, LogicalJoin):
        left_leaf = _leaf_scan(node.left)
        right_leaf = _leaf_scan(node.right)
        if left_leaf is not None and right_leaf is not None:
            left_scan, right_scan = left_leaf[0], right_leaf[0]
            if (
                left_scan.table == right_scan.table
                and left_scan.alias != right_scan.alias
                and node.left_columns
            ):
                bares: List[str] = []
                ok = True
                for l, r in zip(node.left_columns, node.right_columns):
                    try:
                        pair_aliases = {resolver.alias_of(l), resolver.alias_of(r)}
                        same_bare = resolver.bare(l) == resolver.bare(r)
                    except (KeyError, ValueError):
                        ok = False
                        break
                    if pair_aliases != {left_scan.alias, right_scan.alias} or not same_bare:
                        ok = False
                        break
                    bares.append(resolver.bare(l))
                if ok:
                    table = database.table(left_scan.table)
                    if _declared_superkey(
                        database, left_scan.table, bares
                    ) and _key_unique(table, bares):
                        return node, left_scan.alias, right_scan.alias, left_scan.table
    for child in node.children():
        found = _find_self_join(database, child, resolver)
        if found is not None:
            return found
    return None


# ----------------------------------------------------------------------
# Rule 2: FD join elimination (unused dimension behind a declared FK)
# ----------------------------------------------------------------------
def _eliminate_joins(
    database,
    root: LogicalNode,
    node: LogicalNode,
    resolver: NameResolver,
    records: List[RewriteRecord],
) -> LogicalNode:
    if isinstance(node, LogicalJoin):
        left = _eliminate_joins(database, root, node.left, resolver, records)
        right = _eliminate_joins(database, root, node.right, resolver, records)
        node = dataclasses.replace(node, left=left, right=right)
        for dim_side, fact_side, dim_cols, fact_cols in (
            ("right", "left", node.right_columns, node.left_columns),
            ("left", "right", node.left_columns, node.right_columns),
        ):
            dim_node = getattr(node, dim_side)
            fact_node = getattr(node, fact_side)
            record = _try_eliminate_unused(
                database, root, dim_node, fact_node, dim_cols, fact_cols, resolver
            )
            if record is not None:
                records.append(record)
                return fact_node
        return node
    return _rebuild(
        node,
        [
            _eliminate_joins(database, root, c, resolver, records)
            for c in node.children()
        ],
    )


def _try_eliminate_unused(
    database, root, dim_node, fact_node, dim_cols, fact_cols, resolver
) -> Optional[RewriteRecord]:
    # 1. dimension side must be a *bare* scan — a local filter could drop
    #    dimension rows fact rows still point at, breaking exactly-once.
    if not isinstance(dim_node, LogicalScan) or not dim_cols:
        return None
    dim_alias, dim_table = dim_node.alias, dim_node.table
    try:
        if any(resolver.alias_of(c) != dim_alias for c in dim_cols):
            return None
        dim_bares = [resolver.bare(c) for c in dim_cols]
        fact_aliases = {resolver.alias_of(c) for c in fact_cols}
        fact_bares = [resolver.bare(c) for c in fact_cols]
    except (KeyError, ValueError):
        return None

    # 2. the dimension keys are an FD-proven, data-unique superkey —
    #    every fact row matches at most one dimension row.
    table = database.table(dim_table)
    if not _declared_superkey(database, dim_table, dim_bares):
        return None
    if not _key_unique(table, dim_bares):
        return None

    # 3. a declared (and epoch-re-verified) foreign key from the fact
    #    side's single owning alias — every fact row matches at least one.
    if len(fact_aliases) != 1:
        return None
    fact_alias = next(iter(fact_aliases))
    fact_table = resolver.aliases.get(fact_alias)
    if fact_table is None:
        return None
    if not database.verified_foreign_key(
        fact_table, tuple(fact_bares), dim_table, tuple(dim_bares)
    ):
        return None

    # 4. nothing but this join's keys references the dimension (a bare
    #    scan has no exempt local filter, so the count is exactly the
    #    join-key references when eligible; SELECT * counts as a use).
    if _count_dim_references(root, resolver, dim_alias) != len(dim_cols):
        return None
    return RewriteRecord("join-elimination", dim_alias)


# ----------------------------------------------------------------------
# Rule 3: eager (partial) aggregation below a join
# ----------------------------------------------------------------------
def _eager_aggregation(
    database,
    node: LogicalNode,
    resolver: NameResolver,
    records: List[RewriteRecord],
) -> LogicalNode:
    if isinstance(node, LogicalAggregate) and not node.partial:
        replaced = _try_eager(database, node, resolver, records)
        if replaced is not None:
            return replaced
    return _rebuild(
        node,
        [_eager_aggregation(database, c, resolver, records) for c in node.children()],
    )


def _try_eager(
    database,
    agg: LogicalAggregate,
    resolver: NameResolver,
    records: List[RewriteRecord],
) -> Optional[LogicalNode]:
    # Grouped aggregates directly above a join only: the grouped-only gate
    # sidesteps the empty-input corner (a global COUNT/SUM over zero rows
    # must still emit its one NULL/0 row, which a partial stage below the
    # join would not reproduce), and a residue filter between aggregate
    # and join would see partial rows instead of join rows.
    if not agg.group_columns or not isinstance(agg.child, LogicalJoin):
        return None
    if any(spec.func not in _DECOMPOSABLE for spec in agg.aggregates):
        return None
    join = agg.child

    needed: List[str] = list(agg.group_columns)
    for spec in agg.aggregates:
        if spec.expr is not None:
            needed.extend(spec.expr.columns())
    try:
        needed_aliases = {resolver.alias_of(c) for c in needed}
    except (KeyError, ValueError):
        return None

    for side_name, own_keys in (("left", join.left_columns), ("right", join.right_columns)):
        side_node = getattr(join, side_name)
        leaf = _leaf_scan(side_node)
        if leaf is None:
            continue
        scan, _ = leaf
        if needed_aliases != {scan.alias}:
            continue
        try:
            if any(resolver.alias_of(k) != scan.alias for k in own_keys):
                continue
            key_bares = [resolver.bare(k) for k in own_keys]
        except (KeyError, ValueError):
            continue

        # SUM arguments must be integer-typed columns: the partial/final
        # split re-associates the fold, which is only value-identical
        # (multiset-exact across the on/off differential) for ints.
        table = database.table(scan.table)
        sums_ok = True
        for spec in agg.aggregates:
            if spec.func != "SUM":
                continue
            if not isinstance(spec.expr, Col):
                sums_ok = False
                break
            try:
                bare = resolver.bare(spec.expr.name)
            except (KeyError, ValueError):
                sums_ok = False
                break
            if table.schema.dtype_of(bare) is not DataType.INT:
                sums_ok = False
                break
        if not sums_ok:
            continue

        # Partial grouping: the final group columns plus this side's join
        # keys (the join must still see every key value distinctly).
        partial_group: List[str] = []
        seen: Set[str] = set()
        for column in tuple(agg.group_columns) + tuple(own_keys):
            qualified = resolver.qualify(column)
            if qualified not in seen:
                seen.add(qualified)
                partial_group.append(column)
        group_bares = [resolver.bare(c) for c in partial_group]

        if not _eager_profitable(database, side_node, scan, group_bares):
            continue

        partial_specs: List[AggSpec] = []
        final_specs: List[AggSpec] = []
        for spec in agg.aggregates:
            pname = f"__partial_{spec.name}"
            partial_specs.append(AggSpec(spec.func, spec.expr, pname))
            # COUNT recombines by summing partial counts; SUM/MIN/MAX
            # recombine by themselves.
            final_func = "SUM" if spec.func == "COUNT" else spec.func
            final_specs.append(AggSpec(final_func, Col(pname), spec.name))

        partial = LogicalAggregate(
            side_node, tuple(partial_group), tuple(partial_specs), partial=True
        )
        new_join = dataclasses.replace(join, **{side_name: partial})
        target = scan.alias
        for spec in agg.aggregates:
            if spec.expr is not None and spec.expr.columns():
                target = resolver.qualify(list(spec.expr.columns())[0])
                break
        records.append(RewriteRecord("eager-agg", f"{target} below join"))
        return LogicalAggregate(new_join, agg.group_columns, tuple(final_specs))
    return None


def _eager_profitable(database, side_node, scan, group_bares: Sequence[str]) -> bool:
    """Does the partial stage shrink its side enough to pay for itself?

    Priced with the same statistics costing uses: estimated side rows
    (through the pushed-down filter, via ``estimate_plan`` on a throwaway
    scan chain) against the capped NDV product of the partial group.  A
    clustered index providing the partial grouping order relaxes the
    ratio — the partial stage then streams with no hash table.
    """
    try:
        stats = database.stats(scan.table)
    except KeyError:
        return False
    rows = float(stats.row_count)
    if isinstance(side_node, LogicalFilter):
        try:
            from .costing import estimate_plan  # lazy: import cycle

            table = database.table(scan.table)
            chain = Filter(SeqScan(table, scan.alias), side_node.predicate)
            rows = estimate_plan(database, chain).rows
        except (TypeError, KeyError, ValueError):
            pass
    if rows <= 0:
        return False
    groups = 1.0
    for bare in group_bares:
        column = stats.column(bare)
        groups *= column.distinct if column is not None else 10.0
        if groups >= rows:
            break
    groups = max(1.0, min(groups, rows))
    threshold = EAGER_AGG_MAX_RATIO
    if _streams_partial_group(database, scan.table, group_bares):
        threshold = EAGER_AGG_ORDERED_RATIO
    return groups <= threshold * rows


def _streams_partial_group(database, table_name: str, group_bares: Sequence[str]) -> bool:
    """Conservative provided-order check: a clustered index whose key set
    equals the partial group guarantees the partial stage streams."""
    group_set = set(group_bares)
    for index in database.indexes_on(table_name):
        if index.clustered and set(index.key_columns) == group_set:
            return True
    return False

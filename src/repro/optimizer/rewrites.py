"""Logical rewrites: predicate pushdown and the date-dimension join
elimination of Section 2.3 / [18].

The date rewrite reproduces the paper's prototype behaviour: a fact table
records dates as *surrogate keys* into a date dimension; queries predicate
on *natural* dates, forcing a join.  Given the guarantee (an OD check
constraint) that the surrogate key is ordered like the natural date —
``[sk] ↔ [d_date]`` — the plan can make **two probes** into the dimension
to translate the natural range into a surrogate range, replace the join by
a range predicate on the fact's own column, and (in a partitioned layout)
touch only the relevant partitions.
"""
from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..engine.expr import Between, BoolOp, Cmp, Col, Expr, Lit
from ..engine.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
)
from .context import build_theory, alias_constraints
from .properties import column_equivalent

__all__ = [
    "split_conjuncts",
    "conjoin",
    "collect_aliases",
    "NameResolver",
    "push_filters",
    "DateRewrite",
    "apply_date_rewrite",
]


def split_conjuncts(predicate: Expr) -> List[Expr]:
    """Flatten nested ANDs into a conjunct list."""
    if isinstance(predicate, BoolOp) and predicate.op == "AND":
        out: List[Expr] = []
        for operand in predicate.operands:
            out.extend(split_conjuncts(operand))
        return out
    return [predicate]


def conjoin(conjuncts: Sequence[Expr]) -> Optional[Expr]:
    """Rebuild a predicate from conjuncts (``None`` if empty)."""
    conjuncts = list(conjuncts)
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return BoolOp("AND", conjuncts)


def collect_aliases(node: LogicalNode) -> Dict[str, str]:
    """alias → table name for every scan in the tree."""
    out: Dict[str, str] = {}
    if isinstance(node, LogicalScan):
        out[node.alias] = node.table
    for child in node.children():
        out.update(collect_aliases(child))
    return out


class NameResolver:
    """Resolve raw column references (possibly unqualified) to aliases."""

    def __init__(self, database, aliases: Dict[str, str]) -> None:
        self.aliases = aliases
        self._by_qualified: Dict[str, str] = {}
        self._by_bare: Dict[str, List[str]] = {}
        for alias, table_name in aliases.items():
            for column in database.table(table_name).schema.names:
                qualified = f"{alias}.{column}"
                self._by_qualified[qualified] = alias
                self._by_bare.setdefault(column, []).append(qualified)

    def qualify(self, reference: str) -> str:
        """The fully-qualified ``alias.column`` form of a raw reference."""
        if reference in self._by_qualified:
            return reference
        candidates = self._by_bare.get(reference, [])
        if len(candidates) == 1:
            return candidates[0]
        if not candidates:
            raise KeyError(f"unknown column {reference!r}")
        raise ValueError(f"ambiguous column {reference!r}: {candidates}")

    def alias_of(self, reference: str) -> str:
        return self.qualify(reference).split(".", 1)[0]

    def bare(self, reference: str) -> str:
        return self.qualify(reference).split(".", 1)[1]


# ----------------------------------------------------------------------
# Predicate pushdown
# ----------------------------------------------------------------------
def push_filters(node: LogicalNode, resolver: NameResolver) -> LogicalNode:
    """Push single-alias filter conjuncts down onto their scans.

    Both planning modes run this — it is stock optimization, not an OD
    technique; leaving it out would strawman the baseline.
    """
    if isinstance(node, LogicalFilter):
        child = push_filters(node.child, resolver)
        per_alias: Dict[str, List[Expr]] = {}
        residue: List[Expr] = []
        for conjunct in split_conjuncts(node.predicate):
            try:
                owners = {resolver.alias_of(col) for col in conjunct.columns()}
            except (KeyError, ValueError):
                owners = set()
            if len(owners) == 1:
                per_alias.setdefault(owners.pop(), []).append(conjunct)
            else:
                residue.append(conjunct)
        child = _attach(child, per_alias)
        rest = conjoin(residue)
        return LogicalFilter(child, rest) if rest is not None else child
    return _rebuild(node, [push_filters(c, resolver) for c in node.children()])


def _attach(node: LogicalNode, per_alias: Dict[str, List[Expr]]) -> LogicalNode:
    if isinstance(node, LogicalScan):
        conjuncts = per_alias.get(node.alias)
        if conjuncts:
            return LogicalFilter(node, conjoin(conjuncts))
        return node
    return _rebuild(node, [_attach(c, per_alias) for c in node.children()])


def _rebuild(node: LogicalNode, children: List[LogicalNode]) -> LogicalNode:
    if not children:
        return node
    if isinstance(node, LogicalJoin):
        return dataclasses.replace(node, left=children[0], right=children[1])
    return dataclasses.replace(node, child=children[0])


# ----------------------------------------------------------------------
# The Section 2.3 date rewrite
# ----------------------------------------------------------------------
@dataclass
class DateRewrite:
    """Record of one applied join elimination (for EXPLAIN and tests)."""

    dim_alias: str
    dim_table: str
    natural_column: str
    surrogate_column: str
    fact_column: str
    low: object
    high: object
    surrogate_low: object
    surrogate_high: object

    def describe(self) -> str:
        return (
            f"eliminated join with {self.dim_table} AS {self.dim_alias}: "
            f"{self.natural_column} in [{self.low} .. {self.high}] became "
            f"{self.fact_column} BETWEEN {self.surrogate_low} AND "
            f"{self.surrogate_high} (two probes)"
        )


def _range_of(conjuncts: Sequence[Expr], column_alias: str, resolver: NameResolver):
    """Extract an inclusive (column, low, high) range over one dim column.

    Accepts BETWEEN, ``>=``/``<=``/``=`` comparisons against literals.
    Returns (bare_column, low, high, matched_conjuncts) or ``None``.
    """
    bounds: Dict[str, List] = {}
    matched: Dict[str, List[Expr]] = {}

    def note(column: str, low, high, conjunct: Expr) -> None:
        entry = bounds.setdefault(column, [None, None])
        if low is not None:
            entry[0] = low if entry[0] is None else max(entry[0], low)
        if high is not None:
            entry[1] = high if entry[1] is None else min(entry[1], high)
        matched.setdefault(column, []).append(conjunct)

    for conjunct in conjuncts:
        if isinstance(conjunct, Between) and isinstance(conjunct.operand, Col):
            if not (isinstance(conjunct.low, Lit) and isinstance(conjunct.high, Lit)):
                continue
            note(resolver.bare(conjunct.operand.name), conjunct.low.value,
                 conjunct.high.value, conjunct)
        elif isinstance(conjunct, Cmp):
            column, literal, op = None, None, conjunct.op
            if isinstance(conjunct.left, Col) and isinstance(conjunct.right, Lit):
                column, literal = conjunct.left.name, conjunct.right.value
            elif isinstance(conjunct.right, Col) and isinstance(conjunct.left, Lit):
                column, literal = conjunct.right.name, conjunct.left.value
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            if column is None:
                continue
            bare = resolver.bare(column)
            if op == ">=":
                note(bare, literal, None, conjunct)
            elif op == "<=":
                note(bare, None, literal, conjunct)
            elif op == "=":
                note(bare, literal, literal, conjunct)
    for column, (low, high) in bounds.items():
        if low is not None and high is not None:
            return column, low, high, matched[column]
    return None


def _referenced_aliases(node: LogicalNode, resolver: NameResolver) -> Set[str]:
    """Aliases referenced by expressions/keys at this node and below."""
    refs: Set[str] = set()

    def note_column(name: str) -> None:
        try:
            refs.add(resolver.alias_of(name))
        except (KeyError, ValueError):
            pass

    if isinstance(node, LogicalFilter):
        for column in node.predicate.columns():
            note_column(column)
    elif isinstance(node, LogicalJoin):
        for column in node.left_columns + node.right_columns:
            note_column(column)
    elif isinstance(node, LogicalAggregate):
        for column in node.group_columns:
            note_column(column)
        for spec in node.aggregates:
            if spec.expr is not None:
                for column in spec.expr.columns():
                    note_column(column)
    elif isinstance(node, LogicalProject):
        if node.exprs is not None:
            for expr in node.exprs:
                for column in expr.columns():
                    note_column(column)
        else:
            refs.update(resolver.aliases)  # SELECT * references everything
    elif isinstance(node, LogicalSort):
        for column in node.keys:
            note_column(column)
    for child in node.children():
        refs |= _referenced_aliases(child, resolver)
    return refs


def apply_date_rewrite(
    database, node: LogicalNode, resolver: NameResolver, theory_source=None
) -> Tuple[LogicalNode, List[DateRewrite]]:
    """Eliminate dimension joins used only to translate a natural-date range.

    Preconditions, checked per join (fact ⋈ dim on ``f.fk = d.pk``):

    1. the dimension side is a bare scan (with pushed-down filters),
    2. its filters yield one closed range on a natural column ``D``,
    3. the dimension declares ``[pk] ↔ [D]`` (surrogate ordered like the
       natural value) — verified through the constraint theory,
    4. no other part of the query references the dimension.

    Applies every eligible elimination; returns the rewritten tree plus a
    :class:`DateRewrite` record per application.  ``theory_source`` lets the
    caller (the planner) supply its interned, stats-attributed theories;
    defaults to :func:`~repro.optimizer.context.build_theory`.
    """
    applied: List[DateRewrite] = []
    if theory_source is None:
        theory_source = build_theory
    rewritten = _rewrite_joins(database, node, node, resolver, applied, theory_source)
    return rewritten, applied


def _rewrite_joins(
    database,
    root: LogicalNode,
    node: LogicalNode,
    resolver: NameResolver,
    applied: List[DateRewrite],
    theory_source,
) -> LogicalNode:
    if isinstance(node, LogicalJoin):
        left = _rewrite_joins(database, root, node.left, resolver, applied, theory_source)
        right = _rewrite_joins(database, root, node.right, resolver, applied, theory_source)
        node = dataclasses.replace(node, left=left, right=right)
        for dim_side, fact_side, dim_cols, fact_cols in (
            ("right", "left", node.right_columns, node.left_columns),
            ("left", "right", node.left_columns, node.right_columns),
        ):
            dim_node = getattr(node, dim_side)
            fact_node = getattr(node, fact_side)
            rewrite = _try_eliminate(
                database, root, node, dim_node, fact_node,
                dim_cols, fact_cols, resolver, theory_source,
            )
            if rewrite is not None:
                replacement, record = rewrite
                applied.append(record)
                return replacement
        return node
    return _rebuild(
        node,
        [
            _rewrite_joins(database, root, c, resolver, applied, theory_source)
            for c in node.children()
        ],
    )


def _try_eliminate(
    database, root, join, dim_node, fact_node, dim_cols, fact_cols, resolver,
    theory_source,
):
    # 1. dimension side must be Filter(Scan) or Scan, with a single join key
    if len(dim_cols) != 1:
        return None
    conjuncts: List[Expr] = []
    scan = dim_node
    if isinstance(scan, LogicalFilter):
        conjuncts = split_conjuncts(scan.predicate)
        scan = scan.child
    if not isinstance(scan, LogicalScan):
        return None
    dim_alias, dim_table = scan.alias, scan.table
    try:
        if resolver.alias_of(dim_cols[0]) != dim_alias:
            return None
    except (KeyError, ValueError):
        return None
    surrogate = resolver.bare(dim_cols[0])

    # 2. a closed natural-column range in the dimension's local filters
    found = _range_of(conjuncts, dim_alias, resolver)
    if found is None:
        return None
    natural, low, high, matched = found
    if natural == surrogate:
        return None
    if len(matched) != len(conjuncts):
        return None  # leftover dim predicates would be lost

    # 3. the OD guarantee: surrogate ordered like the natural column
    theory = theory_source(alias_constraints(database, dim_alias, dim_table))
    if not column_equivalent(
        theory, f"{dim_alias}.{surrogate}", f"{dim_alias}.{natural}"
    ):
        return None

    # 4. the dimension feeds nothing but this join and its own range filter
    if _count_dim_references(root, resolver, dim_alias) > 1:
        return None  # >1: referenced beyond the single join key

    # Two probes: translate the natural range into the surrogate domain.
    table = database.table(dim_table)
    surrogate_position = table.schema.position(surrogate)
    natural_position = table.schema.position(natural)
    qualifying = [
        row[surrogate_position]
        for row in table.rows
        if low <= row[natural_position] <= high
    ]
    fact_column = fact_cols[0]
    if not qualifying:
        predicate: Expr = Lit(False)
        record = DateRewrite(
            dim_alias, dim_table, natural, surrogate, fact_column,
            low, high, None, None,
        )
    else:
        sk_low, sk_high = min(qualifying), max(qualifying)
        predicate = Between(Col(fact_column), Lit(sk_low), Lit(sk_high))
        record = DateRewrite(
            dim_alias, dim_table, natural, surrogate, fact_column,
            low, high, sk_low, sk_high,
        )
    return LogicalFilter(fact_node, predicate), record


def _count_dim_references(
    root: LogicalNode,
    resolver: NameResolver,
    dim_alias: str,
) -> int:
    """References to the dimension outside its own pushed-down filter.

    The dimension's local filter (a Filter directly over its scan, produced
    by :func:`push_filters`) is exempt; every other reference counts,
    including join keys — an eligible query has exactly one (the join key
    being eliminated).  Aliases are unique, so structural matching suffices.
    """
    count = 0

    def walk(node: LogicalNode) -> None:
        nonlocal count
        columns: List[str] = []
        if isinstance(node, LogicalFilter):
            if isinstance(node.child, LogicalScan) and node.child.alias == dim_alias:
                return  # the dimension's own range predicate
            columns = list(node.predicate.columns())
        elif isinstance(node, LogicalAggregate):
            columns = list(node.group_columns)
            for spec in node.aggregates:
                if spec.expr is not None:
                    columns.extend(spec.expr.columns())
        elif isinstance(node, LogicalProject):
            if node.exprs is None:
                count += 1  # SELECT * would expose dimension columns
            else:
                for expr in node.exprs:
                    columns.extend(expr.columns())
        elif isinstance(node, LogicalSort):
            columns = list(node.keys)
        elif isinstance(node, LogicalJoin):
            columns = list(node.left_columns + node.right_columns)
        for column in columns:
            try:
                if resolver.alias_of(column) == dim_alias:
                    count += 1
            except (KeyError, ValueError):
                pass
        for child in node.children():
            walk(child)

    walk(root)
    return count

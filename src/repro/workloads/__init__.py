"""Workload generators: the paper's motivating datasets, laptop-scale.

* :mod:`repro.workloads.datedim` — the Figure 2 calendar hierarchy;
* :mod:`repro.workloads.taxes` — Example 5's progressive tax table;
* :mod:`repro.workloads.tpcds_lite` — the Section 2.3 star schema and the
  thirteen rewrite-eligible date queries;
* :mod:`repro.workloads.snowflake` — the snowflaked dimension chains and
  multi-join queries the cost-based join-ordering search reorders;
* :mod:`repro.workloads.rewrite_pack` — planted-win table pairs for the
  logical rewrite pack (eager aggregation, scan consolidation, FD join
  elimination);
* :mod:`repro.workloads.random_instances` — reproducible fuzzing inputs.
"""
from .datedim import (
    FIGURE2_PATHS,
    build_date_dim,
    date_dim_ods,
    date_dim_schema,
    generate_date_dim,
)
from .rewrite_pack import REWRITE_PACK_QUERIES, build_rewrite_pack
from .random_instances import (
    random_attrlist,
    random_od,
    random_od_set,
    random_relation,
    relation_satisfying,
)
from .snowflake import SNOWFLAKE_QUERIES, Snowflake, build_snowflake
from .taxes import DEFAULT_BRACKETS, build_taxes, generate_taxes, tax_of, taxes_ods
from .tpcds_lite import DATE_QUERIES, TpcdsLite, build_tpcds_lite

__all__ = [
    "generate_date_dim",
    "date_dim_schema",
    "date_dim_ods",
    "build_date_dim",
    "FIGURE2_PATHS",
    "generate_taxes",
    "taxes_ods",
    "build_taxes",
    "tax_of",
    "DEFAULT_BRACKETS",
    "build_tpcds_lite",
    "TpcdsLite",
    "DATE_QUERIES",
    "build_snowflake",
    "Snowflake",
    "SNOWFLAKE_QUERIES",
    "build_rewrite_pack",
    "REWRITE_PACK_QUERIES",
    "random_attrlist",
    "random_od",
    "random_od_set",
    "random_relation",
    "relation_satisfying",
]

"""The date dimension: the paper's Figure 2 hierarchy as data + ODs.

Generates a Kimball-style date dimension table — one row per calendar day,
with a surrogate key and the derived calendar columns — and the order
dependencies that hold among them by construction:

* ``[d_date_sk] ↔ [d_date]`` — the surrogate assignment preserves date
  order (the Section 2.3 guarantee the join-elimination rewrite needs);
* ``[d_date] ↦ [d_year, d_moy, d_dom]``, ``[d_date] ↦ [d_year, d_qoy,
  d_moy, d_dom]``, ``[d_date] ↦ [d_year, d_doy]``, … — the Figure 2 paths;
* ``[d_moy] ↦ [d_qoy]`` — month determines-and-orders quarter, the Example 1
  dependency;
* FDs like ``{d_date} → everything`` and ``{d_moy} → {d_qoy}``.

Column names follow TPC-DS (``d_date_sk``, ``d_year``, ``d_qoy``, ``d_moy``,
``d_dom``, ``d_doy``, ``d_week_seq``) so the tpcds_lite workload can share
this module.
"""
from __future__ import annotations

import datetime
from typing import List, Tuple

from ..core.dependency import Statement, equiv, fd, od
from ..engine.schema import Column, Schema
from ..engine.table import Table
from ..engine.types import DataType

__all__ = [
    "date_dim_schema",
    "generate_date_dim",
    "date_dim_ods",
    "FIGURE2_PATHS",
]


def date_dim_schema() -> Schema:
    """The date-dimension schema (TPC-DS column naming)."""
    return Schema.of(
        ("d_date_sk", DataType.INT),
        ("d_date", DataType.DATE),
        ("d_year", DataType.INT),
        ("d_qoy", DataType.INT),
        ("d_moy", DataType.INT),
        ("d_dom", DataType.INT),
        ("d_doy", DataType.INT),
        ("d_week_seq", DataType.INT),
        ("d_dow", DataType.INT),
        ("d_month_name", DataType.STR),
    )

_MONTH_NAMES = (
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
)


def generate_date_dim(
    start: datetime.date = datetime.date(1998, 1, 1),
    days: int = 365 * 5,
    sk_base: int = 2450815,
    name: str = "date_dim",
) -> Table:
    """Generate ``days`` consecutive calendar rows starting at ``start``.

    Surrogate keys ascend with the date (``sk_base + i``), exactly the
    property the paper's TPC-DS experiments rely on.  The month-name column
    exists to demonstrate Example 1's trap: strings sort ``April < … <
    September``, so ``d_month_name`` is functionally determined by ``d_moy``
    but NOT ordered by it.
    """
    table = Table(name, date_dim_schema())
    epoch_week = start - datetime.timedelta(days=start.weekday())
    rows: List[tuple] = []
    for i in range(days):
        day = start + datetime.timedelta(days=i)
        week_seq = (day - epoch_week).days // 7
        rows.append(
            (
                sk_base + i,
                day,
                day.year,
                (day.month - 1) // 3 + 1,
                day.month,
                day.day,
                day.timetuple().tm_yday,
                week_seq,
                day.weekday(),
                _MONTH_NAMES[day.month - 1],
            )
        )
    table.load(rows, check=False)
    return table


#: The Figure 2 diagram: each entry is a list-valued OD right-hand side that
#: ``[d_date]`` orders — one per path through the hierarchy.
FIGURE2_PATHS: Tuple[tuple, ...] = (
    ("d_year", "d_doy"),
    ("d_year", "d_moy", "d_dom"),
    ("d_year", "d_qoy", "d_moy", "d_dom"),
    ("d_year", "d_week_seq", "d_dow"),
)


def date_dim_ods() -> List[Statement]:
    """Every dependency that holds in the generated date dimension.

    Declared as check constraints; the test suite verifies each against the
    generated data, and the optimizer reasons from them.
    """
    statements: List[Statement] = [
        # The Section 2.3 guarantee: surrogate ordered like the natural date.
        equiv("d_date_sk", "d_date"),
        # Figure 2 paths.
        *(od("d_date", list(path)) for path in FIGURE2_PATHS),
        # Example 1's dependency: month of year orders quarter of year.
        od("d_moy", "d_qoy"),
        # week_seq is a running week number; the date orders it.
        od("d_date", "d_week_seq"),
        # Note: [d_doy] does NOT order (or determine) [d_qoy]/[d_moy] across
        # leap years — day-of-year 91 is April 1 in common years but March 31
        # in leap years.  The constraint checker rejects it; see tests.
        # Functional (set) facts with no order content.
        fd("d_date", "d_date_sk,d_year,d_qoy,d_moy,d_dom,d_doy,d_week_seq,d_dow,d_month_name"),
        fd("d_moy", "d_qoy,d_month_name"),
        fd("d_year,d_doy", "d_date"),
    ]
    return statements


def build_date_dim(database, days: int = 365 * 5, start=None, **kwargs):
    """Create, load, constrain and index the date dimension in a database.

    Returns the table.  Indexes: clustered on the surrogate key, secondary
    on ``d_date`` (the probe target) and on ``(d_year, d_moy, d_dom)`` (the
    Example 1 index).
    """
    if start is None:
        start = datetime.date(1998, 1, 1)
    table = generate_date_dim(start=start, days=days, **kwargs)
    database.tables[table.name] = table
    for statement in date_dim_ods():
        table.declare(statement)
    database.create_index("date_dim_sk", table.name, ["d_date_sk"], clustered=True)
    database.create_index("date_dim_date", table.name, ["d_date"])
    database.create_index(
        "date_dim_ymd", table.name, ["d_year", "d_moy", "d_dom"]
    )
    return table

"""The micro-benchmark workload: seeded fact/dim builders plus the two
pipeline shapes every execution-mode measurement shares.

``benchmarks/bench_vectorized.py`` (row vs batch), ``benchmarks/
bench_parallel.py`` (serial vs workers), and the regression proxies in
``tests/harness/test_bench_regression.py`` all measure **scan → filter →
aggregate** and **join → aggregate** over the same synthetic fact table.
Keeping the builders here — the package where every other seeded workload
lives — means the committed ``BENCH_*.json`` baselines and the CI proxies
can never drift onto different workload shapes.
"""
from __future__ import annotations

import os
import random

from ..engine.expr import Between, Col, Lit
from ..engine.operators import (
    AggSpec,
    Filter,
    HashAggregate,
    HashJoin,
    Operator,
    SeqScan,
)
from ..engine.schema import Schema
from ..engine.table import Table
from ..engine.types import DataType

__all__ = [
    "BENCH_ROWS",
    "build_fact",
    "build_dim",
    "scan_filter_aggregate",
    "join_aggregate",
]

#: Group count of the dimension side (brackets 0..40 cover incomes to 400k).
DIM_GROUPS = 40

#: The benchmark-scale fact size, honoring the same ``REPRO_BENCH_SCALE``
#: knob as ``benchmarks/conftest.py`` — resolved here so the bench
#: modules stay importable outside the pytest rootdir.
BENCH_ROWS = max(
    1, int(120_000 * float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
)


def build_fact(rows: int, seed: int = 11) -> Table:
    """A seeded fact table: (income, bracket = income // 10k, payable)."""
    rng = random.Random(seed)
    table = Table(
        "fact",
        Schema.of(
            ("income", DataType.INT),
            ("bracket", DataType.INT),
            ("payable", DataType.FLOAT),
        ),
    )
    data = []
    for _ in range(rows):
        income = rng.randint(0, 400_000)
        data.append((income, income // 10_000, round(income * 0.21, 2)))
    table.load(data, check=False)
    table.columnar()  # build the columnar cache up front, like indexes
    return table


def build_dim(groups: int = DIM_GROUPS) -> Table:
    """The bracket dimension: (k, label), one row per group plus one."""
    table = Table("dim", Schema.of(("k", DataType.INT), ("label", DataType.STR)))
    table.load([(i, f"bracket-{i}") for i in range(groups + 1)], check=False)
    table.columnar()
    return table


def scan_filter_aggregate(fact: Table) -> Operator:
    """scan → filter → aggregate: full scan, range predicate, grouped
    COUNT+SUM — the headline shape of the execution-mode claims."""
    return HashAggregate(
        Filter(SeqScan(fact), Between(Col("income"), Lit(50_000), Lit(250_000))),
        ["bracket"],
        [AggSpec("COUNT", None, "n"), AggSpec("SUM", Col("payable"), "total")],
    )


def join_aggregate(fact: Table, dim: Table) -> Operator:
    """join → aggregate: fact ⋈ dim then grouped sum — the TPC-DS-lite
    shape, keeping more per-row work in Python."""
    join = HashJoin(SeqScan(fact), SeqScan(dim), ["fact.bracket"], ["dim.k"])
    return HashAggregate(
        join,
        ["dim.label"],
        [AggSpec("COUNT", None, "n"), AggSpec("SUM", Col("payable"), "total")],
    )

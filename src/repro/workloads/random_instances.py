"""Random generators for property tests and scaling benchmarks.

Everything takes an explicit ``random.Random`` (or seed) so tests and
benchmarks are reproducible.
"""
from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..core.attrs import AttrList
from ..core.dependency import OrderDependency, Statement, od
from ..core.relation import Relation

__all__ = [
    "random_attrlist",
    "random_od",
    "random_od_set",
    "random_relation",
    "relation_satisfying",
]


def _rng(seed_or_rng) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def random_attrlist(
    names: Sequence[str], max_len: int = 3, rng=0, allow_empty: bool = True
) -> AttrList:
    """A duplicate-free random list over the given attribute names."""
    rng = _rng(rng)
    low = 0 if allow_empty else 1
    k = rng.randint(low, min(max_len, len(names)))
    return AttrList(rng.sample(list(names), k))


def random_od(names: Sequence[str], max_len: int = 3, rng=0) -> OrderDependency:
    """A random OD over the given attribute names."""
    rng = _rng(rng)
    return OrderDependency(
        random_attrlist(names, max_len, rng), random_attrlist(names, max_len, rng)
    )


def random_od_set(
    names: Sequence[str], count: int, max_len: int = 2, rng=0
) -> List[OrderDependency]:
    """A random set of prescribed ODs (a random ℳ)."""
    rng = _rng(rng)
    return [random_od(names, max_len, rng) for _ in range(count)]


def random_relation(
    names: Sequence[str], rows: int, domain: int = 4, rng=0
) -> Relation:
    """A random integer relation — the fuzzing substrate for soundness
    tests (any relation is a legal OD-semantics model)."""
    rng = _rng(rng)
    attributes = AttrList(names)
    data = [
        tuple(rng.randint(0, domain - 1) for _ in names) for _ in range(rows)
    ]
    return Relation(attributes, data, name="random")


def relation_satisfying(
    statements: Sequence[Statement],
    names: Sequence[str],
    rows: int = 20,
    domain: int = 4,
    rng=0,
    max_tries: int = 200,
) -> Optional[Relation]:
    """Rejection-sample rows to build a relation satisfying all statements.

    Grows the relation row by row, keeping a candidate row only if every
    statement still holds — cheap and effective for small statement sets.
    Returns ``None`` if sampling stalls.
    """
    from ..core.satisfaction import satisfies

    rng = _rng(rng)
    attributes = AttrList(names)
    relation = Relation(attributes, [], name="sampled")
    tries = 0
    while len(relation.rows) < rows and tries < max_tries:
        tries += 1
        candidate = tuple(rng.randint(0, domain - 1) for _ in names)
        relation.rows.append(candidate)
        if not all(satisfies(relation, statement) for statement in statements):
            relation.rows.pop()
    return relation if relation.rows else None

"""Planted-win workload for the logical rewrite pack.

Three table pairs, one per rule in :mod:`repro.optimizer.rewrite_pack`,
each shaped so the rewrite has a decisive, deterministic win in
``Metrics.work`` (the gated number — exact on every host) while the
unrewritten plan stays perfectly correct:

* **RW1 / eager aggregation** — ``fact`` (many rows, few ``(grp, key)``
  partial groups) joined to ``expand`` (several rows per key).  Without
  the rewrite the join multiplies every fact row by the expansion factor
  before the aggregate folds them back down; with it the partial stage
  collapses the fact to one row per ``(grp, key)`` first.  All measures
  are integers so the re-associated fold is value-identical.

* **RW2 / scan consolidation** — ``wide`` self-joined on its FD-declared,
  data-unique ``w_id`` with a different filter on each alias.  The join
  matches every row only with itself, so the consolidated plan scans the
  table once with the conjoined filter instead of building a
  table-sized hash.

* **RW3 / FD join elimination** — ``orders`` joined to ``cust`` purely
  for the (never-read) dimension columns, with a declared foreign key
  ``orders.o_cust → cust.c_id``.  The join neither adds nor drops rows,
  so the eliminated plan skips the dimension scan and the hash entirely.

``REWRITE_PACK_QUERIES`` entries are ``(qid, sql, order_keys)`` —
already instantiated (no date windows here), shared by the differential
harness, ``benchmarks/bench_rewrites.py``, and the bench-regression
proxy so the committed claims and the live re-checks always measure the
same queries.
"""
from __future__ import annotations

import random
from typing import Tuple

from ..core.dependency import fd
from ..engine.database import Database
from ..engine.schema import Schema
from ..engine.table import Table
from ..engine.types import DataType

__all__ = ["build_rewrite_pack", "REWRITE_PACK_QUERIES"]


def build_rewrite_pack(
    fact_rows: int = 30_000,
    groups: int = 10,
    keys: int = 50,
    expansion: int = 6,
    wide_rows: int = 20_000,
    order_rows: int = 40_000,
    customers: int = 20_000,
    seed: int = 13,
) -> Database:
    """Build the three planted-win table pairs in one database."""
    rng = random.Random(seed)
    database = Database("rewrite_pack")

    # RW1: the eager-aggregation pair.  ``fact`` has ``groups * keys``
    # distinct partial groups — far fewer than its rows — and ``expand``
    # multiplies every key by ``expansion``.
    fact = Table(
        "fact",
        Schema.of(
            ("f_grp", DataType.INT),
            ("f_key", DataType.INT),
            ("f_val", DataType.INT),
        ),
    )
    fact.load(
        (rng.randint(1, groups), rng.randint(1, keys), rng.randint(0, 100))
        for _ in range(fact_rows)
    )
    database.tables["fact"] = fact

    expand = Table(
        "expand",
        Schema.of(("x_key", DataType.INT), ("x_seq", DataType.INT)),
    )
    expand.load(
        (key, seq) for key in range(1, keys + 1) for seq in range(expansion)
    )
    database.tables["expand"] = expand

    # RW2: the scan-consolidation table.  ``w_id`` is a declared FD key
    # and genuinely unique in the data — both proofs the rule demands.
    wide = Table(
        "wide",
        Schema.of(
            ("w_id", DataType.INT),
            ("w_a", DataType.INT),
            ("w_b", DataType.INT),
        ),
    )
    wide.load(
        (i, rng.randint(0, 1000), rng.randint(0, 1000))
        for i in range(1, wide_rows + 1)
    )
    database.tables["wide"] = wide
    wide.declare(fd("w_id", "w_a,w_b"))
    database.create_index("wide_pk", "wide", ["w_id"], clustered=True)

    # RW3: the join-elimination pair.  Every order points at an existing
    # customer, recorded as a declared (and verified) foreign key.  The
    # dimension is deliberately fact-sized and unindexed: eliminating the
    # join saves its scan and the hash outright, rather than trading one
    # ordered access path for another.
    cust = Table(
        "cust",
        Schema.of(("c_id", DataType.INT), ("c_name", DataType.STR)),
    )
    cust.load((i, f"cust#{i}") for i in range(1, customers + 1))
    database.tables["cust"] = cust
    cust.declare(fd("c_id", "c_name"))

    orders = Table(
        "orders",
        Schema.of(("o_cust", DataType.INT), ("o_amount", DataType.INT)),
    )
    orders.load(
        (rng.randint(1, customers), rng.randint(1, 500))
        for _ in range(order_rows)
    )
    database.tables["orders"] = orders
    database.declare_foreign_key("orders", ["o_cust"], "cust", ["c_id"])
    return database


#: (qid, sql, ORDER BY keys).  Integer measures throughout so the
#: rewritten and unrewritten folds are exactly comparable.
REWRITE_PACK_QUERIES: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = (
    # Eager aggregation: group columns and aggregate arguments all from
    # the fact side, whose partial-group NDV product is ~2% of its rows.
    ("RW1", """
        SELECT f.f_grp, COUNT(*) AS n, SUM(f.f_val) AS total
        FROM fact f
        JOIN expand x ON f.f_key = x.x_key
        GROUP BY f_grp
        ORDER BY f_grp
    """, ("f_grp",)),
    # Scan consolidation: a self-join on the FD-proven unique key with a
    # different filter on each alias.
    ("RW2", """
        SELECT a.w_id, a.w_a, b.w_b
        FROM wide a
        JOIN wide b ON a.w_id = b.w_id
        WHERE a.w_a >= 300 AND b.w_b < 700
        ORDER BY a.w_id
    """, ("w_id",)),
    # FD join elimination: the dimension is joined and never read.  No
    # ORDER BY — the win under measurement is the dropped scan + hash,
    # not sort placement.
    ("RW3", """
        SELECT o.o_cust, COUNT(*) AS n, SUM(o.o_amount) AS amt
        FROM orders o
        JOIN cust c ON o.o_cust = c.c_id
        GROUP BY o_cust
    """, ()),
)

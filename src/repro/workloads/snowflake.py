"""Snowflake workload: multi-join queries for the join-ordering search.

The TPC-DS-lite star (one fact, wide dimensions joined directly) gives a
join-ordering search little to do — every query joins the fact to one or
two dimensions.  This schema *snowflakes* the dimensions into chains, so
queries routinely join four or five relations and the parse order is
frequently a bad order:

    sales ── item ── brand
      │  └── date_dim (surrogate keys; the Section 2.3 rewrite applies)
      └──── store ── region

Each query template below is written with a deliberately chosen FROM
order — some syntactically good (the search should agree), some
syntactically bad (a selective sub-dimension filtered *last*, an ORDER BY
on the fact's clustered key with the fact *not* first) — so the
cost-based search has real wins to find: cheaper intermediate sizes, and
sorts discharged by putting the order-providing access path on the probe
side.  The differential harness executes every template under both
``join_order="cost"`` and ``join_order="syntactic"`` and requires
identical result multisets.

Row counts default laptop-tiny-but-measurable; ``build_snowflake`` takes
the same shrink/grow knobs as the other workloads.
"""
from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import Tuple

from ..core.dependency import fd
from ..engine.database import Database
from ..engine.schema import Schema
from ..engine.table import Table
from ..engine.types import DataType
from .datedim import build_date_dim

__all__ = [
    "Snowflake",
    "build_snowflake",
    "SNOWFLAKE_QUERIES",
    "SNOWFLAKE_SKEWED_QUERIES",
    "PROMO_KINDS",
    "skewed_query_sql",
]


def sales_schema() -> Schema:
    return Schema.of(
        ("f_date_sk", DataType.INT),
        ("f_item_sk", DataType.INT),
        ("f_store_sk", DataType.INT),
        ("f_qty", DataType.INT),
        ("f_amount", DataType.FLOAT),
    )


def item_schema() -> Schema:
    return Schema.of(
        ("i_item_sk", DataType.INT),
        ("i_brand_sk", DataType.INT),
        ("i_price", DataType.FLOAT),
    )


def brand_schema() -> Schema:
    return Schema.of(
        ("b_brand_sk", DataType.INT),
        ("b_name", DataType.STR),
    )


def store_schema() -> Schema:
    return Schema.of(
        ("st_store_sk", DataType.INT),
        ("st_region_sk", DataType.INT),
        ("st_city", DataType.STR),
    )


def region_schema() -> Schema:
    return Schema.of(
        ("r_region_sk", DataType.INT),
        ("r_name", DataType.STR),
    )


def promo_schema() -> Schema:
    return Schema.of(
        ("p_promo_sk", DataType.INT),
        ("p_date_sk", DataType.INT),
        ("p_kind", DataType.STR),
    )


#: Promotion kinds per covered day — the expansion factor of
#: ``sales ⋈ promo`` inside the covered window.
PROMO_KINDS = 8


_REGIONS = ("Africa", "America", "Asia", "Europe", "Oceania", "Polar")


@dataclass
class Snowflake:
    """The built workload plus its generation parameters."""

    database: Database
    start: datetime.date
    days: int
    sales_rows: int
    sk_base: int

    def date_range(self, first_day: int, length_days: int) -> Tuple[str, str]:
        """An ISO (low, high) natural-date range inside the calendar."""
        low = self.start + datetime.timedelta(days=first_day)
        high = low + datetime.timedelta(days=length_days - 1)
        return low.isoformat(), high.isoformat()

    def sk_window(self, first_day: int, length_days: int) -> Tuple[int, int]:
        """A (low, high) surrogate-key window inside the calendar —
        the parameter form the skewed templates take."""
        return self.sk_base + first_day, self.sk_base + first_day + length_days - 1


def build_snowflake(
    days: int = 365 * 2,
    sales_rows: int = 60_000,
    items: int = 200,
    brands: int = 20,
    stores: int = 12,
    regions: int = 6,
    seed: int = 7,
    start: datetime.date = datetime.date(1999, 1, 1),
) -> Snowflake:
    """Generate the snowflake schema.

    ``sales`` records dates as surrogate keys and is clustered on
    ``f_date_sk`` (the date-partitioned-fact shape), with a secondary
    index on ``f_item_sk`` so the search can consider an order-providing
    access path toward the item chain.  Every dimension is clustered on
    its primary key.
    """
    regions = min(regions, len(_REGIONS))
    rng = random.Random(seed)
    database = Database("snowflake")
    build_date_dim(database, days=days, start=start)
    sk_base = database.table("date_dim").rows[0][0]

    region = Table("region", region_schema())
    region.load((i, _REGIONS[i - 1]) for i in range(1, regions + 1))
    database.tables["region"] = region
    region.declare(fd("r_region_sk", "r_name"))
    database.create_index("region_pk", "region", ["r_region_sk"], clustered=True)

    store = Table("store", store_schema())
    store.load(
        (i, (i - 1) % regions + 1, f"city_{i}") for i in range(1, stores + 1)
    )
    database.tables["store"] = store
    store.declare(fd("st_store_sk", "st_region_sk,st_city"))
    database.create_index("store_pk", "store", ["st_store_sk"], clustered=True)

    brand = Table("brand", brand_schema())
    brand.load((i, f"brand#{i}") for i in range(1, brands + 1))
    database.tables["brand"] = brand
    brand.declare(fd("b_brand_sk", "b_name"))
    database.create_index("brand_pk", "brand", ["b_brand_sk"], clustered=True)

    item = Table("item", item_schema())
    item.load(
        (i, (i - 1) % brands + 1, round(rng.uniform(1.0, 300.0), 2))
        for i in range(1, items + 1)
    )
    database.tables["item"] = item
    item.declare(fd("i_item_sk", "i_brand_sk,i_price"))
    database.create_index("item_pk", "item", ["i_item_sk"], clustered=True)

    sales = Table("sales", sales_schema())
    rows = []
    for _ in range(sales_rows):
        day_offset = int(rng.betavariate(2, 2) * (days - 1))
        rows.append(
            (
                sk_base + day_offset,
                rng.randint(1, items),
                rng.randint(1, stores),
                rng.randint(1, 20),
                round(rng.uniform(0.5, 500.0), 2),
            )
        )
    rows.sort(key=lambda row: row[0])  # clustered by date surrogate
    sales.load(rows)
    database.tables["sales"] = sales
    database.create_index("sales_date", "sales", ["f_date_sk"], clustered=True)
    database.create_index("sales_item", "sales", ["f_item_sk"])

    # Referential integrity along the dimension chains, declared so the
    # rewrite pack's FD join elimination has proofs to work with.  The
    # promo and date_dim joins are deliberately *not* declared: promo
    # covers only part of the fact's key domain (the join genuinely
    # filters), and date_dim is the Section 2.3 rewrite's territory.
    database.declare_foreign_key("sales", ["f_item_sk"], "item", ["i_item_sk"])
    database.declare_foreign_key("sales", ["f_store_sk"], "store", ["st_store_sk"])
    database.declare_foreign_key("store", ["st_region_sk"], "region", ["r_region_sk"])
    database.declare_foreign_key("item", ["i_brand_sk"], "brand", ["b_brand_sk"])

    # The promotion calendar covers only the opening ~3% of the calendar
    # — the *thin tail* of the beta(2,2)-distributed fact dates — with
    # PROMO_KINDS rows per covered day.  ``sales ⋈ promo`` therefore has
    # a partial key-domain overlap that sits exactly where the fact is
    # sparsest: the containment assumption (|f|·|p|/max ndv) cannot see
    # that, while the histogram interleaved-merge estimate can — the
    # skewed templates below are built on that contrast.
    promo = Table("promo", promo_schema())
    promo_days = max(7, int(days * 0.03))
    promo.load(
        (day * PROMO_KINDS + kind + 1, sk_base + day, f"kind_{kind}")
        for day in range(promo_days)
        for kind in range(PROMO_KINDS)
    )
    database.tables["promo"] = promo
    promo.declare(fd("p_promo_sk", "p_date_sk,p_kind"))
    database.create_index("promo_date", "promo", ["p_date_sk"], clustered=True)
    return Snowflake(database, start, days, sales_rows, sk_base)


#: The snowflake query set: (id, template, ORDER BY keys).  Templates take
#: the natural-date range via ``.format(lo=..., hi=...)`` (templates with
#: no date predicate simply ignore the arguments).  FROM orders are chosen
#: deliberately — see the module docstring.
SNOWFLAKE_QUERIES: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = (
    # Left-deep dims-first: a reasonable hand-written order, but any
    # left-deep plan passes the fact through a hash twice — the search
    # finds the bushy shape (fact probing a pre-joined store ⋈ region)
    # that touches the fact once.
    ("SN1", """
        SELECT r.r_name, SUM(f.f_qty) AS qty, COUNT(*) AS n
        FROM region r
        JOIN store st ON r.r_region_sk = st.st_region_sk
        JOIN sales f ON st.st_store_sk = f.f_store_sk
        GROUP BY r_name
        ORDER BY r_name
    """, ("r_name",)),
    # Syntactically bad: the highly selective brand filter sits two joins
    # away from the fact, so parse order materializes the full fact ⋈ item
    # result before filtering.  The search joins item ⋈ brand first.
    ("SN2", """
        SELECT b.b_name, SUM(f.f_qty) AS qty, COUNT(*) AS n
        FROM sales f
        JOIN item i ON f.f_item_sk = i.i_item_sk
        JOIN brand b ON i.i_brand_sk = b.b_brand_sk
        WHERE b.b_name = 'brand#7'
        GROUP BY b_name
        ORDER BY b_name
    """, ("b_name",)),
    # Syntactically bad for the ORDER BY: the fact's clustered date order
    # is only available when sales is the probe side; parse order probes
    # item and pays a full sort the search discharges.
    ("SN3", """
        SELECT f.f_date_sk, f.f_amount, i.i_price
        FROM item i
        JOIN sales f ON i.i_item_sk = f.f_item_sk
        WHERE i.i_price >= 150
        ORDER BY f_date_sk
    """, ("f_date_sk",)),
    # The full snowflake chain plus the Section 2.3 date shape: in od mode
    # the date_dim join is eliminated first, then the remaining three
    # relations are reordered around the selective region filter.
    ("SN4", """
        SELECT r.r_name, SUM(f.f_qty) AS qty, COUNT(*) AS n
        FROM sales f
        JOIN date_dim d ON f.f_date_sk = d.d_date_sk
        JOIN store st ON f.f_store_sk = st.st_store_sk
        JOIN region r ON st.st_region_sk = r.r_region_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
          AND r.r_name = 'Europe'
        GROUP BY r_name
        ORDER BY r_name
    """, ("r_name",)),
    # Stream-aggregate bait: grouping and ordering by the fact's clustered
    # key, with the fact parsed second — the search puts the date-ordered
    # access path on the probe side so the aggregate streams and the sort
    # disappears.
    ("SN5", """
        SELECT f.f_date_sk, SUM(f.f_qty) AS daily_qty
        FROM item i
        JOIN sales f ON i.i_item_sk = f.f_item_sk
        WHERE i.i_price >= 100
        GROUP BY f_date_sk
        ORDER BY f_date_sk
    """, ("f_date_sk",)),
    # Five relations across both chains with a mid-selectivity filter —
    # the widest DP instance in the set.
    ("SN6", """
        SELECT b.b_name, r.r_name, SUM(f.f_qty) AS qty
        FROM region r
        JOIN store st ON r.r_region_sk = st.st_region_sk
        JOIN sales f ON st.st_store_sk = f.f_store_sk
        JOIN item i ON f.f_item_sk = i.i_item_sk
        JOIN brand b ON i.i_brand_sk = b.b_brand_sk
        WHERE b.b_name IN ('brand#2', 'brand#4')
        GROUP BY b_name, r_name
        ORDER BY b_name, r_name
    """, ("b_name", "r_name")),
)


#: Skewed templates for the statistics subsystem: the fact's dates are
#: beta(2,2)-distributed (dense mid-calendar, thin tails), so uniform
#: min/max selectivity misestimates tail/center windows by up to an
#: order of magnitude, and the containment join heuristic cannot see
#: that the promo calendar overlaps only the thin tail of the fact's
#: key domain.  Each entry is (id, template, substitution keys) — the
#: template takes ``lo``/``hi`` surrogate-key window bounds via
#: ``.format`` (``Snowflake.sk_window``); templates without a window
#: ignore them.  ``SK1`` is the planted plan flip: under uniform
#: statistics the mild item filter (est ≈20% of the fact) looks cheaper
#: than the promo join (containment est ≈|f|·|p|/730 ≈ 24% of the
#: fact), so the search joins item first and drags ≈12k rows through
#: the promo hash; histogram statistics put the promo join at its true
#: ≈2% and flip the order, probing the promo hash first.
SNOWFLAKE_SKEWED_QUERIES: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = (
    # The planted flip: promo (thin-tail overlap) vs a mild item filter.
    ("SK1", """
        SELECT p.p_kind, COUNT(*) AS n, SUM(f.f_amount) AS amt
        FROM sales f
        JOIN item i ON f.f_item_sk = i.i_item_sk
        JOIN promo p ON f.f_date_sk = p.p_date_sk
        WHERE i.i_price >= 240
        GROUP BY p_kind
        ORDER BY p_kind
    """, ("p_kind",)),
    # Tail window: uniform overestimates ~10x (window/span vs true mass).
    ("SK2", """
        SELECT f.f_date_sk, f.f_amount, i.i_price
        FROM item i
        JOIN sales f ON i.i_item_sk = f.f_item_sk
        WHERE f.f_date_sk BETWEEN {lo} AND {hi}
          AND i.i_price >= 150
        ORDER BY f_date_sk
    """, ("f_date_sk",)),
    # Center window: uniform underestimates ~1.5x (beta(2,2) peak).
    ("SK3", """
        SELECT f.f_date_sk, f.f_amount, i.i_price
        FROM item i
        JOIN sales f ON i.i_item_sk = f.f_item_sk
        WHERE f.f_date_sk BETWEEN {lo} AND {hi}
          AND i.i_price >= 150
        ORDER BY f_date_sk
    """, ("f_date_sk",)),
    # Partial key-domain overlap, no window: containment vs merge.
    ("SK4", """
        SELECT f.f_date_sk, f.f_amount, p.p_kind
        FROM sales f
        JOIN promo p ON f.f_date_sk = p.p_date_sk
        ORDER BY f_date_sk
    """, ("f_date_sk",)),
    # Equality on the distribution peak: a heavy hitter vs rows/ndv.
    ("SK5", """
        SELECT f.f_date_sk, f.f_amount, st.st_city
        FROM sales f
        JOIN store st ON f.f_store_sk = st.st_store_sk
        WHERE f.f_date_sk = {lo}
        ORDER BY f_date_sk
    """, ("f_date_sk",)),
    # Equality deep in the tail: far fewer rows than rows/ndv.
    ("SK6", """
        SELECT f.f_date_sk, f.f_amount, st.st_city
        FROM sales f
        JOIN store st ON f.f_store_sk = st.st_store_sk
        WHERE f.f_date_sk = {lo}
        ORDER BY f_date_sk
    """, ("f_date_sk",)),
)


def skewed_query_sql(workload: "Snowflake") -> dict:
    """qid → instantiated SQL for every skewed template.

    Window positions are fractions of the calendar so the set scales with
    the workload: SK2 covers the thin opening tail, SK3 the dense
    beta(2,2) peak, SK5/SK6 probe single days at the peak and deep in the
    tail.  Shared by ``benchmarks/bench_stats.py`` and the regression
    gate in ``tests/harness/test_bench_regression.py`` so the committed
    Q-error claims and the live proxy always measure the same queries.
    """
    days = workload.days
    base = workload.sk_base
    windows = {
        "SK1": (0, 0),
        "SK4": (0, 0),
        "SK2": workload.sk_window(0, max(7, int(days * 0.06))),
        "SK3": workload.sk_window(int(days * 0.45), max(7, int(days * 0.10))),
        "SK5": (base + days // 2, base + days // 2),
        "SK6": (base + 2, base + 2),
    }
    return {
        qid: template.format(lo=windows[qid][0], hi=windows[qid][1])
        for qid, template, _ in SNOWFLAKE_SKEWED_QUERIES
    }

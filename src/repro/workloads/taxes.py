"""Example 5: the Taxes table — monotone brackets and payable amounts.

A progressive tax schedule: brackets rise with income, the payable amount
rises with income.  Hence ``[income] ↦ [bracket]`` and
``[income] ↦ [payable]``, and by Union (Theorem 2)
``[income] ↦ [bracket, payable]`` — so an ``ORDER BY bracket, payable``
can be answered by a tree index on ``income`` with no sort, the paper's
Example 5 plan.
"""
from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..core.dependency import Statement, fd, od
from ..engine.schema import Schema
from ..engine.types import DataType

__all__ = ["DEFAULT_BRACKETS", "taxes_schema", "generate_taxes", "taxes_ods", "build_taxes"]

#: (threshold, marginal rate) — a simplified progressive schedule.
DEFAULT_BRACKETS: Tuple[Tuple[int, float], ...] = (
    (0, 0.10),
    (11_000, 0.12),
    (44_725, 0.22),
    (95_375, 0.24),
    (182_100, 0.32),
    (231_250, 0.35),
    (578_125, 0.37),
)


def taxes_schema() -> Schema:
    return Schema.of(
        ("taxpayer_id", DataType.INT),
        ("income", DataType.INT),
        ("bracket", DataType.INT),
        ("rate", DataType.FLOAT),
        ("payable", DataType.FLOAT),
    )


def tax_of(income: int, brackets: Sequence[Tuple[int, float]] = DEFAULT_BRACKETS):
    """(bracket number, marginal rate, total payable) for an income."""
    payable = 0.0
    bracket = 0
    rate = brackets[0][1]
    for number, (threshold, marginal) in enumerate(brackets):
        upper = (
            brackets[number + 1][0] if number + 1 < len(brackets) else None
        )
        if income > threshold:
            taxed_to = income if upper is None else min(income, upper)
            payable += (taxed_to - threshold) * marginal
            bracket, rate = number + 1, marginal
        elif income == threshold and number == 0:
            bracket, rate = 1, marginal
    return bracket, rate, round(payable, 2)


def generate_taxes(rows: int = 10_000, seed: int = 7):
    """Random taxpayers with schedule-consistent brackets and payables."""
    rng = random.Random(seed)
    out: List[tuple] = []
    for taxpayer in range(1, rows + 1):
        income = int(rng.lognormvariate(11, 0.8))
        bracket, rate, payable = tax_of(income)
        out.append((taxpayer, income, bracket, rate, payable))
    return out


def taxes_ods() -> List[Statement]:
    """The Example 5 dependencies (with the Union composition)."""
    return [
        od("income", "bracket"),
        od("income", "payable"),
        od("income", "rate"),
        # by Union; declared explicitly so FD-mode sees it too
        od("income", "bracket,payable"),
        fd("income", "bracket,rate,payable"),
    ]


def build_taxes(database, rows: int = 10_000, seed: int = 7):
    """Create, load, constrain and index the Taxes table in a database."""
    from ..engine.table import Table

    table = Table("taxes", taxes_schema())
    table.load(generate_taxes(rows, seed), check=False)
    database.tables[table.name] = table
    for statement in taxes_ods():
        table.declare(statement)
    database.create_index("taxes_income", "taxes", ["income"], clustered=True)
    return table

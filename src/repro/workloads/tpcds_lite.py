"""TPC-DS-lite: a laptop-scale star schema for the Section 2.3 experiment.

The paper's prototype rewrote 13 TPC-DS queries whose shape is: a fact table
joined to ``date_dim`` *only* to evaluate a natural-date range predicate,
dates being recorded in the fact as surrogate keys.  This module generates
that exact shape — ``store_sales`` (+ small ``item``/``store`` dimensions)
over the shared date dimension of :mod:`repro.workloads.datedim` — plus the
thirteen query templates ``Q1 … Q13`` exercising the rewrite across
aggregation styles, extra joins, and predicate widths.

The reproduction contract is *shape*, not absolute numbers: every one of the
thirteen queries benefited in the paper (average gain 48%); here every one
must also win under the rewrite, with gains of a comparable order.
"""
from __future__ import annotations

import datetime
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.dependency import fd
from ..engine.database import Database
from ..engine.schema import Schema
from ..engine.table import Table
from ..engine.types import DataType
from .datedim import build_date_dim

__all__ = ["TpcdsLite", "build_tpcds_lite", "DATE_QUERIES"]


def store_sales_schema() -> Schema:
    return Schema.of(
        ("ss_sold_date_sk", DataType.INT),
        ("ss_item_sk", DataType.INT),
        ("ss_store_sk", DataType.INT),
        ("ss_customer_sk", DataType.INT),
        ("ss_quantity", DataType.INT),
        ("ss_sales_price", DataType.FLOAT),
        ("ss_net_profit", DataType.FLOAT),
    )


def item_schema() -> Schema:
    return Schema.of(
        ("i_item_sk", DataType.INT),
        ("i_category", DataType.STR),
        ("i_brand", DataType.STR),
        ("i_current_price", DataType.FLOAT),
    )


def store_schema() -> Schema:
    return Schema.of(
        ("s_store_sk", DataType.INT),
        ("s_state", DataType.STR),
        ("s_city", DataType.STR),
    )


@dataclass
class TpcdsLite:
    """The built workload: a database plus its generation parameters."""

    database: Database
    start: datetime.date
    days: int
    sales_rows: int
    sk_base: int

    def date_range(self, first_day: int, length_days: int) -> Tuple[str, str]:
        """An ISO (low, high) natural-date range inside the calendar."""
        low = self.start + datetime.timedelta(days=first_day)
        high = low + datetime.timedelta(days=length_days - 1)
        return low.isoformat(), high.isoformat()


_CATEGORIES = ("Books", "Electronics", "Home", "Music", "Shoes", "Sports")
_BRANDS = tuple(f"brand#{i}" for i in range(1, 21))
_STATES = ("CA", "NY", "TX", "WA", "IL", "FL")


def build_tpcds_lite(
    days: int = 365 * 3,
    sales_rows: int = 120_000,
    items: int = 200,
    stores: int = 12,
    seed: int = 42,
    start: datetime.date = datetime.date(1999, 1, 1),
) -> TpcdsLite:
    """Generate the star schema.

    ``store_sales`` records dates only as surrogate keys (as in TPC-DS);
    fact rows are indexed (clustered) on ``ss_sold_date_sk``, mirroring a
    date-partitioned fact table — an sk-range scan touching one contiguous
    band of the table is the "only the relevant partitions" effect.
    """
    rng = random.Random(seed)
    database = Database("tpcds_lite")
    build_date_dim(database, days=days, start=start)
    sk_base = database.table("date_dim").rows[0][0]

    item = Table("item", item_schema())
    item.load(
        (
            i,
            _CATEGORIES[i % len(_CATEGORIES)],
            _BRANDS[i % len(_BRANDS)],
            round(rng.uniform(1.0, 300.0), 2),
        )
        for i in range(1, items + 1)
    )
    database.tables["item"] = item
    item.declare(fd("i_item_sk", "i_category,i_brand,i_current_price"))
    database.create_index("item_pk", "item", ["i_item_sk"], clustered=True)

    store = Table("store", store_schema())
    store.load(
        (
            i,
            _STATES[i % len(_STATES)],
            f"city_{i}",
        )
        for i in range(1, stores + 1)
    )
    database.tables["store"] = store
    database.create_index("store_pk", "store", ["s_store_sk"], clustered=True)

    sales = Table("store_sales", store_sales_schema())
    rows: List[tuple] = []
    for _ in range(sales_rows):
        day_offset = int(rng.betavariate(2, 2) * (days - 1))
        rows.append(
            (
                sk_base + day_offset,
                rng.randint(1, items),
                rng.randint(1, stores),
                rng.randint(1, 5000),
                rng.randint(1, 20),
                round(rng.uniform(0.5, 500.0), 2),
                round(rng.uniform(-50.0, 250.0), 2),
            )
        )
    rows.sort(key=lambda row: row[0])  # clustered by date surrogate
    sales.load(rows)
    database.tables["store_sales"] = sales
    database.create_index(
        "store_sales_date", "store_sales", ["ss_sold_date_sk"], clustered=True
    )
    return TpcdsLite(database, start, days, sales_rows, sk_base)


#: The thirteen rewrite-eligible query templates.  Each takes the natural
#: date range (lo, hi) as ISO strings via ``.format(lo=..., hi=...)``.
DATE_QUERIES: Tuple[Tuple[str, str], ...] = (
    ("Q1", """
        SELECT SUM(ss_sales_price) AS revenue
        FROM store_sales ss JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
    """),
    ("Q2", """
        SELECT COUNT(*) AS cnt
        FROM store_sales ss JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
    """),
    ("Q3", """
        SELECT ss_store_sk, SUM(ss_quantity) AS qty
        FROM store_sales ss JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
        GROUP BY ss_store_sk
        ORDER BY ss_store_sk
    """),
    ("Q4", """
        SELECT ss_item_sk, SUM(ss_sales_price) AS revenue
        FROM store_sales ss JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
        GROUP BY ss_item_sk
        ORDER BY ss_item_sk
    """),
    ("Q5", """
        SELECT i.i_category, SUM(ss_sales_price) AS revenue
        FROM store_sales ss
        JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        JOIN item i ON ss.ss_item_sk = i.i_item_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
        GROUP BY i.i_category
        ORDER BY i.i_category
    """),
    ("Q6", """
        SELECT s.s_state, AVG(ss_net_profit) AS avg_profit
        FROM store_sales ss
        JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        JOIN store s ON ss.ss_store_sk = s.s_store_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
        GROUP BY s.s_state
        ORDER BY s.s_state
    """),
    ("Q7", """
        SELECT MAX(ss_sales_price) AS top_price, MIN(ss_sales_price) AS low_price
        FROM store_sales ss JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
    """),
    ("Q8", """
        SELECT ss_customer_sk, COUNT(*) AS trips
        FROM store_sales ss JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
        GROUP BY ss_customer_sk
        ORDER BY ss_customer_sk
    """),
    ("Q9", """
        SELECT ss_store_sk, ss_item_sk, SUM(ss_quantity) AS qty
        FROM store_sales ss JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
        GROUP BY ss_store_sk, ss_item_sk
        ORDER BY ss_store_sk, ss_item_sk
    """),
    ("Q10", """
        SELECT SUM(ss_net_profit) AS profit
        FROM store_sales ss JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
          AND ss_quantity >= 5
    """),
    ("Q11", """
        SELECT i.i_brand, COUNT(*) AS cnt
        FROM store_sales ss
        JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        JOIN item i ON ss.ss_item_sk = i.i_item_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
          AND i.i_current_price >= 100
        GROUP BY i.i_brand
        ORDER BY i.i_brand
    """),
    ("Q12", """
        SELECT AVG(ss_sales_price) AS avg_price
        FROM store_sales ss JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
          AND ss_store_sk = 3
    """),
    ("Q13", """
        SELECT ss_sold_date_sk, SUM(ss_sales_price) AS revenue
        FROM store_sales ss JOIN date_dim d ON ss.ss_sold_date_sk = d.d_date_sk
        WHERE d.d_date BETWEEN DATE '{lo}' AND DATE '{hi}'
        GROUP BY ss_sold_date_sk
        ORDER BY ss_sold_date_sk
    """),
)

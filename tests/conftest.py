"""Shared fixtures and helpers for the test suite."""
from __future__ import annotations

import random

import pytest

from repro.core.attrs import AttrList
from repro.core.relation import Relation


@pytest.fixture
def figure1() -> Relation:
    """The paper's Figure 1 instance (two rows over A..F)."""
    return Relation(
        AttrList.parse("A,B,C,D,E,F"),
        [(3, 2, 0, 4, 7, 9), (3, 2, 1, 3, 8, 9)],
        name="figure1",
    )


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


def make_relation(spec: str, rows) -> Relation:
    """Shorthand: ``make_relation("A,B", [(1,2), (3,4)])``."""
    return Relation(AttrList.parse(spec), list(rows))

"""The completeness construction: append, split(M), swap(M) (Section 4)."""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.armstrong import (
    append_tables,
    canonical_armstrong,
    paper_armstrong,
    split_table,
    swap_table,
)
from repro.core.attrs import AttrList, attrlist
from repro.core.dependency import compat, equiv, fd, od
from repro.core.inference import ODTheory
from repro.core.relation import Relation
from repro.core.satisfaction import find_split, find_swap, satisfies

NAMES = ("A", "B", "C", "D")
side = st.lists(st.sampled_from(NAMES), max_size=2, unique=True).map(AttrList)
ods = st.builds(od, side, side)


class TestAppend:
    """Definition 17 and the Figures 4–6 walkthrough."""

    def test_paper_figures_4_to_6(self):
        t1 = Relation(attrlist("A,B,C,D"), [(0, 0, 0, 0), (0, 0, 1, 1)])
        t2 = Relation(attrlist("A,B,C,D"), [(0, 1, 0, 0), (1, 0, 0, 0)])
        appended = append_tables(t1, t2)
        assert appended.rows == [
            (0, 0, 0, 0),
            (0, 0, 1, 1),
            (2, 3, 2, 2),
            (3, 2, 2, 2),
        ]

    def test_second_block_strictly_above_first(self):
        t1 = Relation(attrlist("A,B"), [(5, 7)])
        t2 = Relation(attrlist("A,B"), [(1, 3)])
        appended = append_tables(t1, t2)
        first, second = appended.rows
        assert max(first) < min(second)

    def test_lemma9_no_new_swaps(self):
        """Cross-block pairs ascend everywhere, so any OD over non-empty
        lists that held in both blocks still holds after append."""
        t1 = Relation(attrlist("A,B"), [(0, 0), (1, 1)])
        t2 = Relation(attrlist("A,B"), [(0, 0), (2, 2)])
        appended = append_tables(t1, t2)
        assert satisfies(appended, od("A", "B"))
        assert satisfies(appended, equiv("A", "B"))

    def test_constants_pinned(self):
        t1 = Relation(attrlist("A,B"), [(0, 5)])
        t2 = Relation(attrlist("A,B"), [(1, 5)])
        appended = append_tables(t1, t2, constant_attrs=frozenset({"B"}))
        assert [row[1] for row in appended.rows] == [5, 5]
        assert satisfies(appended, od("", "B"))

    def test_schema_mismatch_rejected(self):
        t1 = Relation(attrlist("A"), [])
        t2 = Relation(attrlist("B"), [])
        with pytest.raises(ValueError):
            append_tables(t1, t2)

    def test_empty_sides(self):
        t1 = Relation(attrlist("A"), [])
        t2 = Relation(attrlist("A"), [(1,), (2,)])
        assert append_tables(t1, t2).rows == [(1,), (2,)]
        assert append_tables(t2, t1).rows == [(1,), (2,)]


class TestSplitTable:
    def test_satisfies_theory(self):
        theory = ODTheory([fd("A", "B")])
        table = split_table(theory, attrlist("A,B,C"))
        assert satisfies(table, fd("A", "B"))

    def test_falsifies_non_implied_fd(self):
        theory = ODTheory([fd("A", "B")])
        table = split_table(theory, attrlist("A,B,C"))
        assert not satisfies(table, fd("B", "A"))
        assert not satisfies(table, fd("A", "C"))

    def test_no_swaps_introduced(self):
        """split(M) is all-ascending: no OD can fail by swap (Lemma 10)."""
        theory = ODTheory([fd("A", "B")])
        table = split_table(theory, attrlist("A,B,C"))
        for x, y in (("A", "B"), ("B", "C"), ("A", "C")):
            assert find_swap(table, od(x, y)) is None

    def test_respects_constants(self):
        theory = ODTheory([od("", "C"), fd("A", "B")])
        table = split_table(theory, attrlist("A,B,C"))
        assert satisfies(table, od("", "C"))


class TestSwapTable:
    def test_empty_context_swap(self):
        theory = ODTheory([od("A", "B")])
        table = swap_table(theory, attrlist("A,B,C"))
        # B ~ C is not implied: a swap between B and C must appear
        assert not satisfies(table, compat("B", "C"))
        # but the declared OD must survive
        assert satisfies(table, od("A", "B"))

    def test_contextual_swap(self):
        """[C,A] ~ [C,B] fails only within equal-C context when C |-> ...
        constructions recurse (Hypothesis 1)."""
        theory = ODTheory([compat("A", "B")])
        table = swap_table(theory, attrlist("A,B,C"))
        assert satisfies(table, compat("A", "B"))
        # C swaps against A in some context
        assert not satisfies(table, compat("C", "A"))

    def test_chain_groups_move_together(self):
        """With A~B and B~C and the chain-context premises, A's group in the
        Figure 9 construction carries its compatible partners."""
        theory = ODTheory(
            [compat("A", "B"), compat("B", "C"), compat("B,A", "B,C")]
        )
        table = swap_table(theory, attrlist("A,B,C"))
        for statement in theory.statements:
            assert satisfies(table, statement)


class TestPaperConstruction:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(ods, min_size=1, max_size=3))
    def test_satisfies_theory(self, premises):
        theory = ODTheory(premises)
        table = paper_armstrong(theory, AttrList(NAMES))
        for premise in premises:
            assert satisfies(table, premise)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(ods, min_size=1, max_size=3), st.lists(ods, min_size=1, max_size=8))
    def test_complete_on_samples(self, premises, goals):
        """The Section 4 theorem, empirically: the constructed table
        satisfies exactly the implied ODs."""
        theory = ODTheory(premises)
        table = paper_armstrong(theory, AttrList(NAMES))
        for goal in goals:
            assert satisfies(table, goal) == theory.implies(goal)


class TestCanonicalConstruction:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(ods, min_size=0, max_size=3), st.lists(ods, min_size=1, max_size=8))
    def test_exact(self, premises, goals):
        theory = ODTheory(premises)
        table = canonical_armstrong(theory, AttrList(NAMES))
        for premise in premises:
            assert satisfies(table, premise)
        for goal in goals:
            assert satisfies(table, goal) == theory.implies(goal)

    def test_constant_columns_pinned(self):
        theory = ODTheory([od("", "A")])
        table = canonical_armstrong(theory, attrlist("A,B"))
        position = table.column_position("A")
        assert len({row[position] for row in table.rows}) == 1

    def test_empty_theory_over_no_attrs(self):
        table = canonical_armstrong(ODTheory([]), AttrList())
        assert len(table.rows) >= 1


class TestAgreement:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(ods, min_size=1, max_size=2), st.lists(ods, min_size=1, max_size=6))
    def test_both_constructions_agree(self, premises, goals):
        """paper_armstrong and canonical_armstrong satisfy exactly the same
        statements — both are Armstrong relations for M."""
        theory = ODTheory(premises)
        paper = paper_armstrong(theory, AttrList(NAMES))
        canonical = canonical_armstrong(theory, AttrList(NAMES))
        for goal in goals:
            assert satisfies(paper, goal) == satisfies(canonical, goal)

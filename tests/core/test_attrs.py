"""Attribute-list machinery (Section 2.1 notation)."""
from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.attrs import EMPTY, AttrList, attrlist

names = st.sampled_from(["A", "B", "C", "D", "E"])
lists = st.lists(names, max_size=6).map(AttrList)


class TestConstruction:
    def test_parse_plain(self):
        assert attrlist("A, B, C") == AttrList(["A", "B", "C"])

    def test_parse_bracketed(self):
        assert AttrList.parse("[A,B]") == AttrList(["A", "B"])

    def test_parse_empty(self):
        assert AttrList.parse("[]") is EMPTY
        assert attrlist("  ") == EMPTY

    def test_parse_single(self):
        assert attrlist("year") == AttrList(["year"])

    def test_parse_rejects_bad_names(self):
        with pytest.raises(ValueError):
            AttrList.parse("A, 1bad")

    def test_rejects_non_strings(self):
        with pytest.raises(TypeError):
            AttrList([1, 2])

    def test_rejects_empty_name(self):
        with pytest.raises(TypeError):
            AttrList([""])

    def test_from_iterable_passthrough(self):
        original = AttrList(["A"])
        assert attrlist(original) is original


class TestAlgebra:
    def test_concat(self):
        assert attrlist("A,B") + attrlist("C") == attrlist("A,B,C")

    def test_concat_with_plain_list(self):
        assert attrlist("A") + ["B"] == attrlist("A,B")
        assert ["Z"] + attrlist("A") == attrlist("Z,A")

    def test_concat_returns_attrlist(self):
        assert isinstance(attrlist("A") + attrlist("B"), AttrList)

    def test_slice_returns_attrlist(self):
        assert isinstance(attrlist("A,B,C")[1:], AttrList)
        assert attrlist("A,B,C")[1:] == attrlist("B,C")

    def test_head_tail(self):
        x = attrlist("A,B,C")
        assert x.head() == "A"
        assert x.tail() == attrlist("B,C")

    def test_head_of_empty_raises(self):
        with pytest.raises(IndexError):
            EMPTY.head()
        with pytest.raises(IndexError):
            EMPTY.tail()

    def test_attrs_is_set(self):
        assert attrlist("A,B,A").attrs == frozenset({"A", "B"})

    def test_without(self):
        assert attrlist("A,B,C,B").without(["B"]) == attrlist("A,C")

    def test_common_prefix(self):
        assert attrlist("A,B,C").common_prefix(attrlist("A,B,D")) == attrlist("A,B")
        assert attrlist("A").common_prefix(attrlist("B")) == EMPTY


class TestNormalization:
    def test_normalized_removes_later_duplicates(self):
        assert attrlist("A,B,A,C,B").normalized() == attrlist("A,B,C")

    def test_normalized_idempotent(self):
        x = attrlist("A,B,A")
        assert x.normalized().normalized() == x.normalized()

    def test_is_normalized(self):
        assert attrlist("A,B").is_normalized()
        assert not attrlist("A,A").is_normalized()

    @given(lists)
    def test_normalized_preserves_first_occurrence_order(self, x):
        normalized = x.normalized()
        assert normalized.is_normalized()
        assert list(normalized) == sorted(
            set(x), key=lambda name: x.index(name)
        )


class TestStructure:
    def test_prefixes(self):
        assert list(attrlist("A,B").prefixes()) == [
            EMPTY, attrlist("A"), attrlist("A,B")
        ]

    def test_suffixes(self):
        assert list(attrlist("A,B").suffixes()) == [
            attrlist("A,B"), attrlist("B"), EMPTY
        ]

    def test_is_prefix_of(self):
        assert attrlist("A,B").is_prefix_of(attrlist("A,B,C"))
        assert EMPTY.is_prefix_of(attrlist("A"))
        assert not attrlist("B").is_prefix_of(attrlist("A,B"))

    def test_is_suffix_of(self):
        assert attrlist("B,C").is_suffix_of(attrlist("A,B,C"))
        assert EMPTY.is_suffix_of(attrlist("A"))
        assert not attrlist("A").is_suffix_of(attrlist("A,B"))

    def test_contiguous_sublists(self):
        subs = list(attrlist("A,B,C").contiguous_sublists())
        assert attrlist("B,C") in subs
        assert attrlist("A,B,C") in subs
        assert len(subs) == 6  # 3 + 2 + 1

    def test_contiguous_sublists_max_len(self):
        subs = list(attrlist("A,B,C").contiguous_sublists(max_len=1))
        assert subs == [attrlist("A"), attrlist("B"), attrlist("C")]

    def test_permutations(self):
        perms = set(attrlist("A,B").permutations())
        assert perms == {attrlist("A,B"), attrlist("B,A")}

    @given(lists)
    def test_every_prefix_is_prefix(self, x):
        for prefix in x.prefixes():
            assert prefix.is_prefix_of(x)

    @given(lists)
    def test_every_suffix_is_suffix(self, x):
        for suffix in x.suffixes():
            assert suffix.is_suffix_of(x)

    @given(lists, lists)
    def test_concat_prefix_suffix(self, x, y):
        assert x.is_prefix_of(x + y)
        assert y.is_suffix_of(x + y)


class TestHashing:
    def test_usable_as_dict_key(self):
        d = {attrlist("A,B"): 1}
        assert d[AttrList(["A", "B"])] == 1

    def test_equality_with_tuple(self):
        assert attrlist("A,B") == ("A", "B")

"""Soundness of OD1–OD6 (Theorem 1), verified two independent ways:

1. against the exact sign-vector oracle at random instantiations;
2. against random concrete relations (the definitional semantics).
"""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import axioms
from repro.core.attrs import AttrList
from repro.core.axioms import (
    InvalidRuleApplication,
    canon,
    chain,
    compat_elim,
    compat_intro,
    equiv_intro,
    equiv_left,
    equiv_right,
    equiv_trans,
    normalization,
    prefix,
    reflexivity,
    suffix,
    transitivity,
)
from repro.core.dependency import OrderDependency, compat, equiv, od, to_ods
from repro.core.inference import ODTheory
from repro.core.satisfaction import satisfies
from repro.workloads.random_instances import random_relation

NAMES = ("A", "B", "C", "D")
side = st.lists(st.sampled_from(NAMES), max_size=2, unique=True).map(AttrList)


def oracle_sound(premises, conclusion) -> bool:
    return ODTheory(tuple(premises)).implies(conclusion)


def relation_sound(premises, conclusion, seed: int) -> bool:
    """On a random relation: premises hold ⇒ conclusion holds."""
    relation = random_relation(NAMES, rows=8, domain=3, rng=seed)
    if all(satisfies(relation, p) for p in premises):
        return satisfies(relation, conclusion)
    return True


class TestReflexivity:
    @given(side, side)
    def test_sound(self, x, y):
        assert oracle_sound([], reflexivity(x, y))

    def test_shape(self):
        assert reflexivity(AttrList(["A"]), AttrList(["B"])) == od("A,B", "A")


class TestPrefix:
    @given(side, side, side)
    def test_sound(self, x, y, z):
        premise = od(x, y)
        assert oracle_sound([premise], prefix(premise, z))

    def test_shape(self):
        assert prefix(od("A", "B"), AttrList(["Z"])) == od("Z,A", "Z,B")

    def test_rejects_non_od(self):
        with pytest.raises(InvalidRuleApplication):
            prefix(equiv("A", "B"), AttrList(["Z"]))


class TestNormalization:
    @given(side, side, side, side)
    def test_sound(self, w, x, y, v):
        assert oracle_sound([], normalization(w, x, y, v))

    def test_shape(self):
        conclusion = normalization(
            AttrList(["W"]), AttrList(["X"]), AttrList(["Y"]), AttrList(["V"])
        )
        assert conclusion == equiv("W,X,Y,X,V", "W,X,Y,V")


class TestTransitivity:
    @given(side, side, side)
    def test_sound(self, x, y, z):
        first, second = od(x, y), od(y, z)
        assert oracle_sound([first, second], transitivity(first, second))

    def test_middle_mismatch_rejected(self):
        with pytest.raises(InvalidRuleApplication):
            transitivity(od("A", "B"), od("C", "D"))


class TestSuffix:
    @given(side, side)
    def test_sound(self, x, y):
        premise = od(x, y)
        assert oracle_sound([premise], suffix(premise))

    def test_shape(self):
        assert suffix(od("A", "B")) == equiv("A", "B,A")

    @given(side, side, st.integers(0, 10_000))
    def test_relation_level(self, x, y, seed):
        premise = od(x, y)
        assert relation_sound([premise], suffix(premise), seed)


class TestChain:
    def test_single_link(self):
        premises = [compat("A", "B"), compat("B", "C"), compat("B,A", "B,C")]
        conclusion = chain(premises, AttrList(["A"]), [AttrList(["B"])], AttrList(["C"]))
        assert conclusion == compat("A", "C")
        assert oracle_sound(premises, conclusion)

    def test_two_links(self):
        x, z = AttrList(["A"]), AttrList(["D"])
        links = [AttrList(["B"]), AttrList(["C"])]
        premises = [
            compat("A", "B"), compat("B", "C"), compat("C", "D"),
            compat("B,A", "B,D"), compat("C,A", "C,D"),
        ]
        conclusion = chain(premises, x, links, z)
        assert conclusion == compat("A", "D")
        assert oracle_sound(premises, conclusion)

    def test_missing_premise_rejected(self):
        premises = [compat("A", "B"), compat("B", "C")]
        with pytest.raises(InvalidRuleApplication):
            chain(premises, AttrList(["A"]), [AttrList(["B"])], AttrList(["C"]))

    def test_empty_links_rejected(self):
        with pytest.raises(InvalidRuleApplication):
            chain([], AttrList(["A"]), [], AttrList(["C"]))

    def test_figure3_pattern_is_contradictory(self):
        """Figure 3: a swap between A and C alongside the chain premises is
        unsatisfiable — the soundness intuition of Lemma 7."""
        premises = [compat("A", "B"), compat("B", "C"), compat("B,A", "B,C")]
        theory = ODTheory(premises)
        # the 2-row pattern of Figure 3: A ascends, C descends, B must both
        # follow A and not swap with C in B's context — impossible.
        assert theory.counterexample(compat("A", "C")) is None


class TestStructuralRules:
    def test_equiv_roundtrip(self):
        e = equiv_intro(od("A", "B"), od("B", "A"))
        assert e == equiv("A", "B")
        assert equiv_left(e) == od("A", "B")
        assert equiv_right(e) == od("B", "A")

    def test_equiv_intro_rejects_non_converse(self):
        with pytest.raises(InvalidRuleApplication):
            equiv_intro(od("A", "B"), od("A", "C"))

    def test_equiv_trans_shared_sides(self):
        assert equiv_trans(equiv("A", "B"), equiv("B", "C")) == equiv("A", "C")
        assert equiv_trans(equiv("A", "B"), equiv("C", "B")) == equiv("A", "C")
        with pytest.raises(InvalidRuleApplication):
            equiv_trans(equiv("A", "B"), equiv("C", "D"))

    def test_compat_roundtrip(self):
        c = compat("A", "B")
        assert compat_elim(c) == equiv("A,B", "B,A")
        assert compat_intro(compat_elim(c), AttrList(["A"]), AttrList(["B"])) == c

    def test_compat_intro_validates(self):
        with pytest.raises(InvalidRuleApplication):
            compat_intro(equiv("A", "B"), AttrList(["A"]), AttrList(["B"]))


class TestCanon:
    def test_equivalence_symmetric(self):
        assert canon(equiv("A", "B")) == canon(equiv("B", "A"))

    def test_compat_equals_defining_equiv(self):
        assert canon(compat("A", "B")) == canon(equiv("A,B", "B,A"))

    def test_distinct_ods_differ(self):
        assert canon(od("A", "B")) != canon(od("B", "A"))

"""Theorem 16/17 — soundness and completeness — as executable experiments.

* Soundness: every rule application's conclusion holds in every model of
  its premises (sampled via random relations *and* exhaustively via sign
  vectors).
* Completeness over FDs (Theorem 16): the OD oracle agrees exactly with
  Armstrong closure on FD implication.
* Completeness over ODs (Theorem 17): for random theories, the constructed
  Armstrong relation separates implied from non-implied ODs.
"""
from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.armstrong import paper_armstrong
from repro.core.attrs import AttrList
from repro.core.dependency import FunctionalDependency, od
from repro.core.inference import ODTheory
from repro.core.satisfaction import satisfies
from repro.fd.closure import attribute_closure, fd_implies
from repro.workloads.random_instances import random_od_set

NAMES = ("A", "B", "C")

fd_sides = st.lists(st.sampled_from(NAMES), max_size=2, unique=True)
fds = st.builds(FunctionalDependency, fd_sides, fd_sides)


class TestFDCompleteness:
    """Theorem 16: the OD system decides FD implication exactly."""

    @settings(max_examples=150, deadline=None)
    @given(st.lists(fds, max_size=3), fds)
    def test_oracle_matches_armstrong_closure(self, premises, goal):
        oracle = ODTheory(premises).implies(goal)
        classical = fd_implies(premises, goal)
        assert oracle == classical

    def test_armstrong_axioms_derivable(self):
        from repro.fd.bridge import armstrong_rules_via_ods

        for x, y, z in itertools.permutations((("A",), ("B",), ("C",)), 3):
            assert armstrong_rules_via_ods(x, y, z) == (True, True, True)

    @settings(max_examples=80, deadline=None)
    @given(st.lists(fds, max_size=3), st.sets(st.sampled_from(NAMES), max_size=2))
    def test_fd_closure_matches(self, premises, base):
        theory = ODTheory(premises)
        expected = attribute_closure(base, premises) & set(NAMES) | set(base)
        got = theory.fd_closure(base)
        # the classical closure may mention attributes outside the theory;
        # compare on the mentioned universe plus the base
        universe = set(theory.attributes) | set(base)
        assert got == (expected & universe) | set(base)


class TestODCompleteness:
    """Theorem 17 at random theories: the Armstrong table is a perfect
    separator for implication."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_theories(self, seed):
        rng = random.Random(seed)
        premises = random_od_set(NAMES, count=rng.randint(1, 3), rng=rng)
        theory = ODTheory(premises)
        table = paper_armstrong(theory, AttrList(NAMES))
        for premise in premises:
            assert satisfies(table, premise)
        # exhaustive over short candidate ODs
        lists = [
            AttrList(p)
            for k in range(0, 3)
            for p in itertools.permutations(NAMES, k)
        ]
        for lhs in lists:
            for rhs in lists:
                candidate = od(lhs, rhs)
                assert satisfies(table, candidate) == theory.implies(candidate), (
                    f"M={premises}, candidate={candidate}"
                )


class TestSoundnessSweep:
    """Theorem 1 in bulk: exhaustive sign-vector validation of every axiom
    and theorem registry entry at a fixed instantiation grid."""

    def test_all_rules_sound_on_grid(self):
        from repro.core.axioms import AXIOMS
        from repro.core.theorems import THEOREMS
        from repro.core.dependency import equiv, compat

        grid = [AttrList(p) for k in (0, 1, 2) for p in itertools.permutations(("A", "B"), k)]
        # spot-check the high-traffic rules across the grid
        from repro.core.theorems import (
            augmentation, union, eliminate, left_eliminate, path, drop,
        )
        from repro.core.inference import implies

        for x in grid:
            for y in grid:
                premise = od(x, y)
                assert implies([premise], augmentation(premise, AttrList(["C"])))
                assert implies(
                    [premise], eliminate(premise, AttrList(["C"]), AttrList(), AttrList())
                )
                assert implies(
                    [premise], left_eliminate(premise, AttrList(["C"]), AttrList())
                )
                for z in grid:
                    other = od(x, z)
                    assert implies([premise, other], union(premise, other))

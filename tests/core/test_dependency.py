"""Dependency statement types and their OD expansions."""
from __future__ import annotations

import pytest

from repro.core.attrs import AttrList, attrlist
from repro.core.dependency import (
    FunctionalDependency,
    OrderCompatibility,
    OrderDependency,
    OrderEquivalence,
    compat,
    equiv,
    expand_all,
    fd,
    od,
    parse_statement,
    to_ods,
)


class TestOrderDependency:
    def test_construction_from_specs(self):
        dependency = od("A,B", "C")
        assert dependency.lhs == attrlist("A,B")
        assert dependency.rhs == attrlist("C")

    def test_attributes(self):
        assert od("A,B", "B,C").attributes == {"A", "B", "C"}

    def test_reversed(self):
        assert od("A", "B").reversed() == od("B", "A")

    def test_normalized(self):
        assert od("A,B,A", "C,C").normalized() == od("A,B", "C")

    def test_fd_facet(self):
        assert od("A", "B,C").fd_facet() == od("A", "A,B,C")

    def test_hashable(self):
        assert len({od("A", "B"), od("A", "B")}) == 1

    def test_empty_sides(self):
        dependency = od("", "")
        assert dependency.lhs == AttrList()


class TestEquivalence:
    def test_ods(self):
        forward, backward = equiv("A", "B").ods()
        assert forward == od("A", "B")
        assert backward == od("B", "A")


class TestCompatibility:
    def test_defining_equivalence(self):
        c = compat("A", "B")
        assert c.equivalence() == equiv("A,B", "B,A")

    def test_ods(self):
        assert set(to_ods(compat("A", "B"))) == {od("A,B", "B,A"), od("B,A", "A,B")}


class TestFunctionalDependency:
    def test_sets_not_lists(self):
        assert fd("B,A", "C") == fd("A,B", "C")

    def test_deduplication(self):
        assert fd("A,A", "B").lhs == ("A",)

    def test_as_od_theorem13(self):
        dependency = fd("A,B", "C").as_od()
        assert dependency.lhs == attrlist("A,B")
        assert dependency.rhs == attrlist("A,B,C")

    def test_attributes(self):
        assert fd("A", "B").attributes == {"A", "B"}


class TestExpansion:
    def test_to_ods_od(self):
        assert to_ods(od("A", "B")) == (od("A", "B"),)

    def test_to_ods_rejects_junk(self):
        with pytest.raises(TypeError):
            to_ods("not a statement")

    def test_expand_all(self):
        out = expand_all([od("A", "B"), equiv("C", "D")])
        assert len(out) == 3


class TestParsing:
    def test_parse_od(self):
        assert parse_statement("[A,B] |-> [C]") == od("A,B", "C")

    def test_parse_equiv(self):
        assert parse_statement("[A] <-> [B]") == equiv("A", "B")

    def test_parse_compat(self):
        assert parse_statement("[A] ~ [B]") == compat("A", "B")

    def test_parse_fd(self):
        assert parse_statement("A,B -> C") == fd("A,B", "C")

    def test_parse_error(self):
        with pytest.raises(ValueError):
            parse_statement("A >= B")

    def test_roundtrip_strings(self):
        for statement in (od("A,B", "C"), equiv("A", "B"), compat("A", "B")):
            assert parse_statement(str(statement).replace("[", " [")) == statement

"""The implication oracle: exactness, witnesses, derived queries."""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attrs import AttrList, attrlist
from repro.core.dependency import compat, equiv, fd, od
from repro.core.inference import (
    ODTheory,
    TooManyAttributes,
    counterexample,
    implies,
    is_trivial,
)
from repro.core.satisfaction import satisfies, satisfies_naive

NAMES = ("A", "B", "C", "D")
side = st.lists(st.sampled_from(NAMES), max_size=2, unique=True).map(AttrList)
ods = st.builds(od, side, side)
od_sets = st.lists(ods, min_size=0, max_size=3)


class TestAxiomValidity:
    """Every axiom schema instance must be oracle-implied (soundness) and
    the classic non-theorems refuted."""

    def test_reflexivity(self):
        assert is_trivial(od("A,B", "A"))
        assert is_trivial(od("A,B,C", "A,B"))

    def test_reflexivity_converse_fails(self):
        assert not is_trivial(od("A", "A,B"))

    def test_prefix(self):
        assert implies([od("A", "B")], od("Z,A", "Z,B"))

    def test_normalization(self):
        assert is_trivial(equiv("A,B,C,B", "A,B,C"))
        assert is_trivial(equiv("A,B,A", "A,B"))

    def test_transitivity(self):
        assert implies([od("A", "B"), od("B", "C")], od("A", "C"))

    def test_suffix(self):
        assert implies([od("A", "B")], equiv("A", "B,A"))

    def test_chain_instance(self):
        # n = 1: A~B, B~C, BA~BC  ==>  A~C
        premises = [compat("A", "B"), compat("B", "C"), compat("B,A", "B,C")]
        assert implies(premises, compat("A", "C"))

    def test_chain_needs_context_premise(self):
        # without BA~BC the conclusion fails (Figure 3's scenario)
        premises = [compat("A", "B"), compat("B", "C")]
        assert not implies(premises, compat("A", "C"))


class TestClassicNonImplications:
    def test_od_is_directional(self):
        assert not implies([od("A", "B")], od("B", "A"))

    def test_rhs_permutation_invalid(self):
        assert not implies([od("A", "C,D")], od("A", "D,C"))

    def test_lhs_permutation_invalid(self):
        assert not implies([od("A,B", "C")], od("B,A", "C"))

    def test_fd_does_not_give_od(self):
        assert not implies([fd("A", "B")], od("A", "B"))

    def test_od_gives_fd(self):
        # Lemma 1
        assert implies([od("A", "B")], fd("A", "B"))


class TestCounterexamples:
    @settings(max_examples=100)
    @given(od_sets, ods)
    def test_witness_is_sound(self, premises, goal):
        theory = ODTheory(premises)
        witness = theory.counterexample(goal)
        if witness is None:
            assert theory.implies(goal)
        else:
            assert len(witness.rows) == 2
            for premise in premises:
                assert satisfies_naive(witness, premise)
            assert not satisfies_naive(witness, goal)

    def test_none_when_implied(self):
        assert counterexample([od("A", "B")], od("A", "B")) is None


class TestSmallModelProperty:
    """The oracle (2-row models) agrees with satisfaction on arbitrary
    instances: implied statements hold on every satisfying relation."""

    @settings(max_examples=60)
    @given(
        od_sets,
        ods,
        st.lists(
            st.tuples(*(st.integers(0, 2) for _ in NAMES)), max_size=6
        ),
    )
    def test_implied_holds_on_models(self, premises, goal, rows):
        from repro.core.relation import Relation

        relation = Relation(AttrList(NAMES), rows)
        if not all(satisfies(relation, p) for p in premises):
            return
        if implies(premises, goal):
            assert satisfies(relation, goal)


class TestDerivedQueries:
    def test_constants(self):
        theory = ODTheory([od("", "A"), od("A", "B")])
        assert theory.is_constant("A")
        assert theory.is_constant("B")  # [] |-> A |-> B
        assert theory.constants() == {"A", "B"}

    def test_order_compatible(self):
        theory = ODTheory([od("A", "B")])
        assert theory.order_compatible(attrlist("A"), attrlist("B"))
        assert not ODTheory([]).order_compatible(attrlist("A"), attrlist("B")) is True or True

    def test_equivalent(self):
        theory = ODTheory([od("month", "quarter")])
        assert theory.equivalent(
            attrlist("year,quarter,month"), attrlist("year,month")
        )

    def test_fd_closure(self):
        theory = ODTheory([fd("A", "B"), fd("B", "C")])
        assert theory.fd_closure(["A"]) == {"A", "B", "C"}
        assert theory.fd_closure(["B"]) == {"B", "C"}

    def test_fd_holds_string(self):
        theory = ODTheory([fd("A", "B")])
        assert theory.fd_holds("A -> B")
        with pytest.raises(TypeError):
            theory.fd_holds("[A] |-> [B]")

    def test_compatibility_graph(self):
        theory = ODTheory([od("A", "B")])
        graph = theory.compatibility_graph()
        assert "B" in graph["A"]

    def test_extended(self):
        theory = ODTheory([od("A", "B")])
        extended = theory.extended([od("B", "C")])
        assert extended.implies(od("A", "C"))
        assert not theory.implies(od("A", "C"))


class TestComponentFiltering:
    def test_disconnected_premises_ignored_for_speed(self):
        # 28 chained attributes far beyond naive 3^n, decided instantly
        premises = [od(f"c{i}", f"c{i+1}") for i in range(27)]
        theory = ODTheory(premises, max_attributes=40)
        assert theory.implies(od("c0", "c9"))
        assert not theory.implies(od("c9", "c0"))

    def test_witness_satisfies_disconnected_premises(self):
        theory = ODTheory([od("A", "B"), od("X", "Y")])
        witness = theory.counterexample(od("B", "A"))
        assert satisfies(witness, od("X", "Y"))

    def test_budget_guard(self):
        premises = [od("a0", f"a{i}") for i in range(1, 12)]
        theory = ODTheory(premises, max_attributes=5)
        with pytest.raises(TooManyAttributes):
            theory.implies(od("a0", "a1"))


class TestModels:
    def test_models_satisfy_theory(self):
        from repro.core.signs import statement_holds

        theory = ODTheory([od("A", "B")])
        models = list(theory.models(("A", "B")))
        assert models  # at least the all-zero vector
        for sigma in models:
            assert statement_holds(sigma, od("A", "B"))
        # exactly the vectors where od holds: 9 total minus violations
        violating = [(0, -1), (0, 1), (-1, 1), (1, -1)]
        assert len(models) == 9 - len(violating)


class TestIrreducibleCover:
    def test_removes_transitive_redundancy(self):
        from repro.core.inference import irreducible_cover

        statements = [od("A", "B"), od("B", "C"), od("A", "C")]
        cover = irreducible_cover(statements)
        assert od("A", "C") not in cover
        assert len(cover) == 2

    def test_equivalent_to_original(self):
        from repro.core.inference import irreducible_cover

        statements = [od("A", "B"), od("B", "C"), od("A", "C"), od("A,B", "C")]
        cover = irreducible_cover(statements)
        full = ODTheory(statements)
        reduced = ODTheory(cover)
        for statement in statements:
            assert reduced.implies(statement)
        for statement in cover:
            assert full.implies(statement)

    def test_no_redundancy_remains(self):
        from repro.core.inference import irreducible_cover

        cover = irreducible_cover([od("A", "B"), od("B", "C"), od("C", "A")])
        for i, statement in enumerate(cover):
            rest = cover[:i] + cover[i + 1:]
            assert not ODTheory(rest).implies(statement)

    def test_trivial_statements_dropped(self):
        from repro.core.inference import irreducible_cover

        cover = irreducible_cover([od("A,B", "A"), od("A", "C")])
        assert cover == (od("A", "C"),)

"""Oracle memoization: cached answers must be bit-identical to uncached
ones (witnesses included), fast paths must be sound, caches must be bounded."""
from __future__ import annotations

import random

import pytest

from repro.core.dependency import equiv, od
from repro.core.inference import ODTheory, TooManyAttributes
from repro.workloads.random_instances import random_od, random_od_set

NAMES = ("A", "B", "C", "D", "E")


class TestCacheParity:
    """Memoized implies()/counterexample() over a randomized theory corpus
    agree exactly with a cache-disabled oracle — and with themselves when
    asked twice (the second answer coming from the cache)."""

    def test_randomized_corpus(self):
        rng = random.Random(0x0D)
        for trial in range(40):
            premises = random_od_set(NAMES, count=rng.randint(0, 4), rng=rng)
            cached = ODTheory(premises)
            uncached = ODTheory(premises, result_cache_size=0)
            goals = [random_od(NAMES, rng=rng) for _ in range(6)]
            for goal in goals + goals:  # second pass: answers from the cache
                assert cached.implies(goal) == uncached.implies(goal), (
                    premises,
                    goal,
                )
                cw = cached.counterexample(goal)
                uw = uncached.counterexample(goal)
                if cw is None:
                    assert uw is None
                else:
                    assert uw is not None
                    assert cw.attributes == uw.attributes
                    assert cw.rows == uw.rows

    def test_disabled_cache_never_stores(self):
        theory = ODTheory([od("A", "B")], result_cache_size=0)
        theory.implies(od("A", "C"))
        theory.implies(od("A", "C"))
        stats = theory.stats()
        assert stats["cache_hits"] == 0 and stats["cache_misses"] == 0
        assert stats["enumerations"] == 2
        assert stats["result_cache_size"] == 0


class TestCounters:
    def test_repeat_query_hits(self):
        theory = ODTheory([od("A", "B"), od("B", "C")])
        goal = od("A", "C")
        assert theory.implies(goal)
        before = theory.stats()
        assert theory.implies(goal)
        after = theory.stats()
        assert after["cache_hits"] == before["cache_hits"] + 1
        assert after["enumerations"] == before["enumerations"]
        assert after["hit_rate"] > 0

    def test_canonicalization_shares_entries(self):
        theory = ODTheory([od("A", "B")])
        assert theory.implies(od("A", "A,B"))
        before = theory.stats()
        # normalization makes [A,A] |-> [A,A,B,B] the same canonical goal
        assert theory.implies(od("A,A", "A,A,B,B"))
        after = theory.stats()
        assert after["cache_hits"] == before["cache_hits"] + 1

    def test_trivial_fast_path(self):
        theory = ODTheory([od("A", "B")])
        before = theory.stats()
        assert theory.implies(od("A,B", "A"))  # Reflexivity: rhs prefixes lhs
        assert theory.implies(equiv("A,B,B", "A,B"))  # Normalization
        after = theory.stats()
        assert after["fast_path"] == before["fast_path"] + 2
        assert after["enumerations"] == before["enumerations"]

    def test_constant_fast_path_learns(self):
        theory = ODTheory([od("", "A"), od("B", "C")])
        assert theory.is_constant("A")  # enumerates once, learns A constant
        before = theory.stats()
        # [B] |-> [B, A]: dropping the known constant A leaves rhs = prefix
        assert theory.implies(od("B", "B,A"))
        after = theory.stats()
        assert after["fast_path"] == before["fast_path"] + 1
        assert after["enumerations"] == before["enumerations"]
        assert after["known_constants"] >= 1

    def test_reset_stats_keeps_cache(self):
        theory = ODTheory([od("A", "B")])
        theory.implies(od("B", "A"))
        theory.reset_stats()
        stats = theory.stats()
        assert stats["implies_calls"] == 0
        assert stats["result_cache_size"] == 1
        theory.implies(od("B", "A"))
        assert theory.stats()["cache_hits"] == 1


class TestBoundedCaches:
    def test_result_cache_is_lru_bounded(self):
        theory = ODTheory([od("A", "B")], result_cache_size=4)
        for i in range(10):
            theory.implies(od("A", f"X{i}"))
        assert theory.stats()["result_cache_size"] <= 4

    def test_compiled_cache_is_lru_bounded(self):
        # distinct attribute components -> distinct compiled-premise sets
        premises = [od(f"a{i}", f"b{i}") for i in range(12)]
        theory = ODTheory(premises, compiled_cache_size=4)
        for i in range(12):
            theory.implies(od(f"b{i}", f"a{i}"))
        assert theory.stats()["compiled_cache_size"] <= 4

    def test_budget_guard_still_raises_every_time(self):
        premises = [od("a0", f"a{i}") for i in range(1, 12)]
        theory = ODTheory(premises, max_attributes=5)
        for _ in range(2):  # the raise must not be cached away
            with pytest.raises(TooManyAttributes):
                theory.implies(od("a0", "a1"))


class TestWitnessSoundness:
    """Cached witnesses stay genuine counterexamples."""

    def test_witness_refutes_and_models_theory(self):
        from repro.core.satisfaction import satisfies_naive

        rng = random.Random(7)
        for _ in range(20):
            premises = random_od_set(NAMES, count=rng.randint(0, 3), rng=rng)
            theory = ODTheory(premises)
            goal = random_od(NAMES, rng=rng)
            for _ in range(2):  # second call is served by the cache
                witness = theory.counterexample(goal)
                if witness is None:
                    assert theory.implies(goal)
                    continue
                assert not satisfies_naive(witness, goal)
                for premise in premises:
                    assert satisfies_naive(witness, premise)

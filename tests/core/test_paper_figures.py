"""Every concrete figure and worked example in the paper, verbatim (E1)."""
from __future__ import annotations

import pytest

from repro.core.attrs import attrlist
from repro.core.dependency import compat, equiv, od
from repro.core.inference import ODTheory, implies
from repro.core.satisfaction import find_swap, satisfies
from repro.core.theorems import path, union


class TestFigure1:
    """The running instance over A..F with Examples 2 and 3."""

    def test_example2_holds(self, figure1):
        assert satisfies(figure1, od("A,B,C", "F,E,D"))

    def test_example2_falsified(self, figure1):
        assert not satisfies(figure1, od("A,B,C", "F,D,E"))

    def test_example3_holds(self, figure1):
        assert satisfies(figure1, compat("A,B", "F,C"))

    def test_example3_falsified(self, figure1):
        assert not satisfies(figure1, compat("A,C", "F,D"))

    def test_example3_violation_is_a_swap(self, figure1):
        # [A,C] ~ [F,D] fails via a swap between the two orderings
        forward, backward = compat("A,C", "F,D").ods()
        assert (
            find_swap(figure1, forward) is not None
            or find_swap(figure1, backward) is not None
        )


class TestExample1:
    """The introduction's query: month |-> quarter licenses dropping
    DEQUARTER from both GROUP BY and ORDER BY."""

    THEORY = ODTheory([od("d_moy", "d_qoy")])

    def test_orderby_rewrite(self):
        assert self.THEORY.implies(
            equiv("d_year,d_qoy,d_moy", "d_year,d_moy")
        )

    def test_groupby_rewrite_fd_side(self):
        from repro.core.dependency import fd

        assert self.THEORY.implies(fd("d_moy", "d_qoy"))

    def test_fd_alone_insufficient(self):
        """The paper's central observation: the FD month → quarter does NOT
        justify the order-by rewrite."""
        from repro.core.dependency import fd

        fd_only = ODTheory([fd("d_moy", "d_qoy")])
        assert not fd_only.implies(equiv("d_year,d_qoy,d_moy", "d_year,d_moy"))

    def test_month_names_order_wrong(self):
        """April < January < September lexicographically: a month-name
        column is determined by month number yet not ordered by it."""
        from repro.core.attrs import AttrList
        from repro.core.relation import Relation
        from repro.core.dependency import fd

        rows = [(1, "January"), (4, "April"), (9, "September")]
        r = Relation(AttrList(["moy", "name"]), rows)
        assert satisfies(r, fd("moy", "name"))
        assert not satisfies(r, od("moy", "name"))


class TestExample4:
    """Figure 2 path composition via Theorem 10."""

    def test_path_inserts_refinement(self):
        p1 = od("d_date", "d_year,d_doy")
        p2 = od("d_year", "d_century")
        conclusion = path(p1, p2)
        assert conclusion == od("d_date", "d_year,d_century,d_doy")
        assert implies([p1, p2], conclusion)


class TestExample5:
    """Taxes: Union composes the bracket/payable monotonicities."""

    def test_union_composition(self):
        p1 = od("income", "bracket")
        p2 = od("income", "payable")
        assert union(p1, p2) == od("income", "bracket,payable")
        assert implies([p1, p2], od("income", "bracket,payable"))

    def test_orderby_answerable_by_income_index(self):
        theory = ODTheory([od("income", "bracket"), od("income", "payable")])
        assert theory.implies(od("income", "bracket,payable"))


class TestSection23Adjacency:
    """The ABD vs ABCD discussion: Left Eliminate needs adjacency."""

    def test_abd_reduces(self):
        assert implies([od("D", "B")], equiv("A,B,D", "A,D"))

    def test_abcd_does_not(self):
        assert not implies([od("D", "B")], equiv("A,B,C,D", "A,D"))

    def test_wider_od_fixes_it(self):
        """If we knew D |-> BC, then ABCD could be reduced to AD."""
        assert implies([od("D", "B,C")], equiv("A,B,C,D", "A,D"))


class TestFigure2Generated:
    """The declared Figure 2 ODs hold in the generated calendar."""

    def test_all_declared_ods_hold(self):
        from repro.workloads.datedim import date_dim_ods, generate_date_dim

        table = generate_date_dim(days=365 * 4 + 1)  # includes a leap year
        relation = table.as_relation()
        for statement in date_dim_ods():
            assert satisfies(relation, statement), f"{statement} fails"

    def test_leap_year_non_od_rejected(self):
        """[d_doy] |-> [d_moy] is falsified across leap years — the subtle
        case the module documents."""
        from repro.workloads.datedim import generate_date_dim
        import datetime

        table = generate_date_dim(
            start=datetime.date(1999, 1, 1), days=365 * 2 + 1
        )  # covers 1999 (common) and 2000 (leap)
        relation = table.as_relation()
        assert not satisfies(relation, od("d_doy", "d_moy"))

"""The proof kernel: replay of the library derivations, stratification,
and rejection of bogus proofs."""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attrs import AttrList
from repro.core.dependency import od, equiv
from repro.core.inference import ODTheory
from repro.core.proofs import Proof, ProofError, ProofLine, check_proof
from repro.core.proofs_library import (
    DERIVATION_ORDER,
    PROOF_BUILDERS,
    build_proof,
)

NAMES = ("A", "B", "C", "D", "E", "F")
side = st.lists(st.sampled_from(NAMES), max_size=2, unique=True).map(AttrList)

#: proofs that must check with axioms + structural rules alone
KERNEL_ONLY = {"Union", "Augmentation", "Decomposition", "FrontReplace", "Compose"}


class TestLibraryProofs:
    @pytest.mark.parametrize("name", sorted(PROOF_BUILDERS))
    def test_fixed_instantiation_checks(self, name):
        _, params = PROOF_BUILDERS[name]
        fixed = dict(x="A,B", y="C", z="D", w="E", v="F", u="D", t="E")
        proof = build_proof(name, **{p: fixed[p] for p in params})
        assert check_proof(proof)

    @pytest.mark.parametrize("name", sorted(KERNEL_ONLY))
    def test_kernel_only(self, name):
        _, params = PROOF_BUILDERS[name]
        fixed = dict(x="A", y="B,C", z="D", w="E", v="F", u="D", t="E")
        proof = build_proof(name, **{p: fixed[p] for p in params})
        assert check_proof(proof, allow_theorems=False)

    @settings(max_examples=30)
    @given(side, side, side)
    def test_union_random_instantiations(self, x, y, z):
        proof = build_proof("Union", x=x, y=y, z=z)
        assert check_proof(proof, allow_theorems=False)
        assert ODTheory(proof.assumptions).implies(proof.conclusion)

    @settings(max_examples=30)
    @given(side, side, side)
    def test_front_replace_random_instantiations(self, x, y, w):
        proof = build_proof("FrontReplace", x=x, y=y, w=w)
        assert check_proof(proof, allow_theorems=False)
        assert ODTheory(proof.assumptions).implies(proof.conclusion)

    @settings(max_examples=20)
    @given(side, side, side, side, side)
    def test_eliminate_random_instantiations(self, x, y, w, v, u):
        proof = build_proof("Eliminate", x=x, y=y, w=w, v=v, u=u)
        assert check_proof(proof)
        assert ODTheory(proof.assumptions).implies(proof.conclusion)

    @pytest.mark.parametrize("name", sorted(PROOF_BUILDERS))
    def test_conclusions_semantically_sound(self, name):
        _, params = PROOF_BUILDERS[name]
        fixed = dict(x="A,B", y="C", z="D", w="E", v="F", u="D", t="E")
        proof = build_proof(name, **{p: fixed[p] for p in params})
        assert ODTheory(proof.assumptions).implies(proof.conclusion)


class TestStratification:
    def test_every_cited_theorem_is_earlier(self):
        """A proof may only cite theorems strictly before it in the
        derivation order — no circular justifications."""
        from repro.core.theorems import THEOREMS

        position = {name: i for i, name in enumerate(DERIVATION_ORDER)}
        fixed = dict(x="A", y="B", z="C", w="D", v="E", u="F", t="C")
        for name, (builder, params) in PROOF_BUILDERS.items():
            proof = builder(*(fixed[p] for p in params))
            for line in proof.lines:
                if line.rule in THEOREMS and line.rule in position:
                    assert position[line.rule] < position[name], (
                        f"{name} cites {line.rule} which is not earlier"
                    )

    def test_order_covers_all_builders(self):
        assert set(DERIVATION_ORDER) == set(PROOF_BUILDERS)


class TestCheckerRejections:
    def test_wrong_conclusion(self):
        proof = Proof(
            "bad",
            (od("A", "B"),),
            (
                ProofLine(od("A", "B"), "Given"),
                ProofLine(od("B", "A"), "Suffix", (0,)),  # Suffix gives A <-> B,A
            ),
        )
        with pytest.raises(ProofError):
            check_proof(proof)

    def test_unknown_rule(self):
        proof = Proof(
            "bad", (), (ProofLine(od("A", "B"), "Magic"),)
        )
        with pytest.raises(ProofError):
            check_proof(proof)

    def test_non_assumption_given(self):
        proof = Proof(
            "bad", (od("A", "B"),), (ProofLine(od("B", "C"), "Given"),)
        )
        with pytest.raises(ProofError):
            check_proof(proof)

    def test_forward_reference(self):
        proof = Proof(
            "bad",
            (od("A", "B"), od("B", "C")),
            (
                ProofLine(od("A", "C"), "Transitivity", (1, 2)),
                ProofLine(od("A", "B"), "Given"),
                ProofLine(od("B", "C"), "Given"),
            ),
        )
        with pytest.raises(ProofError):
            check_proof(proof)

    def test_theorem_in_kernel_mode(self):
        proof = Proof(
            "bad",
            (od("A", "B"), od("A", "C")),
            (
                ProofLine(od("A", "B"), "Given"),
                ProofLine(od("A", "C"), "Given"),
                ProofLine(od("A", "B,C"), "Union", (0, 1)),
            ),
        )
        assert check_proof(proof)  # fine with theorems allowed
        with pytest.raises(ProofError):
            check_proof(proof, allow_theorems=False)

    def test_bad_arity(self):
        proof = Proof(
            "bad",
            (od("A", "B"),),
            (
                ProofLine(od("A", "B"), "Given"),
                ProofLine(od("A", "B"), "Transitivity", (0,)),
            ),
        )
        with pytest.raises(ProofError):
            check_proof(proof)


class TestProofPresentation:
    def test_str_contains_rules(self):
        proof = build_proof("Union", x="A", y="B", z="C")
        text = str(proof)
        assert "Suffix" in text and "Prefix" in text and "Transitivity" in text

    def test_len(self):
        assert len(build_proof("Augmentation", x="A", y="B", z="C")) == 3

"""Deep semantic invariants of the OD framework, property-tested.

These are the meta-level facts the whole reproduction leans on: the
small-model property's ingredients (closure under subrelations, sign
symmetry), the logical-consequence structure of the oracle (preorder,
monotonicity, closure under the rules), and append-stability.
"""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.armstrong import append_tables
from repro.core.attrs import AttrList
from repro.core.dependency import OrderDependency, od
from repro.core.inference import ODTheory, implies
from repro.core.relation import Relation
from repro.core.satisfaction import satisfies, satisfies_naive
from repro.core.signs import od_holds

NAMES = ("A", "B", "C")
side = st.lists(st.sampled_from(NAMES), max_size=2, unique=True).map(AttrList)
ods = st.builds(od, side, side)
od_sets = st.lists(ods, max_size=3)
rows = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)), max_size=7
)
sign_vectors = st.fixed_dictionaries(
    {n: st.sampled_from([-1, 0, 1]) for n in NAMES}
)


class TestConsequenceStructure:
    @settings(max_examples=60, deadline=None)
    @given(od_sets)
    def test_reflexive(self, premises):
        theory = ODTheory(premises)
        for premise in premises:
            assert theory.implies(premise)

    @settings(max_examples=40, deadline=None)
    @given(od_sets, ods, ods)
    def test_cut(self, premises, middle, goal):
        """If M ⊨ φ and M ∪ {φ} ⊨ ψ then M ⊨ ψ (consequence is closed
        under cut)."""
        theory = ODTheory(premises)
        if theory.implies(middle):
            extended = theory.extended([middle])
            if extended.implies(goal):
                assert theory.implies(goal)

    @settings(max_examples=40, deadline=None)
    @given(od_sets, ods, ods)
    def test_monotone(self, premises, extra, goal):
        """Adding premises never loses implications."""
        theory = ODTheory(premises)
        if theory.implies(goal):
            assert theory.extended([extra]).implies(goal)

    @settings(max_examples=40, deadline=None)
    @given(od_sets, ods, ods)
    def test_closed_under_transitivity(self, premises, first, second):
        theory = ODTheory(premises)
        if tuple(first.rhs) == tuple(second.lhs):
            if theory.implies(first) and theory.implies(second):
                assert theory.implies(OrderDependency(first.lhs, second.rhs))

    @settings(max_examples=40, deadline=None)
    @given(od_sets, ods)
    def test_closed_under_suffix(self, premises, dependency):
        theory = ODTheory(premises)
        if theory.implies(dependency):
            suffixed = OrderDependency(
                dependency.lhs, dependency.rhs + dependency.lhs
            )
            assert theory.implies(suffixed)
            assert theory.implies(suffixed.reversed())

    @settings(max_examples=40, deadline=None)
    @given(od_sets, ods, side)
    def test_closed_under_prefix(self, premises, dependency, z):
        theory = ODTheory(premises)
        if theory.implies(dependency):
            assert theory.implies(
                OrderDependency(z + dependency.lhs, z + dependency.rhs)
            )


class TestSmallModelIngredients:
    @settings(max_examples=100)
    @given(rows, ods)
    def test_closed_under_subrelations(self, data, dependency):
        """The lemma behind the two-row oracle: satisfaction survives
        dropping rows."""
        relation = Relation(AttrList(NAMES), data)
        if satisfies(relation, dependency):
            for skip in range(len(data)):
                sub = relation.subrelation(
                    [row for i, row in enumerate(relation.rows) if i != skip]
                )
                assert satisfies(sub, dependency)

    @settings(max_examples=100)
    @given(sign_vectors, ods)
    def test_sign_negation_symmetry(self, sigma, dependency):
        """A two-row instance is unordered: σ and -σ agree on every OD."""
        negated = {k: -v for k, v in sigma.items()}
        assert od_holds(sigma, dependency) == od_holds(negated, dependency)

    @settings(max_examples=60, deadline=None)
    @given(od_sets, ods)
    def test_two_row_refutation_exists(self, premises, goal):
        """Non-implication always has a two-row witness — the small-model
        property, verified constructively."""
        theory = ODTheory(premises)
        if not theory.implies(goal):
            witness = theory.counterexample(goal)
            assert witness is not None and len(witness.rows) == 2
            assert not satisfies_naive(witness, goal)


class TestAppendStability:
    @settings(max_examples=60, deadline=None)
    @given(rows, rows, ods)
    def test_append_preserves_joint_satisfaction(self, first_rows, second_rows, dependency):
        """Lemma 9: if both halves satisfy an OD over non-empty lists, the
        append does too."""
        if not dependency.lhs:
            return  # [] |-> Y is the documented exception
        first = Relation(AttrList(NAMES), first_rows)
        second = Relation(AttrList(NAMES), second_rows)
        if satisfies(first, dependency) and satisfies(second, dependency):
            assert satisfies(append_tables(first, second), dependency)

    @settings(max_examples=60, deadline=None)
    @given(rows, rows)
    def test_append_rows_ascend(self, first_rows, second_rows):
        first = Relation(AttrList(NAMES), first_rows)
        second = Relation(AttrList(NAMES), second_rows)
        appended = append_tables(first, second)
        if first_rows and second_rows:
            top_of_first = max(v for row in appended.rows[: len(first_rows)] for v in row)
            bottom_of_second = min(
                v for row in appended.rows[len(first_rows):] for v in row
            )
            assert top_of_first < bottom_of_second


class TestNormalizationInvariance:
    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(st.sampled_from(NAMES), max_size=5).map(AttrList),
        st.lists(st.sampled_from(NAMES), max_size=5).map(AttrList),
        rows,
    )
    def test_duplicates_never_matter(self, lhs, rhs, data):
        """An OD and its normalized form agree on every instance — the
        Normalization axiom at the data level."""
        relation = Relation(AttrList(NAMES), data)
        raw = OrderDependency(lhs, rhs)
        assert satisfies(relation, raw) == satisfies(relation, raw.normalized())

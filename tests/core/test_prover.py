"""The proof-search prover: soundness, completeness on easy goals,
certificate validity."""
from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attrs import AttrList
from repro.core.dependency import equiv, od
from repro.core.inference import ODTheory
from repro.core.proofs import check_proof
from repro.core.prover import decide, prove

NAMES = ("A", "B", "C")
side = st.lists(st.sampled_from(NAMES), max_size=2, unique=True).map(AttrList)
ods = st.builds(od, side, side)


class TestProve:
    def test_transitive_chain(self):
        proof = prove([od("A", "B"), od("B", "C")], od("A", "C"))
        assert proof is not None
        assert check_proof(proof)

    def test_given_goal(self):
        proof = prove([od("A", "B")], od("A", "B"))
        assert proof is not None and check_proof(proof)

    def test_reflexivity_goal(self):
        proof = prove([], od("A,B", "A"))
        assert proof is not None and check_proof(proof)

    def test_union_style_goal(self):
        proof = prove([od("A", "B"), od("A", "C")], od("A", "B,C"))
        assert proof is not None and check_proof(proof)

    def test_example1_equivalence(self):
        goal = equiv("C,B,A", "C,A")  # with A |-> B: LeftEliminate shape
        proof = prove([od("A", "B")], goal)
        assert proof is not None
        assert check_proof(proof)

    def test_unprovable_returns_none(self):
        assert prove([od("A", "B")], od("B", "A"), max_statements=2000) is None


class TestDecide:
    def test_refutation_carries_witness(self):
        verdict = decide([od("A", "B")], od("B", "A"))
        assert not verdict.implied
        assert verdict.counterexample is not None
        assert len(verdict.counterexample.rows) == 2

    def test_implication_carries_proof(self):
        verdict = decide([od("A", "B"), od("B", "C")], od("A", "C"))
        assert verdict.implied and verdict.proof is not None
        assert check_proof(verdict.proof)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(ods, max_size=2), ods)
    def test_agrees_with_oracle(self, premises, goal):
        verdict = decide(premises, goal, max_statements=4000)
        assert verdict.implied == ODTheory(premises).implies(goal)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(ods, max_size=2), ods)
    def test_found_proofs_always_check(self, premises, goal):
        """Soundness of search: anything proved replays through the kernel
        and is oracle-implied."""
        proof = prove(premises, goal, max_statements=4000)
        if proof is not None:
            assert check_proof(proof)
            assert ODTheory(premises).implies(goal)

"""The lexicographic operators (Definitions 1–3) and Relation basics."""
from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.attrs import AttrList, attrlist
from repro.core.relation import Relation

rows3 = st.tuples(
    st.integers(0, 3), st.integers(0, 3), st.integers(0, 3)
)


def rel(rows):
    return Relation(attrlist("A,B,C"), list(rows))


class TestBasics:
    def test_width_validation(self):
        with pytest.raises(ValueError):
            Relation(attrlist("A,B"), [(1,)])

    def test_duplicate_schema_rejected(self):
        with pytest.raises(ValueError):
            Relation(attrlist("A,A"), [])

    def test_projection(self):
        r = rel([(1, 2, 3)])
        assert r.project((1, 2, 3), attrlist("C,A")) == (3, 1)

    def test_value(self):
        r = rel([(1, 2, 3)])
        assert r.value((1, 2, 3), "B") == 2

    def test_unknown_attribute(self):
        r = rel([])
        with pytest.raises(KeyError):
            r.column_position("Z")

    def test_from_dicts(self):
        r = Relation.from_dicts("A,B", [{"A": 1, "B": 2}, {"B": 4, "A": 3}])
        assert r.rows == [(1, 2), (3, 4)]

    def test_add_validates_width(self):
        r = rel([])
        with pytest.raises(ValueError):
            r.add((1, 2))


class TestOperators:
    """Definitions 1-3 on concrete tuples."""

    def test_empty_list_compares_equal(self):
        r = rel([(0, 0, 0), (9, 9, 9)])
        s, t = r.rows
        assert r.cmp(s, t, AttrList()) == 0
        assert r.leq(s, t, AttrList()) and r.leq(t, s, AttrList())

    def test_first_attribute_decides(self):
        r = rel([(1, 9, 9), (2, 0, 0)])
        s, t = r.rows
        assert r.less(s, t, attrlist("A,B,C"))
        assert r.less(s, t, attrlist("A"))

    def test_tie_falls_through(self):
        r = rel([(1, 2, 3), (1, 2, 4)])
        s, t = r.rows
        assert r.cmp(s, t, attrlist("A,B")) == 0
        assert r.cmp(s, t, attrlist("A,B,C")) == -1

    def test_strict_vs_weak(self):
        r = rel([(1, 0, 0), (1, 0, 0)])
        s, t = r.rows
        assert r.leq(s, t, attrlist("A,B,C"))
        assert not r.less(s, t, attrlist("A,B,C"))
        assert r.equal_on(s, t, attrlist("A,B,C"))

    @given(st.lists(rows3, min_size=2, max_size=6))
    def test_cmp_matches_tuple_comparison(self, rows):
        """Lexicographic cmp on a list == Python tuple comparison of the
        projections (the definitional identity the engine relies on)."""
        r = rel(rows)
        x = attrlist("B,A")
        for s in r.rows:
            for t in r.rows:
                expected = (r.project(s, x) > r.project(t, x)) - (
                    r.project(s, x) < r.project(t, x)
                )
                assert r.cmp(s, t, x) == expected

    @given(st.lists(rows3, min_size=1, max_size=8))
    def test_sorted_by_is_sorted(self, rows):
        r = rel(rows)
        ordered = Relation(r.attributes, r.sorted_by(attrlist("C,B")))
        assert ordered.is_sorted_by(attrlist("C,B"))

    @given(st.lists(rows3, min_size=2, max_size=6))
    def test_total_preorder(self, rows):
        """≼ is total and transitive on any instance."""
        r = rel(rows)
        x = attrlist("A,C")
        for s in r.rows:
            for t in r.rows:
                assert r.leq(s, t, x) or r.leq(t, s, x)
                for u in r.rows:
                    if r.leq(s, t, x) and r.leq(t, u, x):
                        assert r.leq(s, u, x)


class TestRecursiveDefinition:
    """Definition 1 is recursive on [A | T]; check the unrolling."""

    def test_head_less_implies_less(self):
        r = rel([(1, 9, 9), (2, 0, 0)])
        s, t = r.rows
        assert r.leq(s, t, attrlist("A,B,C"))

    def test_head_equal_recurses_on_tail(self):
        r = rel([(1, 1, 5), (1, 2, 0)])
        s, t = r.rows
        x = attrlist("A,B,C")
        assert r.leq(s, t, x) == r.leq(s, t, attrlist("B,C"))

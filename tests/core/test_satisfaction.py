"""OD satisfaction and split/swap witnesses (Definitions 4, 13, 14)."""
from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attrs import AttrList, attrlist
from repro.core.dependency import compat, equiv, fd, od
from repro.core.relation import Relation
from repro.core.satisfaction import (
    explain_violation,
    find_split,
    find_swap,
    find_witness,
    satisfies,
    satisfies_naive,
)

NAMES = ["A", "B", "C"]

relations = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)),
    max_size=8,
).map(lambda rows: Relation(AttrList(NAMES), rows))

side = st.lists(st.sampled_from(NAMES), max_size=3, unique=True).map(AttrList)
ods = st.builds(od, side, side)


class TestWitnesses:
    def test_split_found(self):
        r = Relation(attrlist("A,B"), [(1, 1), (1, 2)])
        witness = find_split(r, od("A", "B"))
        assert witness is not None and witness.kind == "split"

    def test_swap_found(self):
        r = Relation(attrlist("A,B"), [(1, 2), (2, 1)])
        witness = find_swap(r, od("A", "B"))
        assert witness is not None and witness.kind == "swap"
        s, t = witness.rows()
        assert r.less(s, t, attrlist("A")) and r.less(t, s, attrlist("B"))

    def test_no_witness_on_satisfying_instance(self):
        r = Relation(attrlist("A,B"), [(1, 1), (2, 2), (3, 3)])
        assert find_witness(r, od("A", "B")) is None

    def test_swap_requires_distinct_x_groups(self):
        # same A, differing B: a split, not a swap
        r = Relation(attrlist("A,B"), [(1, 2), (1, 1)])
        assert find_swap(r, od("A", "B")) is None
        assert find_split(r, od("A", "B")) is not None

    def test_swap_across_nonadjacent_groups(self):
        # the swap partner is two X-groups back
        r = Relation(attrlist("A,B"), [(1, 5), (2, 7), (3, 6)])
        witness = find_swap(r, od("A", "B"))
        assert witness is not None
        s, t = witness.rows()
        assert {s, t} == {(2, 7), (3, 6)}

    def test_empty_lhs_split(self):
        # [] |-> [B] demands B constant
        r = Relation(attrlist("A,B"), [(1, 1), (2, 2)])
        assert find_split(r, od("", "B")) is not None
        assert satisfies(r, od("", "A")) is False
        constant = Relation(attrlist("A,B"), [(1, 7), (2, 7)])
        assert satisfies(constant, od("", "B"))

    def test_empty_rhs_always_satisfied(self):
        r = Relation(attrlist("A,B"), [(1, 1), (2, 0)])
        assert satisfies(r, od("A", ""))

    def test_explain_violation_mentions_kind(self):
        r = Relation(attrlist("A,B"), [(1, 2), (2, 1)])
        message = explain_violation(r, od("A", "B"))
        assert "swap" in message
        r2 = Relation(attrlist("A,B"), [(1, 1), (1, 2)])
        assert "split" in explain_violation(r2, od("A", "B"))
        assert explain_violation(r2, od("A,B", "A")) is None


class TestStatementKinds:
    def test_equivalence_needs_both_directions(self):
        r = Relation(attrlist("A,B"), [(1, 1), (2, 1)])
        assert satisfies(r, od("A", "B"))
        assert not satisfies(r, od("B", "A"))
        assert not satisfies(r, equiv("A", "B"))

    def test_compatibility(self):
        r = Relation(attrlist("A,B"), [(1, 1), (2, 2)])
        assert satisfies(r, compat("A", "B"))
        swap = Relation(attrlist("A,B"), [(1, 2), (2, 1)])
        assert not satisfies(swap, compat("A", "B"))

    def test_fd_via_split_only(self):
        # a swap does not violate an FD
        r = Relation(attrlist("A,B"), [(1, 2), (2, 1)])
        assert satisfies(r, fd("A", "B"))
        r2 = Relation(attrlist("A,B"), [(1, 1), (1, 2)])
        assert not satisfies(r2, fd("A", "B"))

    def test_duplicate_rows_never_falsify(self):
        r = Relation(attrlist("A,B"), [(1, 2), (1, 2)])
        assert satisfies(r, od("A", "B"))


class TestTheorem15OnData:
    """X |-> Y holds iff X |-> XY (no split) and X ~ Y (no swap)."""

    @settings(max_examples=150)
    @given(relations, ods)
    def test_characterization(self, r, dependency):
        holds = satisfies(r, dependency)
        fd_facet = satisfies(r, dependency.fd_facet())
        compatible = satisfies(
            r, compat(dependency.lhs, dependency.rhs)
        )
        assert holds == (fd_facet and compatible)


class TestFastVsNaive:
    @settings(max_examples=200)
    @given(relations, ods)
    def test_agreement(self, r, dependency):
        assert satisfies(r, dependency) == satisfies_naive(r, dependency)

    @settings(max_examples=100)
    @given(relations, ods)
    def test_witness_iff_falsified(self, r, dependency):
        witness = find_witness(r, dependency)
        assert (witness is None) == satisfies_naive(r, dependency)
        if witness is not None:
            s, t = witness.rows()
            assert s in r.rows and t in r.rows

"""Two-row sign-vector semantics vs. concrete relations."""
from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attrs import AttrList, attrlist
from repro.core.dependency import compat, equiv, od
from repro.core.satisfaction import satisfies_naive
from repro.core.signs import (
    CompiledOD,
    enumerate_sign_vectors,
    lex_sign,
    materialize,
    od_holds,
    sign_vector_of_pair,
    statement_holds,
)

NAMES = ("A", "B", "C")
sign_vectors = st.fixed_dictionaries({n: st.sampled_from([-1, 0, 1]) for n in NAMES})
side = st.lists(st.sampled_from(NAMES), max_size=3, unique=True).map(AttrList)
ods = st.builds(od, side, side)


class TestLexSign:
    def test_empty_list(self):
        assert lex_sign({"A": 1}, AttrList()) == 0

    def test_first_nonzero_decides(self):
        sigma = {"A": 0, "B": -1, "C": 1}
        assert lex_sign(sigma, attrlist("A,B,C")) == -1
        assert lex_sign(sigma, attrlist("C,B")) == 1

    def test_all_zero(self):
        assert lex_sign({"A": 0, "B": 0}, attrlist("A,B")) == 0


class TestOdHolds:
    def test_equality_propagation(self):
        sigma = {"A": 0, "B": 1}
        assert not od_holds(sigma, od("A", "B"))

    def test_agreeing_signs(self):
        sigma = {"A": -1, "B": -1}
        assert od_holds(sigma, od("A", "B"))

    def test_rhs_zero_ok(self):
        sigma = {"A": -1, "B": 0}
        assert od_holds(sigma, od("A", "B"))

    def test_opposite_signs_fail(self):
        sigma = {"A": -1, "B": 1}
        assert not od_holds(sigma, od("A", "B"))


class TestAgainstMaterialization:
    """The sign abstraction must agree exactly with Definition 4 on the
    materialized two-row relation — the lemma the whole oracle rests on."""

    @settings(max_examples=300)
    @given(sign_vectors, ods)
    def test_od_agreement(self, sigma, dependency):
        relation = materialize(sigma, AttrList(NAMES))
        assert od_holds(sigma, dependency) == satisfies_naive(relation, dependency)

    @settings(max_examples=150)
    @given(sign_vectors, side, side)
    def test_statement_agreement(self, sigma, x, y):
        relation = materialize(sigma, AttrList(NAMES))
        for statement in (equiv(x, y), compat(x, y)):
            assert statement_holds(sigma, statement) == satisfies_naive(
                relation, statement
            )

    @settings(max_examples=100)
    @given(sign_vectors)
    def test_roundtrip_through_pair(self, sigma):
        relation = materialize(sigma, AttrList(NAMES))
        s, t = relation.rows
        assert sign_vector_of_pair(relation, s, t) == dict(sigma)


class TestCompiled:
    @settings(max_examples=200)
    @given(sign_vectors, ods)
    def test_compiled_matches_interpreted(self, sigma, dependency):
        index = {name: i for i, name in enumerate(NAMES)}
        compiled = CompiledOD(dependency, index)
        signs = tuple(sigma[n] for n in NAMES)
        assert compiled.holds(signs) == od_holds(sigma, dependency)


class TestEnumeration:
    def test_count(self):
        assert sum(1 for _ in enumerate_sign_vectors(["A", "B"])) == 9

    def test_covers_all(self):
        seen = {tuple(sigma.values()) for sigma in enumerate_sign_vectors(["A", "B"])}
        assert (-1, 1) in seen and (0, 0) in seen and len(seen) == 9
